//! Table 3: memory performance versus cache miss penalty.
//!
//! "The hidden variable in the plots of the speed–size design space is
//! cache miss penalty. As the cycle time was varied from 20ns through
//! 80ns, the cache miss penalty went from 14 to 8 cycles." For each cache
//! size the table reports cycles per reference and the cycle-time value of
//! a size doubling *as a fraction of the cycle time*.

use crate::runner::SpeedSizeGrid;
use cachetime_analysis::contour::ns_per_doubling;
use cachetime_analysis::table::Table;
use cachetime_mem::{MemoryConfig, MemoryTiming};
use cachetime_types::CycleTime;

/// One row: a miss penalty with per-size cycles/ref and doubling value.
#[derive(Debug, Clone)]
pub struct Row {
    /// Read-miss penalty in cycles (Table 2's read time).
    pub penalty: u64,
    /// The cycle time (ns) producing this penalty.
    pub ct_ns: u32,
    /// Per size: (cycles per reference, doubling value as a cycle-time
    /// fraction — `None` at the largest size or when interpolation fails).
    pub per_size: Vec<(f64, Option<f64>)>,
}

/// Derives the table from a speed–size grid.
///
/// For each sampled cycle time the miss penalty is the quantized Table-2
/// read time; duplicate penalties keep the *slowest* clock (the paper's
/// rows are unique penalties).
pub fn run(grid: &SpeedSizeGrid) -> Vec<Row> {
    let memory = MemoryConfig::paper_default();
    let cts = grid.cts_f64();
    let min = grid.min_time();
    let norm: Vec<Vec<f64>> = grid
        .time_per_ref
        .iter()
        .map(|row| row.iter().map(|&t| t / min).collect())
        .collect();
    let mut rows: Vec<Row> = Vec::new();
    for (j, &ct_ns) in grid.cts_ns.iter().enumerate() {
        let block_words = 4;
        let penalty = MemoryTiming::new(&memory, CycleTime::from_ns(ct_ns).expect("nonzero"))
            .read_time(block_words);
        let per_size: Vec<(f64, Option<f64>)> = (0..grid.sizes_total_kb.len())
            .map(|i| {
                let cpr = grid.cycles_per_ref[i][j];
                let doubling = if i + 1 < norm.len() {
                    ns_per_doubling(&cts, &norm[i], &norm[i + 1], ct_ns as f64)
                        .map(|ns| ns / ct_ns as f64)
                } else {
                    None
                };
                (cpr, doubling)
            })
            .collect();
        match rows.iter_mut().find(|r| r.penalty == penalty) {
            Some(r) => {
                // Keep the slowest clock for this penalty.
                r.ct_ns = ct_ns;
                r.per_size = per_size;
            }
            None => rows.push(Row {
                penalty,
                ct_ns,
                per_size,
            }),
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.penalty));
    rows
}

/// Renders the table for a chosen subset of sizes (the paper shows 4, 16,
/// 64 and 256 KB total).
pub fn render(grid: &SpeedSizeGrid, rows: &[Row], sizes_total_kb: &[u64]) -> String {
    let idx: Vec<usize> = sizes_total_kb
        .iter()
        .filter_map(|kb| grid.sizes_total_kb.iter().position(|g| g == kb))
        .collect();
    let mut headers = vec!["Cycles/Read".to_string()];
    for &i in &idx {
        headers.push(format!("{}KB c/ref", grid.sizes_total_kb[i]));
        headers.push(format!("{}KB size x2", grid.sizes_total_kb[i]));
    }
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.penalty.to_string()];
        for &i in &idx {
            let (cpr, doubling) = r.per_size[i];
            cells.push(format!("{cpr:.2}"));
            cells.push(doubling.map_or("-".to_string(), |d| format!("{d:.2}")));
        }
        t.row(cells);
    }
    format!("Table 3: memory performance vs cache miss penalty\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TraceSet;

    #[test]
    fn penalties_span_8_to_14_and_cycles_scale_with_penalty() {
        let traces = TraceSet::quick();
        let grid = SpeedSizeGrid::compute_over(&traces, 1, &[2, 8, 32, 128], &[20, 40, 60, 80]);
        let rows = run(&grid);
        let penalties: Vec<u64> = rows.iter().map(|r| r.penalty).collect();
        assert_eq!(penalties, [14, 10, 8], "20/40/60-80ns penalties");
        // Small caches: cycles/ref strongly increasing in penalty; large
        // caches barely.
        let small_at = |p: u64| {
            rows.iter()
                .find(|r| r.penalty == p)
                .map(|r| r.per_size[0].0)
                .unwrap()
        };
        assert!(small_at(14) > small_at(8));
        let large_range = {
            let vals: Vec<f64> = rows.iter().map(|r| r.per_size[3].0).collect();
            vals.iter().copied().fold(0.0f64, f64::max)
                - vals.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let small_range = small_at(14) - small_at(8);
        assert!(
            small_range > large_range,
            "penalty sensitivity must fall with size: {small_range} vs {large_range}"
        );
        let s = render(&grid, &rows, &[4, 64]);
        assert!(s.contains("size x2"));
    }
}
