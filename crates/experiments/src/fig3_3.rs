//! Figure 3-3: execution time across the speed–size space.
//!
//! "Total execution time is the product of cycle time and cycle count …
//! overall performance is strongly dependent on both the cache size and
//! cycle time." Times are normalized to the best configuration — two 4 MB
//! caches at 20 ns in the full sweep. The figure also exhibits the 56 ns
//! anomaly: "decreasing the cycle time from 60ns to 56ns slows the machine
//! down close to 3%" for small caches, because the quantized miss penalty
//! jumps from 8 to 9 cycles.

use crate::runner::SpeedSizeGrid;
use cachetime_analysis::table::Table;

/// The normalized execution-time surface.
#[derive(Debug, Clone)]
pub struct ExecTimes {
    /// Total L1 sizes (KB), row axis.
    pub sizes_total_kb: Vec<u64>,
    /// Cycle times (ns), column axis.
    pub cts_ns: Vec<u32>,
    /// `normalized[size][ct]` execution time, 1.0 at the global best.
    pub normalized: Vec<Vec<f64>>,
}

impl ExecTimes {
    /// The 56 ns-anomaly check: by how much the given size slows down when
    /// the clock tightens from 60 ns to 56 ns (positive = anomaly present).
    pub fn anomaly_56ns(&self, size_idx: usize) -> Option<f64> {
        let i60 = self.cts_ns.iter().position(|&c| c == 60)?;
        let i56 = self.cts_ns.iter().position(|&c| c == 56)?;
        Some(self.normalized[size_idx][i56] / self.normalized[size_idx][i60] - 1.0)
    }
}

/// Normalizes the grid's execution times.
pub fn run(grid: &SpeedSizeGrid) -> ExecTimes {
    let min = grid.min_time();
    ExecTimes {
        sizes_total_kb: grid.sizes_total_kb.clone(),
        cts_ns: grid.cts_ns.clone(),
        normalized: grid
            .time_per_ref
            .iter()
            .map(|row| row.iter().map(|&t| t / min).collect())
            .collect(),
    }
}

/// Renders the surface with one row per size.
pub fn render(e: &ExecTimes) -> String {
    let mut headers = vec!["Total L1".to_string()];
    headers.extend(e.cts_ns.iter().map(|ct| format!("{ct}ns")));
    let mut t = Table::new(headers);
    for (i, &kb) in e.sizes_total_kb.iter().enumerate() {
        let mut row = vec![format!("{kb}KB")];
        row.extend(e.normalized[i].iter().map(|v| format!("{v:.3}")));
        t.row(row);
    }
    format!("Figure 3-3: relative execution time (normalized to the best)\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TraceSet;

    #[test]
    fn execution_time_depends_on_both_axes() {
        let traces = TraceSet::quick();
        let grid = SpeedSizeGrid::compute_over(&traces, 1, &[2, 32, 512], &[20, 40, 80]);
        let e = run(&grid);
        // Small cache at a fast clock is NOT the best point: memory
        // dominates (the paper's central argument).
        let best = e
            .normalized
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!((best - 1.0).abs() < 1e-12);
        assert!(
            e.normalized[0][0] > 1.2,
            "2KB-per-cache at 20ns must be far from optimal, got {}",
            e.normalized[0][0]
        );
        // At a fixed clock, larger caches are faster.
        assert!(e.normalized[0][1] > e.normalized[2][1]);
        // At the largest size, the faster clock wins (misses are rare).
        assert!(e.normalized[2][0] < e.normalized[2][2]);
    }

    #[test]
    fn anomaly_accessor_needs_56_and_60() {
        let traces = TraceSet::quick();
        let grid = SpeedSizeGrid::compute_over(&traces, 1, &[2], &[56, 60]);
        let e = run(&grid);
        assert!(e.anomaly_56ns(0).is_some());
        let grid = SpeedSizeGrid::compute_over(&traces, 1, &[2], &[40, 80]);
        assert!(run(&grid).anomaly_56ns(0).is_none());
    }
}
