//! A hand-rolled HTTP/1.1 server on `std::net` — no async runtime, no
//! external crates, in keeping with the workspace's offline-build
//! invariant.
//!
//! The transport is a **readiness-driven event loop** (see DESIGN.md §9):
//! one loop thread owns every socket non-blockingly through the raw
//! `epoll` shim in [`crate::poll`], driving a per-connection state
//! machine ([`crate::conn`]) that tolerates partial reads and writes. An
//! idle keep-alive connection costs *nothing* — it sits in the epoll set
//! until bytes arrive — which is what flattens the old worker-pool
//! design's concurrency cliff, where every parked connection taxed the
//! pool a 10ms idle poll per rotation. Requests the loop can answer
//! without blocking (warm replays, stats, errors) are served inline;
//! anything that may block on the store — cold recordings and joins of
//! in-flight recordings — is handed to a small handler pool
//! ([`ServerConfig::workers`] threads) and the response is written when
//! the loop is woken by a self-pipe.
//!
//! # Robustness (see DESIGN.md §7 for the full failure model)
//!
//! * **Deadlines.** A connection that has *started* a request (sent at
//!   least one byte of it) must finish sending within the request
//!   deadline ([`crate::Limits::request_deadline`], lowered per request by
//!   `X-Deadline-Ms`) or it is answered `408` and closed — a slowloris
//!   peer costs one epoll registration and a timer, never a thread. A
//!   response write that the peer refuses to drain is killed at a bounded
//!   write deadline.
//! * **Bounded connections.** Past [`ServerConfig::max_queue`] concurrent
//!   connections, new arrivals are shed at accept with an immediate
//!   canned `503 + Retry-After`.
//! * **Panic isolation.** Handlers run under `catch_unwind` (inline on
//!   the loop, and per job in the pool); a panic becomes a `500` and
//!   serving continues. A `serve.write` fault panic drops the connection
//!   without a response, exactly like the old write-phase isolation.
//! * **Parse errors answer before closing.** Malformed requests get their
//!   proper status (`400`/`413`/`431`) rather than a silent hangup; an
//!   oversized `Content-Length` is refused at head-parse time, before any
//!   body byte is read or buffered.
//!
//! Shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::shutdown`]) flips an atomic flag and wakes the loop;
//! the shutdown response is flushed first, then sockets close and the
//! handler pool drains and joins.

use crate::conn::{Connection, ReadEvent, WriteEvent};
use crate::fault::FaultAction;
use crate::poll::{Interest, Poller};
use crate::{App, Limits, Response};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cap on a request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body; a larger `Content-Length` claim is refused
/// with `413` before any body byte is read, and a chunked body is cut
/// off with `413` the moment its *dechunked* byte count crosses the cap,
/// whatever its chunk headers claim.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// The body cap for `POST /v1/traces`: trace uploads are the one route
/// whose payloads are legitimately tens of megabytes (a million-reference
/// din file is ~12 MiB of text), so they get their own ceiling instead of
/// a global raise.
pub const MAX_TRACE_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Cap on one chunk-size line (hex digits + extensions); a sender that
/// streams forever without a CRLF must not grow the buffer unboundedly.
const MAX_CHUNK_LINE_BYTES: usize = 256;

/// The request-body byte cap for `path` — [`MAX_TRACE_BODY_BYTES`] for
/// the trace-upload endpoint, [`MAX_BODY_BYTES`] everywhere else.
pub fn body_cap_for(path: &str) -> usize {
    if path == "/v1/traces" {
        MAX_TRACE_BODY_BYTES
    } else {
        MAX_BODY_BYTES
    }
}

/// The epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// The epoll token of the self-pipe the handler pool wakes the loop with.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection; tokens are never reused,
/// so a stale completion can never reach a newer connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// The loop never sleeps longer than this, as a backstop against a lost
/// wakeup; all real wakeups (I/O, completions, shutdown) arrive earlier
/// via epoll or the self-pipe.
const MAX_POLL: Duration = Duration::from_millis(250);

/// Write budget when no request deadline applies (error responses to
/// peers that never framed a request).
const DEFAULT_WRITE_BUDGET: Duration = Duration::from_secs(5);

/// Tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:8080"`; port 0 picks an ephemeral
    /// port (read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Handler-pool threads for work that may block on the store (cold
    /// recordings and joins); 0 means
    /// [`cachetime::sweep::available_jobs`]. All socket I/O and warm
    /// replays run on the event-loop thread regardless.
    pub workers: usize,
    /// Byte budget of the EventTrace store.
    pub store_budget_bytes: usize,
    /// Concurrent connections held before new arrivals are shed at accept
    /// with `503 + Retry-After` (the name predates the event loop, when
    /// this bounded a literal connection queue).
    pub max_queue: usize,
    /// Per-request wall-clock budget in milliseconds (the `--request-deadline-ms`
    /// flag); clients lower it per request via `X-Deadline-Ms`.
    pub request_deadline_ms: u64,
    /// Recordings in flight before cold simulates shed; 0 = auto
    /// (twice the worker count, at least 2).
    pub max_inflight_recordings: usize,
    /// Directory for the durable segment store (the `--data-dir` flag).
    /// `None` (the default) runs memory-only: no spills, no recovery.
    pub data_dir: Option<std::path::PathBuf>,
    /// Byte budget of the durable store (`--disk-budget-mb`); 0 =
    /// unlimited. Ignored without `data_dir`.
    pub disk_budget_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            store_budget_bytes: 256 * 1024 * 1024,
            max_queue: 1024,
            request_deadline_ms: 10_000,
            max_inflight_recordings: 0,
            data_dir: None,
            disk_budget_bytes: 0,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw query string after the first `?`, if the target carried one.
    pub query: Option<String>,
    /// Raw body bytes — `Content-Length`-framed, or the dechunked stream
    /// of a `Transfer-Encoding: chunked` upload (handlers never see chunk
    /// framing).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The client's `X-Deadline-Ms` request budget, if sent. The server
    /// honors it only downward from its own cap.
    pub deadline_ms: Option<u64>,
}

/// A framing/parse failure, carrying the HTTP status the server answers
/// before closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// `400`, `413`, or `431`.
    pub status: u16,
    /// Human-readable cause, sent as the JSON error body.
    pub msg: &'static str,
}

fn bad(msg: &'static str) -> ParseError {
    ParseError { status: 400, msg }
}

/// Outcome of [`parse_request`] when the bytes so far are not an error.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request was framed and drained from the buffer.
    Request(Request),
    /// No complete request yet; feed more bytes.
    Incomplete,
    /// A `Transfer-Encoding: chunked` head was framed and drained; the
    /// body must now be streamed through `decoder` (which may already be
    /// complete if the whole upload arrived in one read). `req.body` is
    /// empty until the caller installs the dechunked bytes.
    Chunked {
        /// The request, body pending.
        req: Request,
        /// The body decoder, capped for `req.path`.
        decoder: ChunkedDecoder,
    },
}

/// Incremental decoder for a `Transfer-Encoding: chunked` request body.
///
/// The connection loop re-enters [`feed`](Self::feed) after every socket
/// read; the decoder consumes framing and payload from the front of the
/// read buffer as it goes, so memory stays bounded by the body cap plus
/// one read's worth of bytes no matter how the upload is sliced. The cap
/// is enforced on the **dechunked** count the moment a chunk-size line
/// would cross it — a client claiming an absurd chunk size is refused
/// with `413` *before* any of that chunk's payload is buffered, so a
/// lying or endless upload cannot exhaust memory.
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: ChunkState,
    body: Vec<u8>,
    cap: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    /// Expecting a hex chunk-size line (`;`-extensions ignored).
    Size,
    /// Inside a chunk's payload; `usize` bytes remain.
    Data(usize),
    /// Expecting the CRLF that closes a chunk's payload.
    DataCrlf,
    /// After the zero chunk: skipping trailer lines to the blank line.
    Trailers,
    /// Terminator seen; the body is complete.
    Done,
}

impl ChunkedDecoder {
    fn new(cap: usize) -> ChunkedDecoder {
        ChunkedDecoder {
            state: ChunkState::Size,
            body: Vec::new(),
            cap,
        }
    }

    /// Consumes as much chunk framing and payload from the front of `buf`
    /// as is available, returning `true` once the terminating zero chunk
    /// (and its trailer section) has been seen. Bytes past the terminator
    /// are left in `buf` for a pipelined successor.
    ///
    /// # Errors
    ///
    /// `413` when the dechunked byte count would cross the cap, `400` for
    /// malformed framing. Either way the connection must be closed: the
    /// stream position inside the chunked body is lost.
    pub fn feed(&mut self, buf: &mut Vec<u8>) -> Result<bool, ParseError> {
        let mut pos = 0;
        let result = self.step(buf, &mut pos);
        buf.drain(..pos);
        result
    }

    fn step(&mut self, buf: &[u8], pos: &mut usize) -> Result<bool, ParseError> {
        loop {
            match self.state {
                ChunkState::Done => return Ok(true),
                ChunkState::Size => {
                    let Some(eol) = find_crlf(&buf[*pos..]) else {
                        if buf.len() - *pos > MAX_CHUNK_LINE_BYTES {
                            return Err(bad("chunk size line too long"));
                        }
                        return Ok(false);
                    };
                    let line = std::str::from_utf8(&buf[*pos..*pos + eol])
                        .map_err(|_| bad("non-UTF-8 chunk size line"))?;
                    let hex = line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(hex, 16).map_err(|_| bad("bad chunk size"))?;
                    *pos += eol + 2;
                    if size == 0 {
                        self.state = ChunkState::Trailers;
                    } else if self.body.len().saturating_add(size) > self.cap {
                        // Refuse on the *claim*, before buffering payload.
                        return Err(ParseError {
                            status: 413,
                            msg: "chunked body larger than the server accepts",
                        });
                    } else {
                        self.state = ChunkState::Data(size);
                    }
                }
                ChunkState::Data(remaining) => {
                    let avail = buf.len() - *pos;
                    if avail == 0 {
                        return Ok(false);
                    }
                    let take = avail.min(remaining);
                    self.body.extend_from_slice(&buf[*pos..*pos + take]);
                    *pos += take;
                    if take == remaining {
                        self.state = ChunkState::DataCrlf;
                    } else {
                        self.state = ChunkState::Data(remaining - take);
                        return Ok(false);
                    }
                }
                ChunkState::DataCrlf => {
                    if buf.len() - *pos < 2 {
                        return Ok(false);
                    }
                    if &buf[*pos..*pos + 2] != b"\r\n" {
                        return Err(bad("chunk payload not CRLF-terminated"));
                    }
                    *pos += 2;
                    self.state = ChunkState::Size;
                }
                ChunkState::Trailers => {
                    let Some(eol) = find_crlf(&buf[*pos..]) else {
                        if buf.len() - *pos > MAX_HEAD_BYTES {
                            return Err(ParseError {
                                status: 431,
                                msg: "trailer section too large",
                            });
                        }
                        return Ok(false);
                    };
                    *pos += eol + 2;
                    if eol == 0 {
                        self.state = ChunkState::Done;
                    }
                }
            }
        }
    }

    /// Dechunked bytes buffered so far.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// The complete dechunked body; call once [`feed`](Self::feed)
    /// returned `true`.
    pub fn into_body(self) -> Vec<u8> {
        self.body
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// A blocking job handed to the handler pool.
struct Job {
    token: u64,
    req: Request,
    deadline: Instant,
}

/// A finished job on its way back to the loop.
struct Completion {
    token: u64,
    response: Response,
}

struct Shared {
    shutdown: AtomicBool,
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Write end of the loop's self-pipe; one byte = one wakeup.
    waker: UnixStream,
}

impl Shared {
    fn wake(&self) {
        // Non-blocking: if the pipe is full the loop is already awake.
        let _ = (&self.waker).write(&[1]);
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.jobs_ready.notify_all();
        self.wake();
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`shutdown`](Self::shutdown) + [`join`](Self::join), or let a client
/// `POST /v1/shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    app: Arc<App>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The application state (store + stats), for in-process callers like
    /// the bench harness.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Requests shutdown; returns immediately. Safe to call repeatedly.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the event loop and every handler thread have exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds, spawns the event loop and handler pool, and returns a handle.
///
/// # Errors
///
/// Any bind failure from the OS, or epoll/self-pipe creation failure.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let mut app = App::new(config.store_budget_bytes).with_limits(limits_for(&config));
    if let Some(dir) = &config.data_dir {
        let disk = cachetime_disk::SegmentStore::open_with_metrics(
            cachetime_disk::DiskConfig {
                root: dir.clone(),
                budget_bytes: config.disk_budget_bytes,
                quarantine_cap_bytes: cachetime_disk::DEFAULT_QUARANTINE_CAP_BYTES,
            },
            cachetime_disk::DiskMetrics::in_registry(app.registry()),
        )?;
        app = app.with_disk(disk);
        // Warm the in-memory store before the listener binds, so the
        // first request after a restart already sees every intact
        // segment and re-records nothing.
        app.recover_from_disk()?;
    }
    serve_with_app(config, Arc::new(app))
}

/// The [`Limits`] that [`serve`] derives from a config — public so
/// binaries that build their own [`App`] (e.g. to share a metric
/// registry) and call [`serve_with_app`] apply the same policy.
pub fn limits_for(config: &ServerConfig) -> Limits {
    let workers = resolve_workers(config.workers);
    Limits {
        request_deadline: Duration::from_millis(config.request_deadline_ms.max(1)),
        max_inflight_recordings: if config.max_inflight_recordings == 0 {
            (workers * 2).max(2)
        } else {
            config.max_inflight_recordings
        },
    }
}

fn resolve_workers(configured: usize) -> usize {
    if configured == 0 {
        cachetime::sweep::available_jobs()
    } else {
        configured
    }
}

/// [`serve`] with caller-supplied application state (tests pre-seed the
/// store or arm fault plans through this). The app's [`Limits`] govern
/// deadlines and admission; only `addr`/`workers`/`max_queue` are taken
/// from `config`.
pub fn serve_with_app(config: ServerConfig, app: Arc<App>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = resolve_workers(config.workers);
    let max_conns = config.max_queue.max(1);

    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        jobs: Mutex::new(VecDeque::new()),
        jobs_ready: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker: wake_tx,
    });

    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poller.add(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READABLE)?;

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        let app = Arc::clone(&app);
        threads.push(
            std::thread::Builder::new()
                .name("ctserve-loop".into())
                .spawn(move || {
                    EventLoop {
                        poller,
                        listener,
                        wake_rx,
                        app,
                        shared,
                        conns: HashMap::new(),
                        next_token: TOKEN_FIRST_CONN,
                        max_conns,
                        draining: false,
                    }
                    .run()
                })
                .expect("spawn event loop"),
        );
    }
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        let app = Arc::clone(&app);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ctserve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &app))
                .expect("spawn worker"),
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        app,
        threads,
    })
}

/// The canned response the accept path sheds over-limit connections with
/// (no allocation, no handler, bounded write).
const QUEUE_FULL_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 29\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{\"error\":\"connection shed\"}\r\n";

/// A handler-pool thread: pops blocking jobs, runs them panic-isolated,
/// posts completions, and wakes the loop.
fn worker_loop(shared: &Shared, app: &App) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(j) = jobs.pop_front() {
                    break j;
                }
                jobs = shared.jobs_ready.wait(jobs).unwrap();
            }
        };
        app.stats.in_flight.add(1);
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            app.handle_blocking(&job.req, job.deadline)
        }))
        .unwrap_or_else(|_| {
            // The handler unwound. The store's in-flight guards have
            // already cleaned up; the pool survives and the client learns
            // it was the server's fault.
            app.stats.panics.inc();
            Response::error(500, "internal panic; worker recovered")
        });
        app.stats.in_flight.add(-1);
        shared.completions.lock().unwrap().push(Completion {
            token: job.token,
            response,
        });
        shared.wake();
    }
}

/// Loop-side metadata for a request between dispatch and response write.
struct ReqMeta {
    method: String,
    path: String,
    keep_alive: bool,
    dispatched_at: Instant,
    deadline: Instant,
}

/// One connection as the loop tracks it: the state machine plus the
/// loop-side bookkeeping (registration, timers, offload metadata).
struct ConnState {
    conn: Connection<TcpStream>,
    /// What is currently registered in epoll; `None` = unregistered
    /// (dispatched or delay-parked connections sit outside the interest
    /// set entirely, so a dead peer cannot spin the level-triggered loop).
    registered: Option<Interest>,
    /// Set while a job for this connection is in the handler pool.
    pending: Option<ReqMeta>,
    /// Kill the write if not flushed by then.
    write_deadline: Option<Instant>,
    /// Injected write delay: hold the response until then.
    delay_until: Option<Instant>,
    /// Flush, then stop the server (a `/v1/shutdown` response).
    shutdown_after_write: bool,
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    app: Arc<App>,
    shared: Arc<Shared>,
    conns: HashMap<u64, ConnState>,
    next_token: u64,
    max_conns: usize,
    /// A shutdown response is being flushed; stop accepting, close
    /// keep-alive connections as their writes finish.
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let next_timer = self.sweep_timers();
            let timeout = next_timer
                .map(|t| t.saturating_duration_since(Instant::now()))
                .unwrap_or(MAX_POLL)
                .min(MAX_POLL);
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.pump(token),
                }
            }
            self.drain_completions();
        }
        // Teardown: wake the pool so every worker sees the flag, then drop
        // the poller/listener/conns (closing all sockets).
        self.shared.request_shutdown();
    }

    /// Fires expired read/write deadlines and due write delays; returns
    /// the earliest future instant the loop must wake for.
    fn sweep_timers(&mut self) -> Option<Instant> {
        let now = Instant::now();
        let read_budget = self.app.limits().request_deadline;
        let mut next: Option<Instant> = None;
        let mut expired_reads = Vec::new();
        let mut expired_writes = Vec::new();
        let mut due_delays = Vec::new();
        for (&token, cs) in &self.conns {
            let mut candidates: [Option<Instant>; 2] = [None, None];
            if cs.conn.is_reading() {
                if let Some(started) = cs.conn.started() {
                    let expiry = started + read_budget;
                    if expiry <= now {
                        expired_reads.push(token);
                        continue;
                    }
                    candidates[0] = Some(expiry);
                }
            } else if cs.conn.is_writing() {
                if let Some(due) = cs.delay_until {
                    if due <= now {
                        due_delays.push(token);
                        continue;
                    }
                    candidates[0] = Some(due);
                }
                if let Some(wd) = cs.write_deadline {
                    if wd <= now {
                        expired_writes.push(token);
                        continue;
                    }
                    candidates[1] = Some(wd);
                }
            }
            for t in candidates.into_iter().flatten() {
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
        }
        for token in expired_reads {
            // The peer started a request and never finished it within
            // budget (slowloris or a stalled sender).
            self.app.stats.timeouts.inc();
            self.app.stats.errors.inc();
            self.respond_raw(
                token,
                &Response::error(408, "request not received within the deadline"),
                false,
            );
            self.pump(token);
        }
        for token in expired_writes {
            self.close_conn(token);
        }
        for token in due_delays {
            if let Some(cs) = self.conns.get_mut(&token) {
                cs.delay_until = None;
            }
            self.pump(token);
        }
        next
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    if self.draining || self.shared.shutdown.load(Ordering::SeqCst) {
                        continue; // drop it; the server is going away
                    }
                    if self.conns.len() >= self.max_conns {
                        // Shed: answer fast and hang up. The socket is
                        // still blocking here, so bound the write to keep
                        // a hostile peer from parking the loop.
                        self.app.stats.shed.inc();
                        self.app.stats.errors.inc();
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                        let _ = stream.write_all(QUEUE_FULL_RESPONSE);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        ConnState {
                            conn: Connection::new(stream),
                            registered: Some(Interest::READABLE),
                            pending: None,
                            write_deadline: None,
                            delay_until: None,
                            shutdown_after_write: false,
                        },
                    );
                    // The request may already be in the socket buffer.
                    self.pump(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn drain_completions(&mut self) {
        let done = std::mem::take(&mut *self.shared.completions.lock().unwrap());
        for c in done {
            let Some(cs) = self.conns.get_mut(&c.token) else {
                continue; // the connection died while its job ran
            };
            let Some(meta) = cs.pending.take() else {
                continue;
            };
            self.finish_request(c.token, &meta, c.response);
            self.pump(c.token);
        }
    }

    /// Drives one connection forward — reads, parses, dispatches, writes —
    /// until it parks (needs readiness, a timer, or a handler), closes, or
    /// the buffer runs dry. Iterative, so a pipelined burst cannot recurse.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(cs) = self.conns.get_mut(&token) else {
                return;
            };
            if cs.conn.is_closed() {
                self.close_conn(token);
                return;
            }
            if cs.conn.is_dispatched() {
                return; // a handler owns it; the completion resumes us
            }
            if cs.conn.is_writing() {
                let ev = cs.conn.on_writable(Instant::now());
                let shutting = cs.shutdown_after_write;
                match ev {
                    WriteEvent::Flushed { keep } => {
                        cs.write_deadline = None;
                        cs.delay_until = None;
                        if shutting {
                            self.shared.request_shutdown();
                            self.close_conn(token);
                            return;
                        }
                        if !keep || self.draining {
                            self.close_conn(token);
                            return;
                        }
                        continue; // back to Reading; residual bytes may pipeline
                    }
                    WriteEvent::NeedWritable => {
                        self.set_interest(token, Some(Interest::WRITABLE));
                        return;
                    }
                    WriteEvent::Delayed(until) => {
                        cs.delay_until = Some(until);
                        // Nothing to wait on but time; leave epoll so a
                        // dead peer cannot spin the level-triggered loop.
                        self.set_interest(token, None);
                        return;
                    }
                    WriteEvent::Disconnected => {
                        if shutting {
                            // The shutdown requester hung up early; the
                            // order still stands.
                            self.shared.request_shutdown();
                        }
                        self.close_conn(token);
                        return;
                    }
                    WriteEvent::NotWriting => return,
                }
            }
            // Reading.
            match cs.conn.on_readable() {
                ReadEvent::Request(req) => {
                    self.handle_request(token, req);
                    continue;
                }
                ReadEvent::NeedMore => {
                    self.set_interest(token, Some(Interest::READABLE));
                    return;
                }
                ReadEvent::Bad(e) => {
                    // Malformed request: answer its proper status, then close.
                    self.app.stats.errors.inc();
                    self.respond_raw(token, &Response::error(e.status, e.msg), false);
                    continue;
                }
                ReadEvent::Doa => {
                    // The request's own X-Deadline-Ms was spent before it
                    // finished arriving: 408 without touching the handler.
                    self.app.stats.timeouts.inc();
                    self.app.stats.errors.inc();
                    self.respond_raw(
                        token,
                        &Response::error(408, "request not received within the deadline"),
                        false,
                    );
                    continue;
                }
                ReadEvent::Disconnected => {
                    self.close_conn(token);
                    return;
                }
                ReadEvent::NotReading => return,
            }
        }
    }

    /// Routes a freshly parsed request: inline if the app can answer
    /// without blocking, otherwise off to the handler pool.
    fn handle_request(&mut self, token: u64, req: Request) {
        let dispatched_at = Instant::now();
        let deadline = self.app.deadline_for(&req);
        let meta = ReqMeta {
            method: req.method.clone(),
            path: req.path.clone(),
            keep_alive: req.keep_alive,
            dispatched_at,
            deadline,
        };
        self.app.stats.in_flight.add(1);
        let inline = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.app.try_handle(&req, deadline)
        }));
        self.app.stats.in_flight.add(-1);
        match inline {
            Err(_) => {
                self.app.stats.panics.inc();
                let resp = Response::error(500, "internal panic; worker recovered");
                self.finish_request(token, &meta, resp);
            }
            Ok(Some(resp)) => self.finish_request(token, &meta, resp),
            Ok(None) => {
                // Blocking work (a recording, or a join of one): hand it
                // to the pool and deregister until the completion arrives.
                if let Some(cs) = self.conns.get_mut(&token) {
                    cs.pending = Some(meta);
                }
                self.set_interest(token, None);
                self.shared.jobs.lock().unwrap().push_back(Job {
                    token,
                    req,
                    deadline,
                });
                self.shared.jobs_ready.notify_one();
            }
        }
    }

    /// Accounts a handled request and queues its response on the
    /// connection (the caller pumps afterwards).
    fn finish_request(&mut self, token: u64, meta: &ReqMeta, resp: Response) {
        self.app
            .stats
            .endpoint(&meta.method, &meta.path)
            .record(meta.dispatched_at.elapsed().as_micros() as u64);
        if resp.status >= 400 {
            self.app.stats.errors.inc();
        }
        let keep = meta.keep_alive && !resp.shutdown && resp.status != 500;
        // The serve.write fault point: a panic drops the connection —
        // clients see a torn read — and a delay holds the response back
        // via a timer instead of parking a thread.
        let not_before = match self.app.faults().decide("serve.write") {
            FaultAction::Proceed => None,
            FaultAction::Delay(d) => Some(Instant::now() + d),
            FaultAction::Panic => {
                self.app.stats.panics.inc();
                if resp.shutdown {
                    self.shared.request_shutdown();
                }
                self.close_conn(token);
                return;
            }
        };
        let Some(cs) = self.conns.get_mut(&token) else {
            return;
        };
        let budget = meta
            .deadline
            .saturating_duration_since(Instant::now())
            .clamp(Duration::from_millis(250), Duration::from_secs(10));
        cs.write_deadline = Some(Instant::now() + budget);
        cs.delay_until = not_before;
        cs.shutdown_after_write = resp.shutdown;
        if resp.shutdown {
            self.draining = true;
        }
        cs.conn
            .begin_response(encode_response(&resp, keep), keep, not_before);
    }

    /// Queues a transport-level response (408/4xx) outside any handled
    /// request: no endpoint histogram, bounded default write budget.
    fn respond_raw(&mut self, token: u64, resp: &Response, keep: bool) {
        let Some(cs) = self.conns.get_mut(&token) else {
            return;
        };
        cs.write_deadline = Some(Instant::now() + DEFAULT_WRITE_BUDGET);
        cs.delay_until = None;
        cs.conn.begin_response(encode_response(resp, keep), keep, None);
    }

    /// Reconciles the connection's epoll registration with `want`
    /// (`None` = out of the set entirely).
    fn set_interest(&mut self, token: u64, want: Option<Interest>) {
        let Some(cs) = self.conns.get_mut(&token) else {
            return;
        };
        if cs.registered == want {
            return;
        }
        let fd = cs.conn.transport().as_raw_fd();
        let ok = match want {
            Some(interest) => {
                if cs.registered.is_some() {
                    self.poller.modify(fd, token, interest)
                } else {
                    self.poller.add(fd, token, interest)
                }
            }
            None => self.poller.remove(fd),
        };
        if ok.is_ok() {
            cs.registered = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(cs) = self.conns.remove(&token) {
            if cs.registered.is_some() {
                let _ = self.poller.remove(cs.conn.transport().as_raw_fd());
            }
            // Dropping cs closes the socket.
        }
    }
}

/// Serializes a [`Response`] into the full HTTP/1.1 byte stream the state
/// machine writes.
fn encode_response(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let retry_after = match resp.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    if let Some(chunks) = &resp.chunks {
        // Chunked transfer: each application chunk becomes one HTTP chunk
        // (hex length + CRLF framing), closed by the zero-length chunk.
        // The body is never concatenated into a single string.
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n{}Connection: {}\r\n\r\n",
            resp.status, reason, resp.content_type, retry_after, connection,
        );
        let payload: usize = chunks.iter().map(|c| c.len() + 16).sum();
        let mut out = Vec::with_capacity(head.len() + payload + 8);
        out.extend_from_slice(head.as_bytes());
        for chunk in chunks.iter().filter(|c| !c.is_empty()) {
            out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            out.extend_from_slice(chunk.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"0\r\n\r\n");
        return out;
    }
    // Raw binary bodies (segment transfers) and text bodies share the
    // Content-Length framing; only the byte source differs.
    let payload: &[u8] = match &resp.raw {
        Some(bytes) => bytes,
        None => resp.body.as_bytes(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        resp.status, reason, resp.content_type, payload.len(), retry_after, connection,
    );
    let mut out = Vec::with_capacity(head.len() + payload.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Attempts to frame one request at the front of `buf`; on success the
/// request's bytes are drained so pipelined successors stay buffered.
///
/// This is the full head parser the server runs on untrusted bytes, public
/// so the property tests can feed it garbage directly.
///
/// # Errors
///
/// A [`ParseError`] carrying the `4xx` the server answers: `431` for a
/// head that exceeds [`MAX_HEAD_BYTES`] without terminating, `413` for a
/// `Content-Length` above the route's cap ([`body_cap_for`]; refused
/// before any body byte is read), `400` for everything structurally
/// wrong — including a request carrying *both* `Transfer-Encoding` and
/// `Content-Length`, the classic smuggling ambiguity.
pub fn parse_request(buf: &mut Vec<u8>) -> Result<Parsed, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError {
                status: 431,
                msg: "request head too large",
            });
        }
        return Ok(Parsed::Incomplete);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?.to_string();
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut deadline_ms = None;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Repeated Content-Length headers are a request-smuggling
            // vector (RFC 9112 §6.3): two framings of the same stream.
            // Reject duplicates outright — even agreeing ones — rather
            // than letting the last value win.
            let parsed = value.parse().map_err(|_| bad("bad Content-Length"))?;
            if content_length.replace(parsed).is_some() {
                return Err(bad("duplicate Content-Length"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Only the final "chunked" coding is supported; anything else
            // (gzip, a repeated header) leaves the body unframeable.
            if !value.eq_ignore_ascii_case("chunked") || chunked {
                return Err(bad("unsupported Transfer-Encoding"));
            }
            chunked = true;
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            deadline_ms = Some(value.parse().map_err(|_| bad("bad X-Deadline-Ms"))?);
        }
    }
    let cap = body_cap_for(&path);
    let body_start = head_end + 4;
    if chunked {
        // Transfer-Encoding alongside Content-Length is the other classic
        // smuggling shape (RFC 9112 §6.3): two framings of one stream.
        if content_length.is_some() {
            return Err(bad("Transfer-Encoding with Content-Length"));
        }
        buf.drain(..body_start);
        return Ok(Parsed::Chunked {
            req: Request {
                method,
                path,
                query,
                body: Vec::new(),
                keep_alive,
                deadline_ms,
            },
            decoder: ChunkedDecoder::new(cap),
        });
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > cap {
        return Err(ParseError {
            status: 413,
            msg: "body larger than the server accepts",
        });
    }
    if buf.len() < body_start + content_length {
        return Ok(Parsed::Incomplete); // body still arriving
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    buf.drain(..body_start + content_length);
    Ok(Parsed::Request(Request {
        method,
        path,
        query,
        body,
        keep_alive,
        deadline_ms,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> (Vec<Request>, Vec<u8>) {
        let mut buf = input.to_vec();
        let mut out = Vec::new();
        while let Ok(Parsed::Request(r)) = parse_request(&mut buf) {
            out.push(r);
        }
        (out, buf)
    }

    #[test]
    fn frames_a_simple_get() {
        let (reqs, rest) = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/healthz");
        assert!(reqs[0].keep_alive);
        assert!(reqs[0].body.is_empty());
        assert!(reqs[0].deadline_ms.is_none());
        assert!(rest.is_empty());
    }

    #[test]
    fn chunked_responses_frame_each_chunk_and_terminate() {
        let resp = Response {
            chunks: Some(vec!["{\"a\":".into(), "1}".into()]),
            body: String::new(),
            ..Response::error(200, "")
        };
        let bytes = encode_response(&resp, true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        // 5-byte and 2-byte chunks, then the zero terminator.
        assert!(text.ends_with("5\r\n{\"a\":\r\n2\r\n1}\r\n0\r\n\r\n"), "{text}");
    }

    #[test]
    fn frames_a_post_with_body_and_pipelined_successor() {
        let (reqs, rest) = parse_all(
            b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /v1/stats HTTP/1.1\r\n\r\n",
        );
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].body, b"{}");
        assert_eq!(reqs[1].path, "/v1/stats");
        assert!(rest.is_empty());
    }

    #[test]
    fn strips_query_strings_and_honors_connection_close() {
        let (reqs, _) = parse_all(b"GET /v1/stats?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(reqs[0].path, "/v1/stats");
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let (reqs, _) = parse_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        let mut buf = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345".to_vec();
        assert!(matches!(parse_request(&mut buf), Ok(Parsed::Incomplete)));
        buf.extend_from_slice(b"67890");
        assert!(matches!(parse_request(&mut buf), Ok(Parsed::Request(_))));
    }

    #[test]
    fn deadline_header_is_parsed_and_validated() {
        let (reqs, _) = parse_all(b"GET /healthz HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n");
        assert_eq!(reqs[0].deadline_ms, Some(250));
        let mut buf = b"GET / HTTP/1.1\r\nX-Deadline-Ms: soonish\r\n\r\n".to_vec();
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 400);
    }

    #[test]
    fn duplicate_content_length_is_rejected_not_last_wins() {
        // Regression (request smuggling): two Content-Length headers used
        // to silently let the last one win, so a front proxy and this
        // server could frame the stream differently. Any repeat — even
        // two agreeing values — must be a 400.
        for head in [
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}xyz",
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
            "POST /x HTTP/1.1\r\ncontent-length: 2\r\nCONTENT-LENGTH: 5\r\n\r\n{}xyz",
        ] {
            let mut buf = head.as_bytes().to_vec();
            let err = parse_request(&mut buf).unwrap_err();
            assert_eq!(err.status, 400, "{head:?}");
            assert_eq!(err.msg, "duplicate Content-Length", "{head:?}");
        }
        // A single Content-Length still frames normally.
        let (reqs, rest) = parse_all(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, b"{}");
        assert!(rest.is_empty());
    }

    #[test]
    fn rejects_oversized_and_runaway_heads_with_their_statuses() {
        // Oversized Content-Length: refused at head-parse time with 413,
        // even though zero body bytes have arrived.
        let mut buf = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .into_bytes();
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 413);
        // A runaway head with no terminator: 431 once past the cap.
        let mut buf = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 431);
    }

    #[test]
    fn trace_uploads_get_the_large_body_cap() {
        assert_eq!(body_cap_for("/v1/traces"), MAX_TRACE_BODY_BYTES);
        assert_eq!(body_cap_for("/v1/simulate"), MAX_BODY_BYTES);
        // The raised cap applies to Content-Length framing too.
        let mut buf = format!(
            "POST /v1/traces HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .into_bytes();
        assert!(matches!(parse_request(&mut buf), Ok(Parsed::Incomplete)));
    }

    #[test]
    fn frames_a_chunked_post_and_preserves_pipelined_successor() {
        // Two chunks: "0 100" (5 bytes) then "0\r\n" (3 bytes), so the
        // dechunked body is one din line, "0 1000\r\n".
        let mut buf = b"POST /v1/traces HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
            5\r\n0 100\r\n3\r\n0\r\n\r\n0\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n"
            .to_vec();
        let Ok(Parsed::Chunked { req, mut decoder }) = parse_request(&mut buf) else {
            panic!("expected a chunked head");
        };
        assert_eq!(req.path, "/v1/traces");
        assert!(decoder.feed(&mut buf).unwrap());
        assert_eq!(decoder.into_body(), b"0 1000\r\n");
        // The pipelined GET stayed in the buffer, untouched.
        let (reqs, rest) = {
            let mut out = Vec::new();
            while let Ok(Parsed::Request(r)) = parse_request(&mut buf) {
                out.push(r);
            }
            (out, buf)
        };
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/v1/stats");
        assert!(rest.is_empty());
    }

    #[test]
    fn chunked_bodies_decode_across_arbitrary_read_boundaries() {
        // The same upload must dechunk identically however the socket
        // slices it — including splits inside size lines and CRLFs.
        let wire =
            b"4\r\nabcd\r\n10\r\n0123456789abcdef\r\n1\r\nZ\r\n0\r\nTrailer: ignored\r\n\r\n";
        let want = b"abcd0123456789abcdefZ";
        for step in 1..=wire.len() {
            let mut decoder = ChunkedDecoder::new(MAX_BODY_BYTES);
            let mut buf = Vec::new();
            let mut done = false;
            for piece in wire.chunks(step) {
                buf.extend_from_slice(piece);
                done = decoder.feed(&mut buf).unwrap();
            }
            assert!(done, "step {step}");
            assert!(buf.is_empty(), "step {step}");
            assert_eq!(decoder.into_body(), want, "step {step}");
        }
    }

    #[test]
    fn transfer_encoding_with_content_length_is_smuggling() {
        let mut buf =
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 3\r\n\r\n"
                .to_vec();
        let err = parse_request(&mut buf).unwrap_err();
        assert_eq!(err.status, 400);
        // Non-chunked codings are unframeable here: also 400.
        let mut buf = b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n".to_vec();
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 400);
    }

    #[test]
    fn lying_chunked_upload_cannot_exhaust_memory() {
        // Regression: the body cap used to be enforced only against
        // Content-Length, so a chunked sender could stream forever. The
        // decoder must refuse at the *claim* — before buffering payload —
        // and also when many honest chunks accumulate past the cap.
        let mut decoder = ChunkedDecoder::new(MAX_BODY_BYTES);
        let mut buf = format!("{:x}\r\n", MAX_BODY_BYTES + 1).into_bytes();
        let err = decoder.feed(&mut buf).unwrap_err();
        assert_eq!(err.status, 413);
        assert_eq!(decoder.body_len(), 0, "no payload buffered for a lie");

        // An "endless" upload of honest 64 KiB chunks: cut off at the cap
        // with 413, with memory bounded by the cap the whole way.
        let mut decoder = ChunkedDecoder::new(MAX_BODY_BYTES);
        let mut buf = Vec::new();
        let chunk = vec![b'x'; 64 * 1024];
        let mut refused = None;
        for _ in 0..(MAX_BODY_BYTES / chunk.len() + 8) {
            buf.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            buf.extend_from_slice(&chunk);
            buf.extend_from_slice(b"\r\n");
            match decoder.feed(&mut buf) {
                Ok(done) => assert!(!done),
                Err(e) => {
                    refused = Some(e);
                    break;
                }
            }
            assert!(decoder.body_len() <= MAX_BODY_BYTES);
        }
        assert_eq!(refused.expect("endless upload must be refused").status, 413);

        // A size line that never terminates is bounded too.
        let mut decoder = ChunkedDecoder::new(MAX_BODY_BYTES);
        let mut buf = vec![b'f'; MAX_CHUNK_LINE_BYTES + 1];
        assert_eq!(decoder.feed(&mut buf).unwrap_err().status, 400);
    }

    #[test]
    fn encodes_responses_with_retry_after_and_connection_headers() {
        let shed = Response::unavailable("busy");
        let bytes = encode_response(&shed, false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let ok = Response::error(404, "nope");
        let text = String::from_utf8(encode_response(&ok, true)).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"), "{text}");
    }
}
