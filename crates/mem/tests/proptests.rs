//! Property-based tests for the memory-system timing model.

use cachetime_mem::{FillRequest, MemoryConfig, MemorySystem, MemoryTiming, TransferRate};
use cachetime_types::{CycleTime, Nanos, Pid, WordAddr};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MemoryConfig> {
    (
        1u64..500, // read op ns
        1u64..500, // write op ns
        0u64..500, // recovery ns
        prop_oneof![
            (1u32..5).prop_map(TransferRate::WordsPerCycle),
            (1u32..5).prop_map(TransferRate::CyclesPerWord)
        ],
        0u32..8,       // wb depth
        any::<bool>(), // coalesce
        any::<bool>(), // read priority
    )
        .prop_map(|(r, w, rec, tr, depth, co, rp)| {
            MemoryConfig::builder()
                .read_op(Nanos(r))
                .write_op(Nanos(w))
                .recovery(Nanos(rec))
                .transfer(tr)
                .wb_depth(depth)
                .wb_coalesce(co)
                .read_priority(rp)
                .build()
                .expect("valid config")
        })
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u32)>> {
    // (op kind, addr, gap to next event)
    prop::collection::vec((0u8..3, 0u64..256, 0u32..30), 1..200)
}

proptest! {
    /// A fill can never complete faster than the pure read time, and the
    /// returned completion is never before `now`.
    #[test]
    fn fill_lower_bound(config in arb_config(), ct in 1u32..100, words_log in 0u32..6, now in 0u64..1000) {
        let ct = CycleTime::from_ns(ct).unwrap();
        let words = 1u32 << words_log;
        let mut mem = MemorySystem::new(&config, ct);
        let done = mem.fill(now, FillRequest { pid: Pid(0), addr: WordAddr::new(0), words, victim: None });
        let floor = MemoryTiming::new(&config, ct).read_time(words);
        prop_assert!(done >= now + floor, "done={done}, now={now}, floor={floor}");
    }

    /// Time never runs backwards across any interleaving of fills and
    /// writes, and the buffer never exceeds its depth.
    #[test]
    fn monotone_and_bounded(config in arb_config(), ops in arb_ops()) {
        let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
        let mut now = 0u64;
        for &(kind, addr, gap) in &ops {
            let a = WordAddr::new(addr);
            let t = match kind {
                0 => mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim: None }),
                1 => mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim: Some((WordAddr::new(addr ^ 0x1000), 4)) }),
                _ => mem.write_word(now, Pid(0), a),
            };
            prop_assert!(t >= now, "completion {t} before request {now}");
            prop_assert!(mem.pending_writes() <= config.wb_depth() as usize);
            now = t + gap as u64;
        }
        mem.drain_all(now);
        prop_assert_eq!(mem.pending_writes(), 0);
    }

    /// Replaying the same op sequence gives identical completion times and
    /// statistics (full determinism).
    #[test]
    fn deterministic(config in arb_config(), ops in arb_ops()) {
        let run = || {
            let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
            let mut now = 0u64;
            let mut times = Vec::new();
            for &(kind, addr, gap) in &ops {
                let a = WordAddr::new(addr);
                let t = match kind {
                    0 => mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim: None }),
                    1 => mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim: Some((WordAddr::new(addr ^ 0x1000), 4)) }),
                    _ => mem.write_word(now, Pid(0), a),
                };
                times.push(t);
                now = t + gap as u64;
            }
            (times, *mem.stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// Write-back traffic conservation: every accepted write eventually
    /// drains, and drained words equal pushed words (when coalescing is
    /// off).
    #[test]
    fn write_conservation(ops in arb_ops()) {
        let config = MemoryConfig::builder().wb_coalesce(false).build().unwrap();
        let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
        let mut now = 0u64;
        let mut pushed_words = 0u64;
        for &(kind, addr, gap) in &ops {
            let a = WordAddr::new(addr);
            if kind == 2 {
                now = mem.write_word(now, Pid(0), a);
                pushed_words += 1;
            } else {
                let victim = (kind == 1).then(|| (WordAddr::new(addr ^ 0x1000), 4u32));
                if victim.is_some() { pushed_words += 4; }
                now = mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim });
            }
            now += gap as u64;
        }
        mem.drain_all(now);
        prop_assert_eq!(mem.stats().write_words, pushed_words);
    }

    /// Quantization sanity across cycle times: the read time in *cycles*
    /// never increases when the cycle time grows (Table 2's monotonicity).
    #[test]
    fn read_cycles_monotone_in_cycle_time(config in arb_config(), words_log in 0u32..6) {
        let words = 1u32 << words_log;
        let mut prev = u64::MAX;
        for ns in 1..200u32 {
            let t = MemoryTiming::new(&config, CycleTime::from_ns(ns).unwrap());
            let cycles = t.read_time(words);
            prop_assert!(cycles <= prev);
            prev = cycles;
        }
    }

    /// Elapsed nanoseconds of a read (cycles × cycle time) never falls
    /// below the asynchronous component: quantization only adds time.
    #[test]
    fn quantization_never_loses_time(config in arb_config(), ns in 1u32..200) {
        let ct = CycleTime::from_ns(ns).unwrap();
        let t = MemoryTiming::new(&config, ct);
        let elapsed_ns = t.latency_cycles() * ns as u64;
        prop_assert!(elapsed_ns >= config.read_op().0);
        prop_assert!(elapsed_ns < config.read_op().0 + ns as u64);
    }

    /// Metamorphic: enabling coalescing never increases the number of
    /// memory write operations (it can only merge them).
    #[test]
    fn coalescing_never_adds_write_ops(ops in arb_ops()) {
        let run = |coalesce: bool| {
            let config = MemoryConfig::builder().wb_coalesce(coalesce).build().unwrap();
            let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
            let mut now = 0u64;
            for &(kind, addr, gap) in &ops {
                let a = WordAddr::new(addr);
                now = match kind {
                    0 | 1 => mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim: None }),
                    _ => mem.write_word(now, Pid(0), a),
                } + gap as u64;
            }
            mem.drain_all(now);
            mem.stats().writes
        };
        prop_assert!(run(true) <= run(false));
    }

    /// Metamorphic: a longer drain delay never increases write operations
    /// (a longer aging window only improves merging).
    #[test]
    fn longer_drain_delay_never_adds_write_ops(ops in arb_ops(), d1 in 0u64..16, extra in 1u64..64) {
        let run = |delay: u64| {
            let config = MemoryConfig::builder().wb_drain_delay(delay).build().unwrap();
            let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
            let mut now = 0u64;
            for &(kind, addr, gap) in &ops {
                let a = WordAddr::new(addr);
                now = match kind {
                    0 | 1 => mem.fill(now, FillRequest { pid: Pid(0), addr: a, words: 4, victim: None }),
                    _ => mem.write_word(now, Pid(0), a),
                } + gap as u64;
            }
            mem.drain_all(now);
            mem.stats().writes
        };
        prop_assert!(run(d1 + extra) <= run(d1));
    }
}
