//! Locality measurement: quantifying what the generators produce.
//!
//! The synthetic workloads stand in for real traces, so their locality is
//! a *calibration target*, not an incidental property. This module
//! measures the two statistics the experiments depend on:
//!
//! * **LRU stack distances** at block granularity — the shape behind the
//!   miss-ratio-versus-size curves of Figure 3-1 (a reuse at stack depth
//!   `d` hits in any LRU-ish cache holding more than `d` blocks);
//! * **sequential run lengths** — the shape behind the block-size curves
//!   of Figure 5-1.

use crate::trace::Trace;
use cachetime_types::AccessKind;
use std::collections::HashSet;

/// A log₂-bucketed histogram of LRU stack distances.
///
/// Bucket `i` counts reuses at depth `[2^i, 2^(i+1))`; `cold` counts
/// first touches (infinite depth).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StackDistances {
    /// Reuse counts by log₂ depth bucket.
    pub buckets: [u64; 32],
    /// First touches.
    pub cold: u64,
}

impl StackDistances {
    /// Total reuses (excluding cold misses).
    pub fn reuses(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The fraction of reuses at depth < `blocks` — an upper-bound hit
    /// ratio for a fully associative LRU cache of that many blocks.
    pub fn hit_fraction_within(&self, blocks: u64) -> f64 {
        let total = self.reuses() + self.cold;
        if total == 0 {
            return 0.0;
        }
        let cutoff = (63 - blocks.max(1).leading_zeros() as u64).min(31) as usize;
        let within: u64 = self.buckets[..cutoff].iter().sum();
        within as f64 / total as f64
    }
}

/// Measures block-granular LRU stack distances over a trace (per-process
/// address spaces kept separate, as in a virtual cache).
///
/// Runs in `O(refs × mean-depth)` with a move-to-front list — fine for the
/// calibration-sized traces this is used on.
pub fn stack_distances(trace: &Trace, block_words: u32) -> StackDistances {
    let mut out = StackDistances::default();
    let mut stack: Vec<(u16, u64)> = Vec::new();
    let mut present: HashSet<(u16, u64)> = HashSet::new();
    for r in trace.refs() {
        let key = (r.pid.0, r.addr.value() / block_words as u64);
        if present.contains(&key) {
            let depth = stack
                .iter()
                .rev()
                .position(|&k| k == key)
                .expect("present implies on stack");
            let bucket = (63 - (depth as u64).max(1).leading_zeros() as usize).min(31);
            out.buckets[bucket] += 1;
            let idx = stack.len() - 1 - depth;
            stack.remove(idx);
            stack.push(key);
        } else {
            out.cold += 1;
            present.insert(key);
            stack.push(key);
        }
    }
    out
}

/// Mean length of maximal strictly-sequential word runs among references
/// of one kind (`None` matches every kind).
pub fn mean_sequential_run(trace: &Trace, kind: Option<AccessKind>) -> f64 {
    let mut runs = 0u64;
    let mut total = 0u64;
    let mut prev: Option<u64> = None;
    let mut len = 0u64;
    for r in trace.refs() {
        if let Some(k) = kind {
            if r.kind != k {
                continue;
            }
        }
        let a = r.addr.value();
        match prev {
            Some(p) if a == p + 1 => len += 1,
            _ => {
                if len > 0 {
                    runs += 1;
                    total += len;
                }
                len = 1;
            }
        }
        prev = Some(a);
    }
    if len > 0 {
        runs += 1;
        total += len;
    }
    if runs == 0 {
        0.0
    } else {
        total as f64 / runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use cachetime_types::{MemRef, Pid, WordAddr};

    #[test]
    fn stack_distances_of_a_tight_loop() {
        // a,b,a,b,...: every reuse at depth 1 (one block in between).
        let refs: Vec<MemRef> = (0..100)
            .map(|i| MemRef::load(WordAddr::new(if i % 2 == 0 { 0 } else { 64 }), Pid(0)))
            .collect();
        let t = Trace::new("loop", refs, 0);
        let d = stack_distances(&t, 4);
        assert_eq!(d.cold, 2);
        assert_eq!(d.reuses(), 98);
        assert_eq!(d.buckets[0], 98, "all reuses at depth 1");
        assert!(d.hit_fraction_within(2) > 0.9);
    }

    #[test]
    fn stack_distances_of_a_cyclic_sweep() {
        // Sweeping N blocks cyclically: every reuse at depth N-1.
        let n = 16u64;
        let refs: Vec<MemRef> = (0..320)
            .map(|i| MemRef::load(WordAddr::new((i % n) * 4), Pid(0)))
            .collect();
        let t = Trace::new("sweep", refs, 0);
        let d = stack_distances(&t, 4);
        assert_eq!(d.cold, n);
        // depth 15 lands in bucket 3 ([8,16)).
        assert_eq!(d.buckets[3], d.reuses());
        assert_eq!(d.hit_fraction_within(8), 0.0);
        assert!(d.hit_fraction_within(16) > 0.9);
    }

    #[test]
    fn per_process_stacks_are_independent() {
        // Two processes alternating on the same address: each sees its own
        // depth-1 reuse, not interleaving-induced depth-2.
        let refs: Vec<MemRef> = (0..100)
            .map(|i| MemRef::load(WordAddr::new(0), Pid(i % 2)))
            .collect();
        let t = Trace::new("two", refs, 0);
        let d = stack_distances(&t, 4);
        assert_eq!(d.cold, 2);
        assert_eq!(d.buckets[0], 98);
    }

    #[test]
    fn run_lengths_of_pure_sequences() {
        let refs: Vec<MemRef> = (0..40)
            .map(|i| MemRef::ifetch(WordAddr::new(i), Pid(0)))
            .collect();
        let t = Trace::new("seq", refs, 0);
        assert_eq!(mean_sequential_run(&t, Some(AccessKind::IFetch)), 40.0);
        assert_eq!(mean_sequential_run(&t, Some(AccessKind::Load)), 0.0);
    }

    #[test]
    fn catalog_traces_have_the_calibrated_locality_profile() {
        let t = catalog::savec(0.02).generate();
        let d = stack_distances(&t, 4);
        // Heavy reuse near the top of the stack (temporal locality)...
        assert!(
            d.hit_fraction_within(256) > 0.5,
            "top-of-stack reuse too weak: {:.2}",
            d.hit_fraction_within(256)
        );
        // ...but a genuine tail (capacity misses persist at mid sizes).
        assert!(
            d.hit_fraction_within(256) < 0.98,
            "no tail: everything reused shallowly"
        );
        // Instruction fetches run longer sequentially than data accesses —
        // why the miss-ratio-optimal I-block exceeds the D-block (Fig 5-1).
        let i_run = mean_sequential_run(&t, Some(AccessKind::IFetch));
        let d_run = mean_sequential_run(&t, Some(AccessKind::Load));
        assert!(
            i_run > d_run,
            "instruction runs ({i_run:.2}) must exceed data runs ({d_run:.2})"
        );
    }
}
