//! Everything below the first-level caches: mid-level caches with their
//! write buffers and ports, and main memory.
//!
//! This is the *timing* half of the machine, factored out so that the
//! direct engine ([`Simulator`](crate::Simulator)) and the event-trace
//! replayer ([`replay`](crate::replay)) drive bit-for-bit the same
//! accounting. Both present the same inputs — fill requests and downstream
//! word writes stamped with the current cycle — and both receive the same
//! busy-until timestamps back, so a repriced run cannot drift from a
//! direct one.

use crate::system::{LevelTwoConfig, SystemConfig};
use cachetime_cache::{Cache, CacheStats, ReadOutcome, WriteOutcome};
use cachetime_mem::{FillGrant, FillRequest, MemorySystem, WbEntry, WbPayload, WriteBuffer};
use cachetime_types::{Pid, WordAddr};

/// A mid-level cache (L2 or L3) with the write buffer feeding it from
/// above and its port timing.
///
/// Structurally a sibling of [`MemorySystem`], but drains land in a cache
/// (which may hit, miss-around, or miss-allocate) rather than in DRAM, so
/// the logic lives here beside the hierarchy that owns it. "Designing a
/// second cache between the CPU/cache and main memory poses the same set
/// of questions as the first level of caching" — the hierarchy treats
/// every mid-level uniformly and recurses downward on misses.
#[derive(Debug, Clone)]
struct MidLevel {
    cache: Cache,
    read_cycles: u64,
    write_cycles: u64,
    wb: WriteBuffer,
    free_at: u64,
}

impl MidLevel {
    fn new(config: &LevelTwoConfig) -> Self {
        MidLevel {
            cache: Cache::new(config.cache),
            read_cycles: config.read_cycles,
            write_cycles: config.write_cycles,
            wb: WriteBuffer::new(config.wb_depth),
            free_at: 0,
        }
    }
}

/// The downstream hierarchy: mid-levels from the L1 side down
/// (`levels[0]` = L2, `levels[1]` = L3), then main memory.
#[derive(Debug, Clone)]
pub(crate) struct Downstream {
    levels: Vec<MidLevel>,
    mem: MemorySystem,
}

impl Downstream {
    /// Builds a cold downstream hierarchy from a configuration's timing
    /// half.
    pub(crate) fn new(config: &SystemConfig) -> Self {
        Downstream {
            levels: config
                .l2()
                .into_iter()
                .chain(config.l3())
                .map(MidLevel::new)
                .collect(),
            mem: MemorySystem::new(config.memory(), config.cycle_time()),
        }
    }

    /// Second-level statistics, if an L2 is configured.
    pub(crate) fn l2_stats(&self) -> Option<CacheStats> {
        self.levels.first().map(|l| *l.cache.stats())
    }

    /// Third-level statistics, if an L3 is configured.
    pub(crate) fn l3_stats(&self) -> Option<CacheStats> {
        self.levels.get(1).map(|l| *l.cache.stats())
    }

    /// Main-memory statistics.
    pub(crate) fn mem_stats(&self) -> &cachetime_mem::MemStats {
        self.mem.stats()
    }

    /// Resets statistics (warm-start boundary) without touching state.
    pub(crate) fn reset_stats(&mut self) {
        for level in &mut self.levels {
            level.cache.reset_stats();
        }
        self.mem.reset_stats();
    }

    /// Fills an L1 (sub-)block from the next level down; returns the cycle
    /// the data is fully in the L1.
    #[inline]
    pub(crate) fn fill_l1(
        &mut self,
        now: u64,
        pid: Pid,
        addr: WordAddr,
        words: u32,
        victim: Option<(WordAddr, u32)>,
    ) -> FillGrant {
        // Memory-only hierarchies (the paper's baseline machine) take every
        // miss through this call; skip the recursion so the memory model
        // inlines into the per-miss hot loops.
        if self.levels.is_empty() {
            return self.mem.fill_grant(
                now,
                FillRequest {
                    pid,
                    addr,
                    words,
                    victim,
                },
            );
        }
        self.fill_from(0, now, pid, addr, words, victim)
    }

    /// Cycles to move `words` words into the L1 from whatever services its
    /// misses: the memory's backplane rate, or one word per cycle from a
    /// mid-level cache.
    pub(crate) fn upstream_transfer_cycles(&self, words: u32) -> u64 {
        if self.levels.is_empty() {
            self.mem.timing().transfer_cycles(words)
        } else {
            words as u64
        }
    }

    /// Services a fill request at hierarchy depth `idx` (`levels[idx]`, or
    /// main memory once the mid-levels are exhausted). Returns the cycle
    /// the requested words are fully delivered to the level above.
    fn fill_from(
        &mut self,
        idx: usize,
        now: u64,
        pid: Pid,
        addr: WordAddr,
        words: u32,
        victim: Option<(WordAddr, u32)>,
    ) -> FillGrant {
        if idx >= self.levels.len() {
            return self.mem.fill_grant(
                now,
                FillRequest {
                    pid,
                    addr,
                    words,
                    victim,
                },
            );
        }
        self.catch_up_level(idx, now);
        // Read-address match against pending writes into this level.
        if let Some(i) = self.levels[idx].wb.find_overlap(pid, addr, words) {
            for _ in 0..=i {
                self.drain_one(idx, now);
            }
        }

        let level = &mut self.levels[idx];
        let start = now.max(level.free_at);
        let probe_done = start + level.read_cycles;
        let block_words = level.cache.config().block().words();
        let outcome = level.cache.read(addr, pid);

        // The upstream victim moves into this level's write buffer during
        // the access, one word per cycle; the refill cannot enter the
        // upstream array until the move completes.
        let mut gate = probe_done;
        let mut victim_pending = victim;
        if let Some((vaddr, vwords)) = victim_pending {
            let level = &mut self.levels[idx];
            if !level.wb.is_full() {
                let move_done = start + vwords as u64;
                level.wb.push(WbEntry::block(pid, vaddr, vwords, move_done));
                gate = gate.max(move_done);
                victim_pending = None;
            }
        }

        let data_ready = match outcome {
            // The way-slow-hit and victim-swap penalties are first-level
            // timing knobs; a mid-level array serves these in its ordinary
            // probe time.
            ReadOutcome::Hit | ReadOutcome::SlowHit | ReadOutcome::VictimHit => probe_done,
            ReadOutcome::Miss {
                fill_words,
                victim: level_victim,
            } => {
                let fetch_start = WordAddr::new(addr.value() & !(fill_words as u64 - 1));
                let down_victim =
                    level_victim.map(|ev| (ev.addr.first_word(block_words), ev.words));
                // A mid-level array forwards upstream only once its own
                // block is fully in place.
                self.fill_from(
                    idx + 1,
                    probe_done,
                    pid,
                    fetch_start,
                    fill_words,
                    down_victim,
                )
                .done
            }
        };

        // Rare: the buffer was full during a dirty miss; the victim waits
        // for a forced drain after the data returns.
        if let Some((vaddr, vwords)) = victim_pending {
            let release = self.drain_one(idx, data_ready);
            let move_done = release + vwords as u64;
            self.levels[idx]
                .wb
                .push(WbEntry::block(pid, vaddr, vwords, move_done));
            gate = gate.max(move_done);
        }

        // Transfer the requested words upstream at one word per cycle.
        let ready = data_ready.max(gate);
        let done = ready + words as u64;
        self.levels[idx].free_at = done;
        FillGrant { ready, done }
    }

    /// Routes a downstream word write (write-around or write-through) into
    /// the first mid-level's write buffer or, without one, the memory's.
    #[inline]
    pub(crate) fn write_word_down(&mut self, now: u64, pid: Pid, addr: WordAddr) -> u64 {
        if self.levels.is_empty() {
            return self.mem.write_word(now, pid, addr);
        }
        self.write_word_at(0, now, pid, addr)
    }

    fn write_word_at(&mut self, idx: usize, now: u64, pid: Pid, addr: WordAddr) -> u64 {
        if idx >= self.levels.len() {
            return self.mem.write_word(now, pid, addr);
        }
        self.catch_up_level(idx, now);
        let level = &mut self.levels[idx];
        if level.wb.try_coalesce(pid, addr) {
            return now;
        }
        if level.wb.is_full() {
            let release = self.drain_one(idx, now);
            self.levels[idx].wb.push(WbEntry::word(pid, addr, release));
            return release;
        }
        level.wb.push(WbEntry::word(pid, addr, now));
        now
    }

    /// Routes a whole-block downstream write (a mid-level victim or a
    /// forwarded write-around block) to depth `idx`.
    fn write_block_down(
        &mut self,
        idx: usize,
        now: u64,
        pid: Pid,
        addr: WordAddr,
        words: u32,
    ) -> u64 {
        if idx >= self.levels.len() {
            return self.mem.write_block(now, pid, addr, words);
        }
        self.catch_up_level(idx, now);
        if self.levels[idx].wb.is_full() {
            let release = self.drain_one(idx, now);
            self.levels[idx]
                .wb
                .push(WbEntry::block(pid, addr, words, release));
            return release;
        }
        self.levels[idx]
            .wb
            .push(WbEntry::block(pid, addr, words, now));
        now
    }

    /// Retires writes into `levels[idx]` that would have started while its
    /// port sat idle strictly before `now` (as at the memory level).
    fn catch_up_level(&mut self, idx: usize, now: u64) {
        loop {
            let level = &self.levels[idx];
            let Some(front) = level.wb.front() else {
                return;
            };
            if front.ready_at.max(level.free_at) < now {
                // Backdate to the true launch time (see the memory-level
                // catch-up).
                let ready = front.ready_at;
                self.drain_one(idx, ready);
            } else {
                return;
            }
        }
    }

    /// Pops one write into `levels[idx]` and absorbs it (forwarding
    /// downstream on a miss without allocation). Returns the cycle the
    /// level's port frees up.
    fn drain_one(&mut self, idx: usize, earliest: u64) -> u64 {
        let (entry, start, write_cycles) = {
            let level = &mut self.levels[idx];
            let entry = level.wb.pop_front().expect("drain_one on empty buffer");
            let start = earliest.max(entry.ready_at).max(level.free_at);
            (entry, start, level.write_cycles)
        };
        let addr = WordAddr::new(entry.start);
        let done = match entry.payload {
            WbPayload::Block { words } => {
                let outcome = self.levels[idx].cache.write_range(addr, entry.pid, words);
                self.absorb_outcome(idx, outcome, start, entry.pid, addr, words, write_cycles)
            }
            WbPayload::Words { mask } => {
                // Each buffered word is one write access at this level;
                // they stream through the port back to back.
                let mut t = start;
                for bit in 0..64u32 {
                    if mask & (1u64 << bit) != 0 {
                        let waddr = WordAddr::new(entry.start + bit as u64);
                        let outcome = self.levels[idx].cache.write(waddr, entry.pid);
                        t = self.absorb_outcome(idx, outcome, t, entry.pid, waddr, 1, write_cycles);
                    }
                }
                t
            }
        };
        self.levels[idx].free_at = done;
        done
    }

    /// Applies the timing of one absorbed write outcome at depth `idx`.
    #[allow(clippy::too_many_arguments)]
    fn absorb_outcome(
        &mut self,
        idx: usize,
        outcome: WriteOutcome,
        start: u64,
        pid: Pid,
        addr: WordAddr,
        words: u32,
        write_cycles: u64,
    ) -> u64 {
        match outcome {
            WriteOutcome::Hit { through } | WriteOutcome::VictimHit { through } => {
                if through {
                    self.write_block_down(idx + 1, start, pid, addr, words);
                }
                start + write_cycles
            }
            WriteOutcome::MissNoAllocate => {
                // Write around this level toward the next one down.
                let accepted = self.write_block_down(idx + 1, start, pid, addr, words);
                accepted.max(start + write_cycles)
            }
            WriteOutcome::MissAllocate {
                fill_words,
                victim,
                through,
            } => {
                let block_words = self.levels[idx].cache.config().block().words();
                let fetch_start = WordAddr::new(addr.value() & !(fill_words as u64 - 1));
                let down_victim = victim.map(|ev| (ev.addr.first_word(block_words), ev.words));
                let filled = self
                    .fill_from(idx + 1, start, pid, fetch_start, fill_words, down_victim)
                    .done;
                if through {
                    self.write_block_down(idx + 1, filled, pid, addr, words);
                }
                filled + write_cycles
            }
        }
    }
}
