//! Move-to-front stack with truncated-Pareto distance sampling.
//!
//! The classic LRU-stack-distance model of temporal locality: each reuse
//! targets the item at stack depth `d`, where `d` follows a heavy-tailed
//! distribution, and the touched item moves to the top. A Pareto tail
//! (`P(d) ∝ d^-α`) yields miss-ratio-versus-size curves with the gradual
//! flattening real programs show (paper, Figure 3-1).

use cachetime_testkit::SplitMix64;

/// A move-to-front stack over item ids `0..n`.
#[derive(Debug, Clone)]
pub struct MtfStack {
    /// `items[0]` is the most recently used.
    items: Vec<u32>,
}

impl MtfStack {
    /// Creates a stack over ids `0..n` in arbitrary (identity) initial
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; a locality model needs at least one item.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "MtfStack needs at least one item");
        MtfStack {
            items: (0..n).collect(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always `false`: the stack is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a stack depth from a Pareto(`alpha`) distribution truncated
    /// to the stack size, returns the item at that depth, and moves it to
    /// the front.
    ///
    /// Smaller `alpha` means a heavier tail (less locality); `alpha` well
    /// above 1 concentrates reuse near the top of the stack.
    pub fn sample(&mut self, rng: &mut SplitMix64, alpha: f64) -> u32 {
        let depth = pareto_depth(rng, self.items.len(), alpha);
        let item = self.items.remove(depth);
        self.items.insert(0, item);
        item
    }

    /// Returns the most recently used item without perturbing the stack.
    pub fn front(&self) -> u32 {
        self.items[0]
    }
}

/// Samples a 0-based depth in `[0, n)` with `P(depth = d-1) ∝ d^-alpha`
/// (`d` 1-based), via inverse-CDF of the continuous truncated Pareto.
fn pareto_depth(rng: &mut SplitMix64, n: usize, alpha: f64) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let u = rng.next_f64();
    let x = if (alpha - 1.0).abs() < 1e-9 {
        // alpha == 1: F(x) = ln(x)/ln(n)
        (n as f64).powf(u)
    } else {
        let b = (n as f64).powf(1.0 - alpha);
        (1.0 - u * (1.0 - b)).powf(1.0 / (1.0 - alpha))
    };
    (x.floor() as usize).clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        MtfStack::new(0);
    }

    #[test]
    fn singleton_always_returns_it() {
        let mut s = MtfStack::new(1);
        let mut rng = SplitMix64::from_seed(1);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng, 1.5), 0);
        }
    }

    #[test]
    fn sampled_item_moves_to_front() {
        let mut s = MtfStack::new(100);
        let mut rng = SplitMix64::from_seed(2);
        for _ in 0..50 {
            let item = s.sample(&mut rng, 1.3);
            assert_eq!(s.front(), item);
        }
        assert_eq!(s.len(), 100, "items are conserved");
    }

    #[test]
    fn depths_stay_in_range() {
        let mut rng = SplitMix64::from_seed(3);
        for n in [1usize, 2, 7, 1000] {
            for alpha in [0.8, 1.0, 1.5, 2.5] {
                for _ in 0..200 {
                    let d = pareto_depth(&mut rng, n, alpha);
                    assert!(d < n, "depth {d} out of range for n={n}");
                }
            }
        }
    }

    #[test]
    fn higher_alpha_concentrates_reuse() {
        let mut rng = SplitMix64::from_seed(4);
        let mean = |alpha: f64, rng: &mut SplitMix64| {
            let total: usize = (0..20_000).map(|_| pareto_depth(rng, 10_000, alpha)).sum();
            total as f64 / 20_000.0
        };
        let tight = mean(2.0, &mut rng);
        let loose = mean(1.1, &mut rng);
        assert!(
            tight < loose,
            "alpha=2.0 mean depth {tight} should be below alpha=1.1 mean {loose}"
        );
    }

    #[test]
    fn heavy_tail_reaches_deep_items() {
        let mut rng = SplitMix64::from_seed(5);
        let deep = (0..50_000)
            .filter(|_| pareto_depth(&mut rng, 10_000, 1.2) > 1_000)
            .count();
        assert!(deep > 100, "tail must occasionally reach deep: {deep}");
    }
}
