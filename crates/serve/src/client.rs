//! A tiny blocking HTTP/1.1 client for talking to `ctserve` — used by the
//! bench load generator and the verify smoke test, so neither needs curl
//! or an HTTP crate. Keep-alive: one [`HttpClient`] holds one connection
//! and issues requests serially over it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One keep-alive connection to a `ctserve` instance.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:8080"`).
    ///
    /// # Errors
    ///
    /// Connection failures from the OS.
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous cap so a hung server fails the caller instead of
        // wedging it; simulate on a full-scale trace stays well under.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads one response; returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// I/O failures, or a response the client cannot frame.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: ctserve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// `GET` with an empty body.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((consumed, status, body)) = frame_response(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok((status, body));
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

/// Frames one `Content-Length` response at the front of `buf`; returns
/// `(bytes consumed, status, body)` when complete.
fn frame_response(buf: &[u8]) -> std::io::Result<Option<(usize, u16, String)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| invalid("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad Content-Length"))?;
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .map_err(|_| invalid("non-UTF-8 response body"))?;
    Ok(Some((body_start + content_length, status, body)))
}

fn invalid(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_a_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}tail";
        let (consumed, status, body) = frame_response(raw).unwrap().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert_eq!(&raw[consumed..], b"tail");
    }

    #[test]
    fn waits_for_the_full_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab";
        assert!(frame_response(raw).unwrap().is_none());
    }

    #[test]
    fn error_statuses_come_through() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let (_, status, body) = frame_response(raw).unwrap().unwrap();
        assert_eq!(status, 404);
        assert!(body.is_empty());
    }
}
