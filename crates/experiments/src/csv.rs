//! CSV export of experiment data, for plotting outside the terminal.
//!
//! Each exporter takes the experiment's *typed* results (not the rendered
//! text) and produces one CSV per logical table. The `repro` binary wires
//! these to `--csv DIR`.

use crate::runner::SpeedSizeGrid;
use crate::{fig3_1, fig4_1, fig4_345, fig5_1, fig5_3, fig5_4, sec6, table2};
use cachetime_analysis::table::Table;

/// Figure 3-1's series.
pub fn fig3_1(points: &[fig3_1::Point]) -> String {
    let mut t = Table::new([
        "total_kb",
        "read_miss_ratio",
        "ifetch_miss_ratio",
        "load_miss_ratio",
        "read_traffic",
        "write_traffic_block",
        "write_traffic_dirty",
    ]);
    for p in points {
        t.row([
            p.total_kb.to_string(),
            p.read_miss_ratio.to_string(),
            p.ifetch_miss_ratio.to_string(),
            p.load_miss_ratio.to_string(),
            p.read_traffic.to_string(),
            p.write_traffic_block.to_string(),
            p.write_traffic_dirty.to_string(),
        ]);
    }
    t.to_csv()
}

/// Any speed–size grid (Figures 3-2/3-3/4-2) in long form.
pub fn grid(grid: &SpeedSizeGrid) -> String {
    let mut t = Table::new([
        "assoc",
        "total_kb",
        "ct_ns",
        "cycles_per_ref",
        "time_per_ref_ns",
        "read_miss_ratio",
    ]);
    for (i, &kb) in grid.sizes_total_kb.iter().enumerate() {
        for (j, &ct) in grid.cts_ns.iter().enumerate() {
            t.row([
                grid.assoc.to_string(),
                kb.to_string(),
                ct.to_string(),
                grid.cycles_per_ref[i][j].to_string(),
                grid.time_per_ref[i][j].to_string(),
                grid.read_miss_ratio[i][j].to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// Table 2's rows.
pub fn table2(rows: &[table2::Row]) -> String {
    let mut t = Table::new(["ct_ns", "read_cycles", "write_cycles", "recovery_cycles"]);
    for r in rows {
        t.row([
            r.ct_ns.to_string(),
            r.read_cycles.to_string(),
            r.write_cycles.to_string(),
            r.recovery_cycles.to_string(),
        ]);
    }
    t.to_csv()
}

/// Figure 4-1's miss-ratio curves in long form.
pub fn fig4_1(m: &fig4_1::MissRatios) -> String {
    let mut t = Table::new(["assoc", "total_kb", "read_miss_ratio"]);
    for (ai, &ways) in m.assocs.iter().enumerate() {
        for (si, &kb) in m.sizes_total_kb.iter().enumerate() {
            t.row([
                ways.to_string(),
                kb.to_string(),
                m.miss_ratio[ai][si].to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// A break-even map (Figures 4-3/4/5) in long form.
pub fn break_even(m: &fig4_345::BreakEvenMap) -> String {
    let mut t = Table::new(["assoc", "total_kb", "ct_ns", "break_even_ns"]);
    for (si, &kb) in m.sizes_total_kb.iter().enumerate() {
        for (ci, &ct) in m.cts_ns.iter().enumerate() {
            t.row([
                m.assoc.to_string(),
                kb.to_string(),
                ct.to_string(),
                m.break_even[si][ci].map_or(String::new(), |v| v.to_string()),
            ]);
        }
    }
    t.to_csv()
}

/// Figure 5-1's series.
pub fn fig5_1(points: &[fig5_1::Point]) -> String {
    let mut t = Table::new([
        "block_words",
        "ifetch_miss_ratio",
        "load_miss_ratio",
        "time_per_ref_ns",
    ]);
    for p in points {
        t.row([
            p.block_words.to_string(),
            p.ifetch_miss_ratio.to_string(),
            p.load_miss_ratio.to_string(),
            p.time_per_ref_ns.to_string(),
        ]);
    }
    t.to_csv()
}

/// Figures 5-2/5-3's minima.
pub fn fig5_3(minima: &[fig5_3::Minimum]) -> String {
    let mut t = Table::new([
        "latency_ns",
        "transfer_wpc",
        "best_time_ns",
        "optimal_block_words",
    ]);
    for m in minima {
        t.row([
            m.latency_ns.to_string(),
            m.transfer.words_per_cycle().to_string(),
            m.best_time_ns.to_string(),
            m.optimal_block_words.to_string(),
        ]);
    }
    t.to_csv()
}

/// Figure 5-4's scatter.
pub fn fig5_4(points: &[fig5_4::Point]) -> String {
    let mut t = Table::new([
        "memory_speed_product",
        "optimal_block_words",
        "balanced_block_words",
        "latency_ns",
        "transfer_wpc",
    ]);
    for p in points {
        t.row([
            p.memory_speed_product.to_string(),
            p.optimal_block_words.to_string(),
            p.balanced_block_words.to_string(),
            p.latency_ns.to_string(),
            p.transfer_wpc.to_string(),
        ]);
    }
    t.to_csv()
}

/// The section-6 sweeps.
pub fn sec6(without: &sec6::Sweep, with: &sec6::Sweep) -> String {
    let mut t = Table::new(["l1_per_cache_kb", "no_l2_ns_per_ref", "with_l2_ns_per_ref"]);
    for (i, &kb) in without.sizes_per_cache_kb.iter().enumerate() {
        t.row([
            kb.to_string(),
            without.time_per_ref_ns[i].to_string(),
            with.time_per_ref_ns[i].to_string(),
        ]);
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TraceSet;

    #[test]
    fn exporters_produce_headers_and_rows() {
        let traces = TraceSet::quick();
        let pts = crate::fig3_1::run(&traces);
        let csv = fig3_1(&pts);
        assert!(csv.starts_with("total_kb,"));
        assert_eq!(csv.lines().count(), pts.len() + 1);

        let rows = crate::table2::run();
        let csv = table2(&rows);
        assert!(csv.contains("40,10,8,3"));

        let g = SpeedSizeGrid::compute_over(&traces, 1, &[2, 32], &[20, 60]);
        let csv = grid(&g);
        assert_eq!(csv.lines().count(), 1 + 2 * 2);
        assert!(csv.starts_with("assoc,total_kb,ct_ns"));
    }

    #[test]
    fn break_even_handles_missing_cells() {
        let traces = TraceSet::quick();
        let grids = crate::fig4_2::run_over(&traces, &[1, 2], &[2], &[20, 50, 80]);
        let m = crate::fig4_345::run(&grids, 2);
        let csv = break_even(&m);
        assert!(csv.starts_with("assoc,total_kb,ct_ns,break_even_ns"));
        assert_eq!(csv.lines().count(), 1 + 3);
    }
}
