//! Property-based tests for the synthetic trace substrate, on the
//! hermetic testkit runner.

use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, SplitMix64};
use cachetime_trace::{MtfStack, ProcessParams, SyntheticProcess, Trace, WorkloadSpec};
use cachetime_types::{AccessKind, Pid};
use std::collections::HashSet;

fn gen_params(rng: &mut SplitMix64) -> ProcessParams {
    let c = rng.gen_range(8u64..64); // code kwords /8
    let d = rng.gen_range(8u64..128); // data kwords /8
    let params = if rng.gen_bool(0.5) {
        ProcessParams::vax_like(c * 64, d * 64)
    } else {
        ProcessParams::risc_like(c * 64, d * 64)
    };
    params.with_startup_zero(rng.gen_range(0u64..2_000))
}

/// The MTF stack conserves its items and always returns valid ids.
#[test]
fn mtf_conserves_items() {
    check(
        "mtf_conserves_items",
        |rng| {
            (
                rng.gen_range(1u32..2000),
                rng.gen_range(0.9f64..2.5),
                rng.gen_range(0u64..1000),
            )
        },
        shrink::none,
        |&(n, alpha, seed)| {
            let mut stack = MtfStack::new(n);
            let mut rng = SplitMix64::from_seed(seed);
            let mut seen = HashSet::new();
            for _ in 0..200 {
                let item = stack.sample(&mut rng, alpha);
                prop_assert!(item < n);
                seen.insert(item);
            }
            prop_assert_eq!(stack.len(), n as usize);
            prop_assert!(seen.len() <= n as usize);
            Ok(())
        },
    );
}

/// Process streams are deterministic in the seed, bounded in footprint,
/// and type-consistent.
#[test]
fn process_stream_properties() {
    check(
        "process_stream_properties",
        |rng| (gen_params(rng), rng.gen_range(0u64..1000)),
        shrink::none,
        |(params, seed)| {
            let mut a = SyntheticProcess::new(Pid(3), params.clone(), *seed);
            let mut b = SyntheticProcess::new(Pid(3), params.clone(), *seed);
            let mut code_words = HashSet::new();
            let mut data_words = HashSet::new();
            for _ in 0..5_000 {
                let ra = a.next_ref();
                let rb = b.next_ref();
                prop_assert_eq!(ra, rb, "same seed, same stream");
                prop_assert_eq!(ra.pid, Pid(3));
                match ra.kind {
                    AccessKind::IFetch => {
                        code_words.insert(ra.addr.value());
                    }
                    _ => {
                        data_words.insert(ra.addr.value());
                    }
                }
            }
            // Footprints bounded: touched words cannot exceed the
            // configured regions (scattered spans hold the same number of
            // live words).
            prop_assert!(code_words.len() as u64 <= params.code_words);
            prop_assert!(
                data_words.len() as u64
                    <= params.data_words + params.stack_words + params.startup_zero_words
            );
            Ok(())
        },
    );
}

/// Workload generation respects length/warm-start accounting and only
/// emits configured pids.
#[test]
fn workload_accounting() {
    check(
        "workload_accounting",
        |rng| {
            (
                rng.gen_range(1usize..5),
                rng.gen_range(1_000usize..20_000),
                rng.gen_range(0usize..5_000),
                rng.gen_bool(0.5),
                rng.gen_range(0u64..500),
            )
        },
        shrink::none,
        |&(n_procs, length, warm, prefix, seed)| {
            let spec = WorkloadSpec {
                name: "prop".into(),
                processes: (0..n_procs)
                    .map(|i| ProcessParams::vax_like(1024 + 256 * i as u64, 2048))
                    .collect(),
                length,
                warm_up: warm,
                mean_switch: 300.0,
                os_process: n_procs > 1,
                init_prefix: prefix,
                seed,
            };
            let t: Trace = spec.generate();
            prop_assert_eq!(t.warm_refs().len(), length);
            if !prefix {
                prop_assert_eq!(t.warm_start(), warm);
            }
            let pids: HashSet<u16> = t.refs().iter().map(|r| r.pid.0).collect();
            prop_assert!(pids.iter().all(|&p| p >= 1 && p as usize <= n_procs));
            // Trace stats agree with a direct scan.
            let stats = t.stats();
            prop_assert_eq!(stats.refs as usize, t.len());
            prop_assert_eq!(stats.reads() + stats.stores, stats.refs);
            Ok(())
        },
    );
}

/// The initialization prefix never contains duplicates or stores, and
/// its addresses all reappear... (not necessarily: the body may move
/// on) — but every prefix address was genuinely touched by the
/// process's own address space.
#[test]
fn prefix_is_unique_reads() {
    check(
        "prefix_is_unique_reads",
        |rng| rng.gen_range(0u64..200),
        shrink::halves,
        |&seed| {
            let spec = WorkloadSpec {
                name: "prefix".into(),
                processes: vec![ProcessParams::risc_like(2048, 8192)],
                length: 5_000,
                warm_up: 0,
                mean_switch: 500.0,
                os_process: false,
                init_prefix: true,
                seed,
            };
            let t = spec.generate();
            let prefix = &t.refs()[..t.warm_start()];
            prop_assert!(!prefix.is_empty());
            let mut seen = HashSet::new();
            for r in prefix {
                prop_assert!(r.kind != AccessKind::Store);
                prop_assert!(seen.insert(r.addr), "duplicate {r}");
            }
            Ok(())
        },
    );
}
