//! `cachetime-serve` — a long-running simulation server with a
//! content-addressed [`EventTrace`](cachetime::EventTrace) store.
//!
//! The two-phase engine (see `cachetime::replay`) split every simulation
//! into an expensive, timing-free *recording* and a cheap *replay*. This
//! crate turns that split into a service: clients name an
//! `(organization, workload)` pairing, the server records its event trace
//! **once** — concurrent identical requests coalesce onto the same
//! recording — and every later question about that pairing (any cycle
//! time, any memory, any L2) is answered by replay at a small fraction of
//! the cost. Recorded traces live in an LRU store under a byte budget and
//! are addressed by the stable 64-bit keys of `cachetime::keyed`, so a
//! client can hold a key and replay against it for as long as the entry
//! stays resident.
//!
//! Everything is hand-rolled on `std::net` HTTP/1.1 — the workspace's
//! zero-dependency invariant extends to the server, down to the raw
//! `epoll` syscalls in [`poll`]. The transport is a readiness-driven
//! event loop (one thread owns every socket; see [`http`] and DESIGN.md
//! §9): warm replays and everything else non-blocking are answered inline
//! by [`App::try_handle`], and only work that may block on the store —
//! cold recordings and joins of in-flight ones — is handed to a small
//! handler pool via [`App::handle_blocking`].
//!
//! # Endpoints
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /v1/traces` | raw trace text (din/ChampSim/lackey; chunked upload supported) | content digest + representative-interval selection |
//! | `POST /v1/simulate` | `{"config": {...}, "trace": {"name": "mu3"}}` — or `{"trace": {"upload": "<digest>"}}` | full `SimResult` + the pairing's key |
//! | `POST /v1/replay` | `{"key": "<hex>", "cycle_times_ns": [20, ...]}` | one `SimResult` per timing point |
//! | `GET /v1/stats` | — | store hits/misses/evictions, in-flight, per-endpoint latency |
//! | `GET /v1/metrics` | — | the same counters as Prometheus text exposition |
//! | `GET /healthz` | — | `{"status": "ok"}` |
//! | `POST /v1/shutdown` | — | acknowledges, then stops the server |
//!
//! ```no_run
//! let handle = cachetime_serve::serve(cachetime_serve::ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..Default::default()
//! })?;
//! println!("listening on {}", handle.local_addr());
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```

// `deny` rather than `forbid`: the epoll shim in `poll` is the one module
// allowed to opt back in, with per-block SAFETY comments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod conn;
pub mod fault;
pub mod http;
pub mod poll;
pub mod stats;
pub mod store;
pub mod upload;

pub use http::{serve, serve_with_app, Request, ServerConfig, ServerHandle};

use cachetime::keyed;
use cachetime_disk::{AdoptOutcome, DiskFault, DiskOp, ScanReport, SegmentStore};
use cachetime_obs::Registry;
use cachetime_types::{json_object, Json};
use client::{ClientConfig, HttpClient, ShardRing};
use fault::{DiskFaultAction, FaultPlan};
use cachetime_trace::import::TraceFormat;
use stats::{FleetMetrics, IngestMetrics, ServerStats};
use store::{Fetch, StoreMetrics, TraceStore, TryGet};
use upload::UploadStore;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a `503 Retry-After` tells shed clients to wait, in seconds.
/// Recordings are sub-second at interactive scales, so one second is a
/// full drain on the happy path (the client jitters around it anyway).
pub const RETRY_AFTER_SECS: u32 = 1;

/// The `Content-Type` of every JSON response.
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// The `Content-Type` of the Prometheus text exposition.
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";
/// The `Content-Type` of a raw segment transfer (`GET /v1/segments/<key>`).
pub const CONTENT_TYPE_OCTET: &str = "application/octet-stream";

/// One response from the application layer, transport-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON everywhere except `/v1/metrics`). Empty when
    /// [`chunks`](Self::chunks) carries the body instead.
    pub body: String,
    /// A pre-split body for `Transfer-Encoding: chunked` transport: each
    /// element becomes one HTTP chunk. `Some` only on `/v1/replay`, whose
    /// per-point results can be framed as they come instead of first
    /// concatenating one monolithic JSON string. Concatenated, the chunks
    /// are exactly the JSON that `body` would have held.
    pub chunks: Option<Vec<String>>,
    /// A raw binary body (`Some` only on `GET /v1/segments/<key>`, whose
    /// sealed segment container is not UTF-8). Takes precedence over
    /// `body`/`chunks` at the transport.
    pub raw: Option<Vec<u8>>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Whether the server should stop after sending this response.
    pub shutdown: bool,
    /// `Retry-After` header value in seconds, for `503`s.
    pub retry_after: Option<u32>,
}

impl Response {
    fn ok(v: Json) -> Self {
        Response {
            status: 200,
            body: v.to_string(),
            chunks: None,
            raw: None,
            content_type: CONTENT_TYPE_JSON,
            shutdown: false,
            retry_after: None,
        }
    }

    /// A `200` with a raw binary body (a sealed segment container).
    fn ok_bytes(bytes: Vec<u8>) -> Self {
        Response {
            status: 200,
            body: String::new(),
            chunks: None,
            raw: Some(bytes),
            content_type: CONTENT_TYPE_OCTET,
            shutdown: false,
            retry_after: None,
        }
    }

    /// A `200` whose body ships as `Transfer-Encoding: chunked`, one HTTP
    /// chunk per element. Empty elements are dropped (an empty chunk would
    /// terminate the chunked stream early).
    fn ok_chunked(chunks: Vec<String>) -> Self {
        Response {
            status: 200,
            body: String::new(),
            chunks: Some(chunks.into_iter().filter(|c| !c.is_empty()).collect()),
            raw: None,
            content_type: CONTENT_TYPE_JSON,
            shutdown: false,
            retry_after: None,
        }
    }

    /// A `200` with a plain-text body (the metrics exposition).
    fn ok_text(body: String) -> Self {
        Response {
            status: 200,
            body,
            chunks: None,
            raw: None,
            content_type: CONTENT_TYPE_PROMETHEUS,
            shutdown: false,
            retry_after: None,
        }
    }

    /// An error response with a JSON `{"error": msg}` body.
    pub fn error(status: u16, msg: &str) -> Self {
        Response {
            status,
            body: json_object([("error", Json::Str(msg.into()))]).to_string(),
            chunks: None,
            raw: None,
            content_type: CONTENT_TYPE_JSON,
            shutdown: false,
            retry_after: None,
        }
    }

    /// The complete body, whichever representation holds it: `body`
    /// itself, or the chunk sequence concatenated. In-process callers
    /// (tests, the bench harness) use this; the HTTP layer writes the
    /// chunked framing without ever building this string.
    pub fn body_text(&self) -> String {
        match &self.chunks {
            Some(chunks) => chunks.concat(),
            None => self.body.clone(),
        }
    }

    /// The complete body as bytes, whichever representation holds it —
    /// the raw binary payload when present, the text body otherwise.
    pub fn body_bytes(&self) -> Vec<u8> {
        match &self.raw {
            Some(bytes) => bytes.clone(),
            None => self.body_text().into_bytes(),
        }
    }

    /// A `503` carrying `Retry-After` — the load-shedding answer.
    pub fn unavailable(msg: &str) -> Self {
        Response {
            retry_after: Some(RETRY_AFTER_SECS),
            ..Response::error(503, msg)
        }
    }
}

/// Robustness knobs enforced by [`App`] and the HTTP transport.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Per-request wall-clock budget, covering the head/body read, the
    /// handler (recording included), and the response write. Clients may
    /// lower (never raise) it per request via `X-Deadline-Ms`.
    pub request_deadline: Duration,
    /// Recordings allowed in flight at once; cold requests past the limit
    /// are shed with `503 + Retry-After` while warm traffic keeps flowing.
    pub max_inflight_recordings: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            request_deadline: Duration::from_secs(10),
            max_inflight_recordings: 4,
        }
    }
}

/// Lock domains in the server's trace store: warm replays of different
/// keys proceed in parallel instead of serializing on one store mutex.
/// Eight shards is plenty for the handler pool sizes `ctserve` runs.
const STORE_SHARDS: usize = 8;

/// Fleet membership for a server that participates in peer segment
/// handoff: the full ring of endpoints (self included), which of them is
/// this server, and how widely clients replicate.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Every endpoint of the ring, this server's included. Order does not
    /// matter (rendezvous hashing scores each endpoint independently).
    pub peers: Vec<String>,
    /// This server's own endpoint string; must appear in `peers` exactly
    /// as written there (the ring identifies members by string).
    pub self_addr: String,
    /// How many endpoints of a key's preference order hold its segment —
    /// the fleet-wide replication factor rebalancing preserves.
    pub replication: usize,
    /// Tuning for the peer-fetch HTTP client.
    pub client: ClientConfig,
}

/// Resolved fleet membership held by a running [`App`].
struct FleetState {
    ring: ShardRing,
    self_ix: usize,
    replication: usize,
    client: ClientConfig,
}

/// What one rebalance pass did (`POST /v1/rebalance` answers this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Segments pulled from peers and adopted.
    pub pulled: u64,
    /// Local segments dropped because the ring moved them elsewhere.
    pub dropped: u64,
    /// Transfers rejected by the segment checksum (quarantined).
    pub rejected: u64,
    /// Transport-level fetch failures (peer down, torn read, non-200).
    pub fetch_failures: u64,
}

/// The application state: the trace store plus observability counters.
/// Shared by every worker; all methods are `&self` and thread-safe.
pub struct App {
    /// The content-addressed EventTrace store.
    pub store: TraceStore,
    /// The content-addressed uploaded-trace store (`POST /v1/traces`).
    pub uploads: UploadStore,
    /// Request counters and latency histograms.
    pub stats: ServerStats,
    /// Peer-handoff counters (zero unless the server is in a fleet).
    pub fleet_stats: FleetMetrics,
    /// Trace-ingestion counters (zero until an upload arrives).
    pub ingest_stats: IngestMetrics,
    registry: Arc<Registry>,
    limits: Limits,
    faults: Arc<FaultPlan>,
    /// The durable segment store, when the server runs with `--data-dir`:
    /// fresh recordings spill here (write-behind, on the handler pool) and
    /// memory misses read through before re-recording.
    disk: Option<Arc<SegmentStore>>,
    /// Fleet membership, when the server runs with `--peers`.
    fleet: Option<FleetState>,
}

impl App {
    /// Fresh state with the given store budget and default [`Limits`].
    ///
    /// Each `App` gets its *own* metric registry so servers sharing a
    /// process (tests, mostly) never share counters. A binary that wants
    /// one process-wide scrape passes [`cachetime_obs::global`] to
    /// [`with_registry`](Self::with_registry) instead.
    pub fn new(store_budget_bytes: usize) -> Self {
        Self::with_registry(store_budget_bytes, Arc::new(Registry::new()))
    }

    /// [`new`](Self::new), but registering every store and server metric
    /// in `registry` — which is also what `GET /v1/metrics` renders, so
    /// handing in a shared registry widens the scrape to everything else
    /// recorded there (core phase spans, sweep timings, ...).
    pub fn with_registry(store_budget_bytes: usize, registry: Arc<Registry>) -> Self {
        App {
            store: TraceStore::sharded_with_metrics(
                store_budget_bytes,
                STORE_SHARDS,
                StoreMetrics::in_registry(&registry),
            ),
            uploads: UploadStore::new(upload::DEFAULT_UPLOAD_BUDGET_BYTES),
            stats: ServerStats::in_registry(&registry),
            fleet_stats: FleetMetrics::in_registry(&registry),
            ingest_stats: IngestMetrics::in_registry(&registry),
            registry,
            limits: Limits::default(),
            faults: Arc::new(FaultPlan::inert()),
            disk: None,
            fleet: None,
        }
    }

    /// The registry backing this app's metrics (rendered by
    /// `GET /v1/metrics`).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Replaces the robustness limits (builder-style).
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Installs a fault-injection plan (builder-style; tests only — the
    /// default plan is inert). Call before [`with_disk`](Self::with_disk):
    /// the disk fault hook captures the plan installed at attach time.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Arc::new(faults);
        self
    }

    /// Attaches a durable segment store (builder-style), wiring the app's
    /// fault plan into the store's `disk.write`/`disk.read` points. Call
    /// [`recover_from_disk`](Self::recover_from_disk) afterwards to warm
    /// the in-memory store, before serving traffic.
    #[must_use]
    pub fn with_disk(mut self, disk: SegmentStore) -> Self {
        let plan = Arc::clone(&self.faults);
        let disk = disk.with_fault_hook(Arc::new(move |op, _key, len| {
            let point = match op {
                DiskOp::Write => "disk.write",
                DiskOp::Read => "disk.read",
            };
            match plan.decide_disk(point) {
                DiskFaultAction::Proceed => DiskFault::None,
                DiskFaultAction::Torn { frac } => DiskFault::Torn {
                    keep: (frac * len as f64) as usize,
                },
                DiskFaultAction::BitFlip { offset } => DiskFault::BitFlip {
                    offset: offset as usize,
                },
                DiskFaultAction::Error => DiskFault::Error,
            }
        }));
        self.disk = Some(Arc::new(disk));
        self
    }

    /// The attached durable store, if any.
    pub fn disk(&self) -> Option<&Arc<SegmentStore>> {
        self.disk.as_ref()
    }

    /// Joins a fleet (builder-style): the server becomes one member of a
    /// rendezvous ring and will serve/pull/drop segments along it. Call
    /// after [`with_disk`](Self::with_disk) — handoff is meaningless
    /// without a durable store to move segments in and out of.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the peer list is empty, `self_addr` is not one
    /// of the peers, or no durable store is attached.
    pub fn with_fleet(mut self, config: FleetConfig) -> std::io::Result<Self> {
        if self.disk.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a fleet member needs a durable store (--data-dir)",
            ));
        }
        let ring = ShardRing::new(config.peers)?;
        let Some(self_ix) = ring.endpoints().iter().position(|e| *e == config.self_addr) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("self address {:?} is not one of the peers", config.self_addr),
            ));
        };
        let replication = config.replication.clamp(1, ring.endpoints().len());
        self.fleet = Some(FleetState {
            ring,
            self_ix,
            replication,
            client: config.client,
        });
        Ok(self)
    }

    /// Runs the durable store's startup scan, streaming every intact
    /// segment into the in-memory store (without disturbing its hit/miss
    /// accounting) and quarantining the rest. A no-op without a disk.
    ///
    /// # Errors
    ///
    /// Only directory-level I/O errors; per-segment corruption is
    /// absorbed (quarantined and counted), never fatal.
    pub fn recover_from_disk(&self) -> std::io::Result<ScanReport> {
        let Some(disk) = &self.disk else {
            return Ok(ScanReport::default());
        };
        let store = &self.store;
        disk.scan(|key, trace| {
            store.seed(key, Arc::new(trace));
        })
    }

    /// The active robustness limits.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// The fault plan (inert unless a test armed one).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether the server is currently shedding cold load: the recording
    /// admission limit is saturated. Warm replays still serve; `/healthz`
    /// reports `"degraded"` until the gauge drops.
    pub fn is_degraded(&self) -> bool {
        self.store.stats().in_flight >= self.limits.max_inflight_recordings
    }

    /// The wall-clock deadline for a request arriving now: the server cap,
    /// lowered (never raised) by the request's `X-Deadline-Ms`.
    pub fn deadline_for(&self, req: &Request) -> Instant {
        let budget = match req.deadline_ms {
            Some(ms) => Duration::from_millis(ms).min(self.limits.request_deadline),
            None => self.limits.request_deadline,
        };
        Instant::now() + budget
    }

    /// Routes one request. Infallible: every failure becomes a JSON error
    /// response with the appropriate status.
    ///
    /// Equivalent to [`try_handle`](Self::try_handle) followed by
    /// [`handle_blocking`](Self::handle_blocking) on `None` — which is
    /// exactly how the event loop splits it across threads; in-process
    /// callers (tests, the bench harness) just call this.
    ///
    /// # Panics
    ///
    /// Only via an armed fault plan (the transport's `catch_unwind` turns
    /// that into a `500`); production plans are inert.
    pub fn handle(&self, req: &Request) -> Response {
        let deadline = self.deadline_for(req);
        match self.try_handle(req, deadline) {
            Some(resp) => resp,
            None => self.handle_blocking(req, deadline),
        }
    }

    /// The non-blocking half of [`handle`](Self::handle): answers
    /// everything that cannot block on the store — health, stats, metrics,
    /// shutdown, routing and parse errors, *warm* simulates and replays —
    /// and returns `None` for work that might (a cold recording, or a join
    /// of one already in flight). The event loop runs this inline on the
    /// loop thread; `None` means "hand the request to the pool".
    ///
    /// Counting discipline: the store's `try_get` counts a lookup only on
    /// a hit, so a request that falls through to
    /// [`handle_blocking`](Self::handle_blocking) is counted exactly once
    /// there (miss/coalesced/shed/absent), never double.
    ///
    /// # Panics
    ///
    /// Only via an armed fault plan — `serve.handle` fires here (once per
    /// request; the blocking half never re-injects it).
    pub fn try_handle(&self, req: &Request, _deadline: Instant) -> Option<Response> {
        // The deadline rides along for signature parity with
        // `handle_blocking`; nothing inline waits, so nothing checks it.
        self.faults.inject("serve.handle");
        Some(match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::ok(json_object([(
                "status",
                if self.is_degraded() { "degraded" } else { "ok" },
            )])),
            ("GET", "/v1/stats") => {
                let degraded = self.is_degraded();
                self.stats.degraded.set(degraded as i64);
                let disk = self.disk.as_ref().map(|d| d.metrics());
                let ingest = self.ingest_stats.to_json(self.uploads.stats());
                Response::ok(self.stats.to_json(&self.store, disk, &self.fleet_stats, ingest, degraded))
            }
            ("GET", "/v1/metrics") => {
                self.stats.degraded.set(self.is_degraded() as i64);
                match metrics_family_filter(req.query.as_deref()) {
                    Ok(prefix) => {
                        Response::ok_text(self.registry.render_prometheus_filtered(prefix))
                    }
                    Err(msg) => Response::error(400, msg),
                }
            }
            ("POST", "/v1/simulate") => return self.try_simulate(&req.body),
            ("POST", "/v1/replay") => return self.try_replay(&req.body),
            // Parsing and profiling a multi-megabyte upload is CPU-bound:
            // handler-pool work, never the loop thread's.
            ("POST", "/v1/traces") => return None,
            // The segment key list is an index read — no disk I/O.
            ("GET", "/v1/segments") => self.segment_keys(),
            // A segment body read and a rebalance pass both touch the
            // disk (the latter the network too): handler-pool work.
            ("GET", p) if p.starts_with("/v1/segments/") => return None,
            ("POST", "/v1/rebalance") => return None,
            ("POST", "/v1/shutdown") => Response {
                shutdown: true,
                ..Response::ok(json_object([("status", "shutting down")]))
            },
            ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
            _ => Response::error(405, "method not allowed"),
        })
    }

    /// The blocking half of [`handle`](Self::handle): runs the request to
    /// completion, waiting on or performing recordings as needed. Only
    /// ever called after [`try_handle`](Self::try_handle) returned `None`,
    /// so only simulate/replay can land here; it does not re-inject
    /// `serve.handle`.
    pub fn handle_blocking(&self, req: &Request, deadline: Instant) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/simulate") => self.simulate(&req.body, deadline),
            ("POST", "/v1/replay") => self.replay(&req.body, deadline),
            ("POST", "/v1/traces") => self.ingest(req),
            ("GET", p) if p.starts_with("/v1/segments/") => {
                self.segment(&p["/v1/segments/".len()..])
            }
            ("POST", "/v1/rebalance") => match self.rebalance() {
                Ok(report) => Response::ok(json_object([
                    ("pulled", Json::UInt(report.pulled)),
                    ("dropped", Json::UInt(report.dropped)),
                    ("rejected", Json::UInt(report.rejected)),
                    ("fetch_failures", Json::UInt(report.fetch_failures)),
                ])),
                Err(e) => Response::error(400, &e.to_string()),
            },
            // try_handle answers every other route inline.
            _ => Response::error(404, "no such endpoint"),
        }
    }

    /// `GET /v1/segments`: the durable store's key index as hex strings.
    /// An empty list for a memory-only server — peers treat it as
    /// "nothing to hand off", not an error.
    fn segment_keys(&self) -> Response {
        let keys = match &self.disk {
            Some(disk) => {
                let mut keys = disk.keys();
                keys.sort_unstable();
                keys.iter().map(|&k| Json::Str(api::key_hex(k))).collect()
            }
            None => Vec::new(),
        };
        Response::ok(json_object([("keys", Json::Array(keys))]))
    }

    /// `GET /v1/segments/<key>`: the raw sealed segment container,
    /// checksum-verified before it leaves this server (a locally corrupt
    /// segment 404s and is quarantined, never shipped).
    fn segment(&self, key_hex: &str) -> Response {
        let key = match api::parse_key_hex(key_hex) {
            Ok(k) => k,
            Err(msg) => return Response::error(400, &msg),
        };
        let Some(disk) = &self.disk else {
            return Response::error(404, "this server has no durable store");
        };
        match disk.read_sealed(key) {
            Some(bytes) => Response::ok_bytes(bytes),
            None => Response::error(404, "no such segment"),
        }
    }

    /// One rebalance pass along the current ring: pull every segment the
    /// ring places on this server (within the replication factor) that is
    /// missing locally, and drop every local segment the ring has moved
    /// elsewhere — but only after a current owner confirmed holding it, so
    /// a partitioned or misconfigured peer list can never orphan a key's
    /// last copy.
    ///
    /// Runs at boot (`ctserve --peers`) and on `POST /v1/rebalance`.
    /// Unreachable peers are counted as fetch failures and skipped, never
    /// fatal: a pass against a half-up fleet does what it can.
    ///
    /// Every adopted transfer is checksum- and decode-verified
    /// ([`SegmentStore::adopt`]); a corrupt transfer is quarantined and
    /// counted, and the next holder in the key's preference order is
    /// tried.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the server is not in a fleet. Per-peer and
    /// per-segment failures are absorbed into the report.
    pub fn rebalance(&self) -> std::io::Result<RebalanceReport> {
        let Some(fleet) = &self.fleet else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "this server is not part of a fleet (start with --peers)",
            ));
        };
        let disk = self.disk.as_ref().expect("with_fleet requires a durable store");
        let r = fleet.replication;
        let mut report = RebalanceReport::default();
        let mut conns: HashMap<usize, HttpClient> = HashMap::new();

        // Phase 1: every reachable peer's key index.
        let mut peer_keys: HashMap<usize, HashSet<u64>> = HashMap::new();
        for (ix, endpoint) in fleet.ring.endpoints().iter().enumerate() {
            if ix == fleet.self_ix {
                continue;
            }
            match fetch_peer_keys(&mut conns, ix, endpoint, &fleet.client) {
                Ok(keys) => {
                    peer_keys.insert(ix, keys);
                }
                Err(_) => {
                    report.fetch_failures += 1;
                    self.fleet_stats.fetch_failures.inc();
                }
            }
        }

        // Phase 2: pull what the ring places here. Keys are visited in
        // sorted order so two rebalances of the same fleet state transfer
        // in the same order (determinism the chaos tests lean on).
        let mut wanted: Vec<u64> = peer_keys
            .values()
            .flatten()
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        wanted.sort_unstable();
        for key in wanted {
            let pref = fleet.ring.preference(key);
            if !pref[..r].contains(&fleet.self_ix) || disk.contains(key) {
                continue;
            }
            // Holders in the key's preference order: the most preferred
            // copy is the one every other client reads, so it is the one
            // to clone.
            for &ix in &pref {
                if ix == fleet.self_ix
                    || !peer_keys.get(&ix).is_some_and(|ks| ks.contains(&key))
                {
                    continue;
                }
                let endpoint = &fleet.ring.endpoints()[ix];
                let started = Instant::now();
                let sealed = match fetch_segment(&mut conns, ix, endpoint, &fleet.client, key) {
                    Ok(bytes) => bytes,
                    Err(_) => {
                        report.fetch_failures += 1;
                        self.fleet_stats.fetch_failures.inc();
                        continue;
                    }
                };
                // The peer.fetch fault point: chaos tests tear, bit-flip,
                // or fail the transfer between the wire and adoption.
                let sealed = match self.mangle_transfer(&sealed) {
                    Some(bytes) => bytes,
                    None => {
                        report.fetch_failures += 1;
                        self.fleet_stats.fetch_failures.inc();
                        continue;
                    }
                };
                match disk.adopt(key, &sealed) {
                    Ok(AdoptOutcome::Installed(trace)) => {
                        self.store.seed(key, Arc::new(trace));
                        report.pulled += 1;
                        self.fleet_stats.pulled.inc();
                        self.fleet_stats.fetch_us.record_with_exemplar(
                            started.elapsed().as_micros() as u64,
                            "key",
                            api::key_hex(key),
                        );
                        break;
                    }
                    Ok(AdoptOutcome::AlreadyPresent) => break,
                    Ok(AdoptOutcome::Rejected) => {
                        // Quarantined by the store; try the next holder.
                        report.rejected += 1;
                        self.fleet_stats.rejected.inc();
                    }
                    Err(_) => {
                        report.fetch_failures += 1;
                        self.fleet_stats.fetch_failures.inc();
                    }
                }
            }
        }

        // Phase 3: drop what the ring moved elsewhere — only keys a
        // current in-preference owner is confirmed (this pass) to hold.
        let mut local = disk.keys();
        local.sort_unstable();
        for key in local {
            let pref = fleet.ring.preference(key);
            if pref[..r].contains(&fleet.self_ix) {
                continue;
            }
            let covered = pref[..r]
                .iter()
                .any(|ix| peer_keys.get(ix).is_some_and(|ks| ks.contains(&key)));
            if covered && disk.remove(key) {
                report.dropped += 1;
                self.fleet_stats.dropped.inc();
            }
        }

        self.fleet_stats.rebalances.inc();
        Ok(report)
    }

    /// Whether the durable store's index holds `key` (false without a
    /// disk). An index read, never segment I/O.
    fn on_disk(&self, key: u64) -> bool {
        self.disk.as_ref().is_some_and(|d| d.contains(key))
    }

    /// Applies the `peer.fetch` fault rule (if armed) to fetched segment
    /// bytes; `None` models a transfer that failed outright.
    fn mangle_transfer(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let fault = match self.faults.decide_disk("peer.fetch") {
            DiskFaultAction::Proceed => DiskFault::None,
            DiskFaultAction::Torn { frac } => DiskFault::Torn {
                keep: (frac * bytes.len() as f64) as usize,
            },
            DiskFaultAction::BitFlip { offset } => DiskFault::BitFlip {
                offset: offset as usize,
            },
            DiskFaultAction::Error => DiskFault::Error,
        };
        cachetime_disk::mangle(bytes, fault)
    }

    /// `POST /v1/traces`: ingest one uploaded trace body.
    ///
    /// The body is raw trace text in any supported format (din,
    /// ChampSim-style, valgrind-lackey), framed by `Content-Length` or
    /// `Transfer-Encoding: chunked`. Query parameters:
    /// `format=din|champsim|lackey` (sniffed from the first lines when
    /// absent), `name=<label>`, `warm=<refs>` (warm-up prefix length),
    /// `window=<refs>` and `picks=<k>` (representative-interval
    /// selection; defaults adapt to the trace length).
    ///
    /// The answer carries the upload's content digest — the handle
    /// `/v1/simulate` accepts as `{"trace": {"upload": "<digest>"}}` —
    /// plus the interval selection: at most `picks` windows with weights,
    /// and the selection's self-measured `profile_error`.
    fn ingest(&self, req: &Request) -> Response {
        let mut format = None;
        let mut name = String::from("upload");
        let mut warm = 0usize;
        let mut window = None;
        let mut picks = upload::DEFAULT_PICKS;
        for pair in req.query.as_deref().unwrap_or("").split('&').filter(|p| !p.is_empty()) {
            let reject = |msg: String| {
                self.ingest_stats.rejected.inc();
                Response::error(400, &msg)
            };
            match pair.split_once('=') {
                Some(("format", v)) => match TraceFormat::from_name(v) {
                    Some(f) => format = Some(f),
                    None => {
                        return reject(format!(
                            "unknown format {v:?}; expected din, champsim, or lackey"
                        ))
                    }
                },
                Some(("name", v)) => name = v.to_string(),
                Some(("warm", v)) => match v.parse() {
                    Ok(n) => warm = n,
                    Err(_) => return reject("warm must be a non-negative integer".into()),
                },
                Some(("window", v)) => match v.parse::<usize>() {
                    Ok(n) if n > 0 => window = Some(n),
                    _ => return reject("window must be a positive integer".into()),
                },
                Some(("picks", v)) => match v.parse::<usize>() {
                    Ok(n) if n > 0 => picks = n,
                    _ => return reject("picks must be a positive integer".into()),
                },
                _ => {
                    return reject(format!(
                        "unknown query parameter {pair:?}; traces accepts format, name, warm, window, picks"
                    ))
                }
            }
        }
        if req.body.is_empty() {
            self.ingest_stats.rejected.inc();
            return Response::error(400, "empty upload body");
        }
        let (trace, digest, format, truncated) =
            match upload::ingest(&req.body, format, &name, warm) {
                Ok(parsed) => parsed,
                Err(msg) => {
                    self.ingest_stats.rejected.inc();
                    return Response::error(400, &msg);
                }
            };
        let refs = trace.len() as u64;
        let warm_start = trace.warm_start() as u64;
        let (profile, selection) = upload::select_intervals(&trace, window, picks);
        let bytes = upload::trace_bytes(&trace);
        let inserted = self.uploads.insert(upload::UploadedTrace {
            digest,
            trace: Arc::new(trace),
            format,
            truncated,
            bytes,
        });
        self.ingest_stats.uploads.inc();
        if !inserted.fresh {
            self.ingest_stats.deduplicated.inc();
        }
        self.ingest_stats.evicted.add(inserted.evicted);
        self.ingest_stats.refs.add(refs);
        self.ingest_stats.bytes.add(req.body.len() as u64);
        self.ingest_stats.truncated.add(truncated);
        let picks_json: Vec<Json> = selection
            .picks
            .iter()
            .map(|p| {
                json_object([
                    ("window", Json::UInt(p.window as u64)),
                    ("start_ref", Json::UInt(p.start_ref as u64)),
                    ("len", Json::UInt(p.len as u64)),
                    ("weight", Json::Float(p.weight)),
                ])
            })
            .collect();
        Response::ok(json_object([
            ("digest", Json::Str(api::key_hex(digest))),
            ("format", Json::Str(format.name().into())),
            ("refs", Json::UInt(refs)),
            ("warm_start", Json::UInt(warm_start)),
            ("truncated_refs", Json::UInt(truncated)),
            ("deduplicated", Json::Bool(!inserted.fresh)),
            (
                "selection",
                json_object([
                    ("window_refs", Json::UInt(profile.window_refs as u64)),
                    ("windows", Json::UInt(profile.windows.len() as u64)),
                    ("picks", Json::Array(picks_json)),
                    ("profile_error", Json::Float(selection.profile_error)),
                    (
                        "error_bound",
                        Json::Float(cachetime_trace::interval::PROFILE_ERROR_BOUND),
                    ),
                ]),
            ),
        ]))
    }

    /// The warm-path simulate: answered inline iff the pairing's trace is
    /// resident. Parse and validation errors are also answered inline —
    /// they never block.
    fn try_simulate(&self, body: &[u8]) -> Option<Response> {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return Some(resp),
        };
        let config = match api::system_config_from_json(v.get("config")) {
            Ok(c) => c,
            Err(msg) => return Some(Response::error(400, &msg)),
        };
        let selector = match api::trace_selector_from_json(v.get("trace")) {
            Ok(s) => s,
            Err(msg) => return Some(Response::error(400, &msg)),
        };
        let org = config.organization();
        let key = match &selector {
            api::TraceSelector::Catalog(w) => keyed::trace_key(&org, w),
            api::TraceSelector::Upload(digest) => keyed::upload_trace_key(&org, *digest),
        };
        let TryGet::Ready(events) = self.store.try_get(key) else {
            // An upload that is neither recorded nor resident can never be
            // recorded by the pool: answer the 404 inline.
            if let api::TraceSelector::Upload(digest) = selector {
                if self.uploads.get(digest).is_none() && !self.on_disk(key) {
                    return Some(Response::error(
                        404,
                        "unknown upload digest: not uploaded yet or evicted; POST /v1/traces first",
                    ));
                }
            }
            return None; // cold or in flight: the pool records/joins
        };
        Some(match cachetime::replay(&events, &config) {
            Ok(result) => Response::ok(json_object([
                ("key", Json::Str(api::key_hex(key))),
                ("cached", Json::Bool(true)),
                ("result", api::sim_result_to_json(&result)),
            ])),
            // Unreachable unless two pairings collide on the 64-bit key.
            Err(e) => Response::error(500, &e.to_string()),
        })
    }

    /// The warm-path replay: answered inline iff the key's trace is
    /// resident. `Absent` also defers to the pool so the store's
    /// absent-lookup counting happens exactly once, in `replay`.
    fn try_replay(&self, body: &[u8]) -> Option<Response> {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return Some(resp),
        };
        let key = match v.get("key").and_then(Json::as_str) {
            Some(s) => match api::parse_key_hex(s) {
                Ok(k) => k,
                Err(msg) => return Some(Response::error(400, &msg)),
            },
            None => return Some(Response::error(400, "key (hex string) is required")),
        };
        let cts = match v.get("cycle_times_ns").and_then(Json::as_array) {
            Some(a) if !a.is_empty() => a,
            _ => return Some(Response::error(400, "cycle_times_ns must be a non-empty array")),
        };
        let base = match api::system_config_from_json(v.get("timing")) {
            Ok(c) => c.timing(),
            Err(msg) => return Some(Response::error(400, &msg)),
        };
        let mut timings = Vec::with_capacity(cts.len());
        for ct in cts {
            let Some(ns) = ct.as_u64() else {
                return Some(Response::error(400, "cycle_times_ns entries must be integers"));
            };
            let ns = match u32::try_from(ns)
                .ok()
                .and_then(|n| cachetime_types::CycleTime::from_ns(n).ok())
            {
                Some(ct) => ct,
                None => return Some(Response::error(400, "cycle time out of range")),
            };
            let mut t = base;
            t.cycle_time = ns;
            timings.push(t);
        }
        let TryGet::Ready(events) = self.store.try_get(key) else {
            return None; // in flight (join it) or absent (count + 404)
        };
        Some(match keyed::replay_timings(&events, &timings) {
            Ok(results) => replay_response(key, &results),
            Err(e) => Response::error(400, &e.to_string()),
        })
    }

    /// `POST /v1/simulate`: full config + workload → one `SimResult`.
    ///
    /// The organization/workload pairing is resolved to its content key;
    /// a store hit skips straight to replay, a miss records (coalescing
    /// with any concurrent identical request) and then replays. Cold
    /// requests are admission-controlled: past
    /// [`Limits::max_inflight_recordings`] they shed with `503 +
    /// Retry-After` instead of queueing unbounded recording work, and a
    /// request whose deadline lapses waiting on (or performing) a
    /// recording answers `503` — the recording still lands, so the retry
    /// is warm.
    fn simulate(&self, body: &[u8], deadline: Instant) -> Response {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let config = match api::system_config_from_json(v.get("config")) {
            Ok(c) => c,
            Err(msg) => return Response::error(400, &msg),
        };
        let selector = match api::trace_selector_from_json(v.get("trace")) {
            Ok(s) => s,
            Err(msg) => return Response::error(400, &msg),
        };
        let org = config.organization();
        // Resolve the selector to its content key and a recorder closure.
        // An upload must be resident (or its recording on disk) to record
        // from; a catalog workload can always be regenerated.
        let (key, source) = match &selector {
            api::TraceSelector::Catalog(w) => (keyed::trace_key(&org, w), None),
            api::TraceSelector::Upload(digest) => {
                let key = keyed::upload_trace_key(&org, *digest);
                match self.uploads.get(*digest) {
                    Some(up) => (key, Some(up)),
                    None if self.on_disk(key) => (key, None),
                    None => {
                        return Response::error(
                            404,
                            "unknown upload digest: not uploaded yet or evicted; POST /v1/traces first",
                        )
                    }
                }
            }
        };
        // Distinguishes a disk read-through from a fresh recording after
        // the closure runs: only fresh recordings spill back to disk.
        let from_disk = std::cell::Cell::new(false);
        let fetched = self.store.fetch_or_record(
            key,
            self.limits.max_inflight_recordings,
            Some(deadline),
            || {
                if let Some(disk) = &self.disk {
                    if let Some(trace) = disk.load(key) {
                        from_disk.set(true);
                        return trace;
                    }
                }
                self.faults.inject("serve.record");
                match &selector {
                    api::TraceSelector::Catalog(w) => keyed::record(&org, w).1,
                    api::TraceSelector::Upload(digest) => {
                        let up = source
                            .as_ref()
                            .expect("resident upload checked before recording");
                        keyed::record_upload(&org, *digest, &up.trace).1
                    }
                }
            },
        );
        let (events, cached) = match fetched {
            Fetch::Ready(events, cached) => (events, cached),
            Fetch::Shed => {
                self.stats.shed.inc();
                return Response::unavailable(
                    "recording capacity exhausted; retry shortly or replay a warm key",
                );
            }
            Fetch::TimedOut => {
                self.stats.timeouts.inc();
                return Response::unavailable(
                    "deadline exceeded waiting for this pairing's recording; retry shortly",
                );
            }
        };
        if !cached && !from_disk.get() {
            // Write-behind spill: this code only runs on the handler pool
            // (cold work never executes on the event loop), so the disk
            // write steals no loop time. Failures are counted by the disk
            // metrics and degrade to memory-only behavior.
            if let Some(disk) = &self.disk {
                let _ = disk.store(key, &events);
            }
        }
        if !cached && Instant::now() > deadline {
            // The recording ran past the request's budget. It is stored —
            // the client's retry will hit — but this answer is already
            // late, so say so instead of pretending it was on time.
            self.stats.timeouts.inc();
            return Response::unavailable(
                "deadline exceeded while recording; the trace is now warm — retry",
            );
        }
        match cachetime::replay(&events, &config) {
            Ok(result) => Response::ok(json_object([
                ("key", Json::Str(api::key_hex(key))),
                ("cached", Json::Bool(cached)),
                ("result", api::sim_result_to_json(&result)),
            ])),
            // Unreachable unless two pairings collide on the 64-bit key.
            Err(e) => Response::error(500, &e.to_string()),
        }
    }

    /// `POST /v1/replay`: a previously recorded key + a cycle-time axis →
    /// one `SimResult` per point, without resending the organization.
    ///
    /// Replay never records, so it is exempt from the recording admission
    /// limit — the warm path that keeps serving while the server sheds
    /// cold load. Only joining an in-flight recording is deadline-bounded.
    fn replay(&self, body: &[u8], deadline: Instant) -> Response {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let key = match v.get("key").and_then(Json::as_str) {
            Some(s) => match api::parse_key_hex(s) {
                Ok(k) => k,
                Err(msg) => return Response::error(400, &msg),
            },
            None => return Response::error(400, "key (hex string) is required"),
        };
        let cts = match v.get("cycle_times_ns").and_then(Json::as_array) {
            Some(a) if !a.is_empty() => a,
            _ => return Response::error(400, "cycle_times_ns must be a non-empty array"),
        };
        // The timing base the axis perturbs: defaults to the paper's, or
        // the request's `timing` object (same schema as `config`; its
        // organization half is ignored — the key names the organization).
        let base = match api::system_config_from_json(v.get("timing")) {
            Ok(c) => c.timing(),
            Err(msg) => return Response::error(400, &msg),
        };
        let mut timings = Vec::with_capacity(cts.len());
        for ct in cts {
            let Some(ns) = ct.as_u64() else {
                return Response::error(400, "cycle_times_ns entries must be integers");
            };
            let ns = match u32::try_from(ns)
                .ok()
                .and_then(|n| cachetime_types::CycleTime::from_ns(n).ok())
            {
                Some(ct) => ct,
                None => return Response::error(400, "cycle time out of range"),
            };
            let mut t = base;
            t.cycle_time = ns;
            timings.push(t);
        }
        let events = match self.store.get_within(key, Some(deadline)) {
            Ok(Some(events)) => events,
            Ok(None) => {
                // Memory miss: read through to the durable store before
                // giving up — an evicted (or pre-restart) key may still
                // have its segment on disk. Seed it back so the next
                // replay is a memory hit again.
                match self.disk.as_ref().and_then(|d| d.load(key)) {
                    Some(trace) => {
                        let events = Arc::new(trace);
                        self.store.seed(key, Arc::clone(&events));
                        events
                    }
                    None => {
                        return Response::error(
                            404,
                            "unknown key: not recorded yet or evicted; POST /v1/simulate first",
                        )
                    }
                }
            }
            Err(store::DeadlineExceeded) => {
                self.stats.timeouts.inc();
                return Response::unavailable(
                    "deadline exceeded waiting for this key's recording; retry shortly",
                );
            }
        };
        match keyed::replay_timings(&events, &timings) {
            Ok(results) => replay_response(key, &results),
            Err(e) => Response::error(400, &e.to_string()),
        }
    }
}

/// Lazily opens (and caches for the rest of the pass) the rebalance
/// connection to peer `ix`.
fn peer_conn<'a>(
    conns: &'a mut HashMap<usize, HttpClient>,
    ix: usize,
    endpoint: &str,
    config: &ClientConfig,
) -> std::io::Result<&'a mut HttpClient> {
    use std::collections::hash_map::Entry;
    match conns.entry(ix) {
        Entry::Occupied(e) => Ok(e.into_mut()),
        Entry::Vacant(v) => Ok(v.insert(HttpClient::connect_with(endpoint, config.clone())?)),
    }
}

/// `GET /v1/segments` against one peer, parsed into a key set.
fn fetch_peer_keys(
    conns: &mut HashMap<usize, HttpClient>,
    ix: usize,
    endpoint: &str,
    config: &ClientConfig,
) -> std::io::Result<HashSet<u64>> {
    let conn = peer_conn(conns, ix, endpoint, config)?;
    let (status, body) = conn.request("GET", "/v1/segments", "")?;
    if status != 200 {
        return Err(std::io::Error::other(format!(
            "peer {endpoint} answered {status} to a key-list request"
        )));
    }
    let v = Json::parse(&body).map_err(std::io::Error::other)?;
    let mut keys = HashSet::new();
    if let Some(items) = v.get("keys").and_then(Json::as_array) {
        for item in items {
            if let Some(key) = item.as_str().and_then(|s| api::parse_key_hex(s).ok()) {
                keys.insert(key);
            }
        }
    }
    Ok(keys)
}

/// `GET /v1/segments/<key>` against one peer: the raw sealed container.
fn fetch_segment(
    conns: &mut HashMap<usize, HttpClient>,
    ix: usize,
    endpoint: &str,
    config: &ClientConfig,
    key: u64,
) -> std::io::Result<Vec<u8>> {
    let conn = peer_conn(conns, ix, endpoint, config)?;
    let path = format!("/v1/segments/{}", api::key_hex(key));
    let (status, bytes) = conn.request_bytes("GET", &path, "")?;
    if status != 200 {
        return Err(std::io::Error::other(format!(
            "peer {endpoint} answered {status} for segment {}",
            api::key_hex(key)
        )));
    }
    Ok(bytes)
}

/// Builds the `/v1/replay` success response as a chunk sequence: one
/// chunk of envelope prefix, one per `SimResult` (with its separating
/// comma), one closing chunk. Concatenated, the chunks are byte-identical
/// to the monolithic `{"key":...,"results":[...]}` object this endpoint
/// used to build — but a long cycle-time axis is framed result-by-result
/// instead of first assembling the full body string.
fn replay_response(key: u64, results: &[cachetime::SimResult]) -> Response {
    let mut chunks = Vec::with_capacity(results.len() + 2);
    let mut prefix = String::from("{\"key\":");
    prefix.push_str(&Json::Str(api::key_hex(key)).to_string());
    prefix.push_str(",\"results\":[");
    chunks.push(prefix);
    for (i, r) in results.iter().enumerate() {
        let mut chunk = String::new();
        if i > 0 {
            chunk.push(',');
        }
        chunk.push_str(&api::sim_result_to_json(r).to_string());
        chunks.push(chunk);
    }
    chunks.push("]}".into());
    Response::ok_chunked(chunks)
}

/// Resolves the `/v1/metrics` query into a family-name prefix: no query
/// (or an empty one) means everything; `family=<prefix>` restricts the
/// exposition. Anything else is a client error — silently ignoring a
/// misspelled parameter would scrape the wrong (full-size) payload.
fn metrics_family_filter(query: Option<&str>) -> Result<&str, &'static str> {
    let mut prefix = "";
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("family", p)) => prefix = p,
            _ => return Err("metrics accepts only a family=<prefix> query parameter"),
        }
    }
    Ok(prefix)
}

fn parse_body(body: &[u8]) -> Result<Json, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "body must be UTF-8 JSON"))?;
    if text.trim().is_empty() {
        return Err(Response::error(400, "body must be a JSON object"));
    }
    Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: None,
            body: body.as_bytes().to_vec(),
            keep_alive: true,
            deadline_ms: None,
        }
    }

    fn parse(resp: &Response) -> Json {
        Json::parse(&resp.body_text()).expect("response bodies are JSON")
    }

    #[test]
    fn healthz_and_stats_respond() {
        let app = App::new(usize::MAX);
        let r = app.handle(&req("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        assert_eq!(parse(&r).get("status").and_then(Json::as_str), Some("ok"));
        let r = app.handle(&req("GET", "/v1/stats", ""));
        assert_eq!(r.status, 200);
        assert!(parse(&r).get("store").is_some());
    }

    #[test]
    fn unknown_routes_and_methods() {
        let app = App::new(usize::MAX);
        assert_eq!(app.handle(&req("GET", "/nope", "")).status, 404);
        assert_eq!(app.handle(&req("DELETE", "/healthz", "")).status, 405);
    }

    #[test]
    fn simulate_records_then_hits_and_replay_matches() {
        let app = App::new(usize::MAX);
        let body = r#"{"trace": {"name": "mu3", "scale": 0.005}}"#;
        let first = app.handle(&req("POST", "/v1/simulate", body));
        assert_eq!(first.status, 200, "{}", first.body);
        let first = parse(&first);
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        let key = first.get("key").and_then(Json::as_str).unwrap().to_string();

        let second = parse(&app.handle(&req("POST", "/v1/simulate", body)));
        assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(second.get("result"), first.get("result"));

        // Replay at the simulate default (40 ns) must reproduce the
        // simulate result bit-for-bit.
        let replay_body = format!(r#"{{"key": "{key}", "cycle_times_ns": [40, 20]}}"#);
        let r = app.handle(&req("POST", "/v1/replay", &replay_body));
        assert_eq!(r.status, 200, "{}", r.body);
        let r = parse(&r);
        let results = r.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(Some(&results[0]), first.get("result"));
        assert_ne!(results[0], results[1], "cycle time must matter");
    }

    #[test]
    fn replay_of_an_unknown_key_is_404() {
        let app = App::new(usize::MAX);
        let r = app.handle(&req(
            "POST",
            "/v1/replay",
            r#"{"key": "00000000deadbeef", "cycle_times_ns": [40]}"#,
        ));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn malformed_bodies_are_400s_with_messages() {
        let app = App::new(usize::MAX);
        for body in [
            "",
            "{",
            r#"{"trace": {"name": "nonesuch"}}"#,
            r#"{"trace": {"name": "mu3"}, "config": {"cycle_time_ns": 0}}"#,
        ] {
            let r = app.handle(&req("POST", "/v1/simulate", body));
            assert_eq!(r.status, 400, "body {body:?} -> {}", r.body);
            assert!(parse(&r).get("error").is_some());
        }
        let r = app.handle(&req("POST", "/v1/replay", r#"{"cycle_times_ns": [40]}"#));
        assert_eq!(r.status, 400);
        let r = app.handle(&req("POST", "/v1/replay", r#"{"key": "ff"}"#));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn segment_routes_without_a_disk_answer_cleanly() {
        let app = App::new(usize::MAX);
        // No durable store: an empty key list, not an error — peers read
        // this as "nothing to hand off".
        let r = app.handle(&req("GET", "/v1/segments", ""));
        assert_eq!(r.status, 200);
        assert_eq!(
            parse(&r).get("keys").and_then(Json::as_array).map(|a| a.len()),
            Some(0)
        );
        // A segment body read 404s (nothing is stored), a malformed key
        // 400s, and a rebalance outside any fleet is a client error.
        assert_eq!(app.handle(&req("GET", "/v1/segments/00ff", "")).status, 404);
        assert_eq!(app.handle(&req("GET", "/v1/segments/zz", "")).status, 400);
        let r = app.handle(&req("POST", "/v1/rebalance", ""));
        assert_eq!(r.status, 400);
        assert!(parse(&r).get("error").is_some());
        assert_eq!(app.fleet_stats.rebalances.get(), 0);
    }

    #[test]
    fn joining_a_fleet_requires_a_disk_and_a_listed_self() {
        let fleet = |peers: &[&str], self_addr: &str| FleetConfig {
            peers: peers.iter().map(|s| s.to_string()).collect(),
            self_addr: self_addr.into(),
            replication: 2,
            client: ClientConfig::default(),
        };
        // No durable store: refused.
        let err = match App::new(usize::MAX).with_fleet(fleet(&["a:1", "b:2"], "a:1")) {
            Err(e) => e,
            Ok(_) => panic!("a diskless fleet member must be refused"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Self not in the peer list: refused.
        let dir = std::env::temp_dir().join(format!("ct-fleet-cfg-{}", std::process::id()));
        let disk = cachetime_disk::SegmentStore::open(cachetime_disk::DiskConfig {
            root: dir.clone(),
            budget_bytes: 0,
            quarantine_cap_bytes: 0,
        })
        .unwrap();
        let err = match App::new(usize::MAX)
            .with_disk(disk)
            .with_fleet(fleet(&["a:1", "b:2"], "c:3"))
        {
            Err(e) => e,
            Ok(_) => panic!("an unlisted self address must be refused"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn req_q(method: &str, path: &str, query: &str, body: Vec<u8>) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: Some(query.into()),
            body,
            keep_alive: true,
            deadline_ms: None,
        }
    }

    #[test]
    fn uploaded_traces_simulate_bit_identical_to_direct_runs() {
        let app = App::new(usize::MAX);
        // Serialize a catalog trace to din text and upload it.
        let trace = cachetime_trace::catalog::mu3(0.005).generate();
        let mut body = Vec::new();
        cachetime_trace::io::write_din(&mut body, trace.refs()).unwrap();
        let warm = trace.warm_start();
        let r = app.handle(&req_q("POST", "/v1/traces", &format!("warm={warm}"), body.clone()));
        assert_eq!(r.status, 200, "{}", r.body);
        let up = parse(&r);
        assert_eq!(up.get("format").and_then(Json::as_str), Some("din"));
        assert_eq!(up.get("refs").and_then(Json::as_u64), Some(trace.len() as u64));
        assert_eq!(up.get("deduplicated").and_then(Json::as_bool), Some(false));
        let digest = up.get("digest").and_then(Json::as_str).unwrap().to_string();
        let sel = up.get("selection").unwrap();
        assert!(sel.get("picks").and_then(Json::as_array).is_some_and(|p| !p.is_empty()));

        // Re-upload: same digest, deduplicated.
        let r2 = parse(&app.handle(&req_q(
            "POST",
            "/v1/traces",
            &format!("warm={warm}"),
            body,
        )));
        assert_eq!(r2.get("digest").and_then(Json::as_str), Some(digest.as_str()));
        assert_eq!(r2.get("deduplicated").and_then(Json::as_bool), Some(true));

        // Simulate by digest: bit-identical to a direct Simulator run.
        let sim_body = format!(r#"{{"trace": {{"upload": "{digest}"}}}}"#);
        let first = app.handle(&req("POST", "/v1/simulate", &sim_body));
        assert_eq!(first.status, 200, "{}", first.body);
        let first = parse(&first);
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        let config = cachetime::SystemConfig::paper_default().unwrap();
        let direct = cachetime::Simulator::new(&config).run(&trace);
        assert_eq!(first.get("result"), Some(&api::sim_result_to_json(&direct)));

        // Second simulate is a warm hit; replay by the returned key works.
        let second = parse(&app.handle(&req("POST", "/v1/simulate", &sim_body)));
        assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
        let key = first.get("key").and_then(Json::as_str).unwrap();
        let replay_body = format!(r#"{{"key": "{key}", "cycle_times_ns": [40]}}"#);
        let r = parse(&app.handle(&req("POST", "/v1/replay", &replay_body)));
        let results = r.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(Some(&results[0]), first.get("result"));

        // An unknown digest is a 404; a malformed body a 400.
        let r = app.handle(&req(
            "POST",
            "/v1/simulate",
            r#"{"trace": {"upload": "00000000deadbeef"}}"#,
        ));
        assert_eq!(r.status, 404, "{}", r.body);
        let r = app.handle(&req(
            "POST",
            "/v1/simulate",
            r#"{"trace": {"upload": "ff", "name": "mu3"}}"#,
        ));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn ingest_rejects_garbage_and_counts_it() {
        let app = App::new(usize::MAX);
        for (query, body) in [
            ("", &b""[..]),
            ("format=elf", b"0 1000\n"),
            ("", b"not a trace at all\x00\xff"),
            ("warm=soon", b"0 1000\n"),
        ] {
            let r = app.handle(&req_q("POST", "/v1/traces", query, body.to_vec()));
            assert_eq!(r.status, 400, "query={query:?}: {}", r.body);
        }
        assert_eq!(app.ingest_stats.rejected.get(), 4);
        assert_eq!(app.ingest_stats.uploads.get(), 0);
        // Stats payload carries the ingest block.
        let stats = parse(&app.handle(&req("GET", "/v1/stats", "")));
        let ingest = stats.get("ingest").unwrap();
        assert_eq!(ingest.get("rejected").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn shutdown_flags_the_transport() {
        let app = App::new(usize::MAX);
        let r = app.handle(&req("POST", "/v1/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(r.shutdown);
    }
}
