//! Calibration tests: the quantitative targets EXPERIMENTS.md reports,
//! checked at a moderate trace scale.
//!
//! These are `#[ignore]`d because they take tens of seconds each; run them
//! with
//!
//! ```text
//! cargo test --release -p cachetime --test calibration -- --ignored
//! ```
//!
//! after any change to the trace generators or the timing model, and
//! update EXPERIMENTS.md if a band moves.

use cachetime_experiments::runner::{SpeedSizeGrid, TraceSet};
use cachetime_experiments::{fig3_1, fig3_4, fig4_1, fig5_1};
use std::sync::OnceLock;

const SCALE: f64 = 0.3;

fn traces() -> &'static TraceSet {
    static TRACES: OnceLock<TraceSet> = OnceLock::new();
    TRACES.get_or_init(|| TraceSet::generate(SCALE))
}

/// Figure 3-1 calibration: absolute miss-ratio bands.
#[test]
#[ignore = "expensive calibration sweep"]
fn fig3_1_absolute_bands() {
    let pts = fig3_1::run(traces());
    let at = |kb: u64| {
        pts.iter()
            .find(|p| p.total_kb == kb)
            .expect("size sampled")
            .read_miss_ratio
    };
    // Small caches: high single-digit percent (the paper's figure starts
    // near 10%).
    assert!(
        (0.05..0.16).contains(&at(4)),
        "4KB read MR {} out of band",
        at(4)
    );
    // The paper's default size: low single digits.
    assert!(
        (0.01..0.06).contains(&at(128)),
        "128KB read MR {} out of band",
        at(128)
    );
    // Very large caches: under 2%.
    assert!(at(4096) < 0.02, "4MB read MR {} out of band", at(4096));
    // Monotone decline overall.
    assert!(at(4) > at(64) && at(64) > at(1024));
}

/// Figure 3-4 calibration: the ns-per-doubling slope ordering and the
/// <2.5 ns large-cache regime.
#[test]
#[ignore = "expensive calibration sweep"]
fn fig3_4_slope_bands() {
    let grid = SpeedSizeGrid::compute_over(
        traces(),
        1,
        &[2, 8, 32, 128, 512, 2048],
        &[20, 28, 36, 44, 52, 60, 68, 76],
    );
    let e = fig3_4::run(&grid, 16);
    let slopes: Vec<f64> = e.slopes.iter().flatten().copied().collect();
    assert!(slopes.len() >= 4);
    // Small caches: several ns per doubling (the paper: >10; our traces:
    // ~5-7 — see EXPERIMENTS.md deviation #1).
    assert!(slopes[0] > 3.0, "small-cache slope {} too flat", slopes[0]);
    // Large caches: the paper's <2.5ns band.
    assert!(
        *slopes.last().unwrap() < 2.5,
        "large-cache slope {} too steep",
        slopes.last().unwrap()
    );
}

/// Figure 4-1 calibration: associativity spread bands.
#[test]
#[ignore = "expensive calibration sweep"]
fn fig4_1_spread_bands() {
    let m = fig4_1::run_over(traces(), &[2, 32, 256, 1024], &[1, 2]);
    // Small caches: positive spread (paper ~20%, ours lower — deviation
    // #1 in EXPERIMENTS.md).
    let small = m.spread(0, 1, 0);
    assert!((0.01..0.30).contains(&small), "4KB spread {small}");
    // Large virtual caches: spread grows well beyond the small-cache one
    // ("above that the improvements increase because the caches are
    // virtual").
    let large = m.spread(0, 1, 3);
    assert!(
        large > small,
        "large-cache spread {large} must exceed small-cache {small}"
    );
    assert!(large > 0.15, "2MB spread {large} too small");
}

/// Figure 5-1 calibration: the performance-optimal block lands in the
/// paper's 4–8W band (one binary step of tolerance at this scale).
#[test]
#[ignore = "expensive calibration sweep"]
fn fig5_1_optimal_block_band() {
    let pts = fig5_1::run(traces());
    let perf = fig5_1::argmin_block(&pts, |p| p.time_per_ref_ns);
    assert!(
        (4..=16).contains(&perf),
        "performance-optimal block {perf}W out of band"
    );
    let miss_i = fig5_1::argmin_block(&pts, |p| p.ifetch_miss_ratio);
    assert!(miss_i >= 64, "ifetch miss optimum {miss_i}W (paper: >64W)");
}
