#!/usr/bin/env bash
# Tier-1 verification gate: everything must pass before merging.
#
#   ./scripts/verify.sh
#
# 1. Release build of the whole workspace.
# 2. Full test suite (unit + property + integration).
# 3. Offline-build guard: the workspace must build with no registry
#    access at all (zero external dependencies is a hard invariant).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --offline --workspace (zero-dependency guard)"
cargo build --offline --workspace

echo "==> verify OK"
