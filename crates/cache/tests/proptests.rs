//! Property-based tests for the cache substrate, on the hermetic
//! testkit runner (`TESTKIT_SEED=… cargo test -q` reproduces a failure).

use cachetime_cache::{Cache, CacheConfig, ReadOutcome, ReplacementPolicy, WriteOutcome};
use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, SplitMix64};
use cachetime_types::{Assoc, BlockWords, CacheSize, Pid, WordAddr};

/// An arbitrary small-but-valid cache configuration.
fn gen_config(rng: &mut SplitMix64) -> CacheConfig {
    loop {
        let size = CacheSize::from_bytes(64u64 << rng.gen_range(0u32..7)).expect("pow2");
        let block = BlockWords::new(1 << rng.gen_range(0u32..5)).expect("pow2");
        let assoc = Assoc::new(1 << rng.gen_range(0u32..4)).expect("pow2");
        let repl = [
            ReplacementPolicy::Random,
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::TreePlru,
        ][rng.gen_range(0usize..4)];
        // Rejection-sample: the cache must hold at least one set.
        if let Ok(config) = CacheConfig::builder(size)
            .block(block)
            .assoc(assoc)
            .replacement(repl)
            .virtual_tags(rng.gen_bool(0.5))
            .build()
        {
            return config;
        }
    }
}

/// A short access pattern within a small address range (to force reuse).
fn gen_accesses(rng: &mut SplitMix64) -> Vec<(u64, bool, u16)> {
    let n = rng.gen_range(1usize..400);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0u64..512),
                rng.gen_bool(0.5),
                rng.gen_range(0u16..3),
            )
        })
        .collect()
}

/// A read immediately after a read of the same word by the same process
/// always hits (nothing intervenes to displace it).
#[test]
fn read_read_same_word_hits() {
    check(
        "read_read_same_word_hits",
        |rng| {
            (
                gen_config(rng),
                rng.gen_range(0u64..1024),
                rng.gen_range(0u16..4),
            )
        },
        shrink::none,
        |&(config, addr, pid)| {
            let mut cache = Cache::new(config);
            let a = WordAddr::new(addr);
            cache.read(a, Pid(pid));
            prop_assert!(cache.read(a, Pid(pid)).is_hit());
            Ok(())
        },
    );
}

/// Statistics identities hold for arbitrary access sequences.
#[test]
fn stats_identities() {
    check(
        "stats_identities",
        |rng| (gen_config(rng), gen_accesses(rng)),
        shrink::pair_vec,
        |(config, accesses)| {
            let config = *config;
            let mut cache = Cache::new(config);
            for &(addr, is_write, pid) in accesses {
                let a = WordAddr::new(addr);
                if is_write {
                    cache.write(a, Pid(pid));
                } else {
                    cache.read(a, Pid(pid));
                }
            }
            let s = *cache.stats();
            let n_reads = accesses.iter().filter(|&&(_, w, _)| !w).count() as u64;
            let n_writes = accesses.len() as u64 - n_reads;
            prop_assert_eq!(s.reads, n_reads);
            prop_assert_eq!(s.writes, n_writes);
            prop_assert!(s.read_misses <= s.reads);
            prop_assert!(s.write_misses <= s.writes);
            prop_assert!(s.dirty_evictions <= s.evictions);
            prop_assert!(s.dirty_words_written_back <= s.write_back_words);
            // Whole blocks are written back.
            if config.fetch() == config.block() {
                prop_assert_eq!(
                    s.write_back_words,
                    s.dirty_evictions * config.block().words() as u64
                );
            }
            // Every fill moves exactly the fetch size.
            prop_assert_eq!(s.fill_words, s.fills * config.fetch().words() as u64);
            // Occupancy bounded by capacity.
            prop_assert!(cache.valid_blocks() <= config.blocks());
            // Ratios live in [0, 1] for miss ratios.
            prop_assert!((0.0..=1.0).contains(&s.read_miss_ratio()));
            prop_assert!((0.0..=1.0).contains(&s.write_miss_ratio()));
            Ok(())
        },
    );
}

/// `probe` never changes observable behaviour: interleaving probes into
/// an access sequence yields identical statistics.
#[test]
fn probe_is_pure() {
    check(
        "probe_is_pure",
        |rng| (gen_config(rng), gen_accesses(rng)),
        shrink::pair_vec,
        |(config, accesses)| {
            let mut plain = Cache::new(*config);
            let mut probed = Cache::new(*config);
            for &(addr, is_write, pid) in accesses {
                let a = WordAddr::new(addr);
                probed.probe(a, Pid(pid));
                probed.probe(WordAddr::new(addr ^ 0xff), Pid(pid));
                if is_write {
                    plain.write(a, Pid(pid));
                    probed.write(a, Pid(pid));
                } else {
                    plain.read(a, Pid(pid));
                    probed.read(a, Pid(pid));
                }
            }
            prop_assert_eq!(plain.stats(), probed.stats());
            Ok(())
        },
    );
}

/// After a miss is filled, a probe of the same word hits; after a
/// no-allocate write miss, it does not.
#[test]
fn outcome_matches_probe() {
    check(
        "outcome_matches_probe",
        |rng| {
            (
                gen_config(rng),
                rng.gen_range(0u64..1024),
                rng.gen_range(0u16..4),
            )
        },
        shrink::none,
        |&(config, addr, pid)| {
            let mut cache = Cache::new(config);
            let a = WordAddr::new(addr);
            match cache.read(a, Pid(pid)) {
                ReadOutcome::Miss { .. }
                | ReadOutcome::Hit
                | ReadOutcome::SlowHit
                | ReadOutcome::VictimHit => {
                    prop_assert!(cache.probe(a, Pid(pid)));
                }
            }
            let mut cache = Cache::new(config);
            match cache.write(a, Pid(pid)) {
                WriteOutcome::MissNoAllocate => prop_assert!(!cache.probe(a, Pid(pid))),
                WriteOutcome::MissAllocate { .. }
                | WriteOutcome::Hit { .. }
                | WriteOutcome::VictimHit { .. } => {
                    prop_assert!(cache.probe(a, Pid(pid)));
                }
            }
            Ok(())
        },
    );
}

/// Flushing after any sequence leaves no dirty blocks, and the flushed
/// dirty-word totals never exceed the words written.
#[test]
fn flush_bounds() {
    check(
        "flush_bounds",
        |rng| (gen_config(rng), gen_accesses(rng)),
        shrink::pair_vec,
        |(config, accesses)| {
            let mut cache = Cache::new(*config);
            let mut stores = 0u64;
            for &(addr, is_write, pid) in accesses {
                let a = WordAddr::new(addr);
                if is_write {
                    cache.write(a, Pid(pid));
                    stores += 1;
                } else {
                    cache.read(a, Pid(pid));
                }
            }
            let flushed = cache.flush_dirty();
            let flushed_dirty: u64 = flushed.iter().map(|e| e.dirty_words as u64).sum();
            let prior_dirty = cache.stats().dirty_words_written_back;
            prop_assert!(
                flushed_dirty + prior_dirty <= stores,
                "dirty words ({flushed_dirty} + {prior_dirty}) cannot exceed stores ({stores})"
            );
            prop_assert!(cache.flush_dirty().is_empty());
            Ok(())
        },
    );
}

/// Two identically configured caches fed the same sequence agree
/// event-for-event (determinism, including random replacement).
#[test]
fn deterministic_replay() {
    check(
        "deterministic_replay",
        |rng| (gen_config(rng), gen_accesses(rng)),
        shrink::pair_vec,
        |(config, accesses)| {
            let mut a = Cache::new(*config);
            let mut b = Cache::new(*config);
            for &(addr, is_write, pid) in accesses {
                let w = WordAddr::new(addr);
                if is_write {
                    prop_assert_eq!(a.write(w, Pid(pid)), b.write(w, Pid(pid)));
                } else {
                    prop_assert_eq!(a.read(w, Pid(pid)), b.read(w, Pid(pid)));
                }
            }
            Ok(())
        },
    );
}

/// In a virtual cache, relabeling the single process id leaves the
/// miss sequence unchanged.
#[test]
fn pid_relabel_invariance() {
    check(
        "pid_relabel_invariance",
        |rng| (gen_config(rng), gen_accesses(rng)),
        shrink::pair_vec,
        |(config, accesses)| {
            let mut a = Cache::new(*config);
            let mut b = Cache::new(*config);
            for &(addr, is_write, _) in accesses {
                let w = WordAddr::new(addr);
                if is_write {
                    prop_assert_eq!(a.write(w, Pid(1)).is_hit(), b.write(w, Pid(9)).is_hit());
                } else {
                    prop_assert_eq!(a.read(w, Pid(1)).is_hit(), b.read(w, Pid(9)).is_hit());
                }
            }
            Ok(())
        },
    );
}
