//! `ctserve` — the cachetime simulation server.
//!
//! ```text
//! ctserve [--addr 127.0.0.1:8080] [--workers N] [--budget-mb MB] [--port-file PATH]
//!         [--max-queue N] [--max-inflight-recordings N] [--request-deadline-ms MS]
//!         [--data-dir DIR] [--disk-budget-mb MB]
//!         [--peers HOST:P1,HOST:P2,...] [--replication N]
//! ```
//!
//! `--workers 0` (the default) sizes the pool via
//! `cachetime::sweep::available_jobs()`. `--port-file` writes the bound
//! port to a file once listening — scripts binding port 0 read it back
//! (written atomically: temp + rename, so a poller never observes a
//! half-written port). `--data-dir` makes the store durable: recordings
//! spill to content-addressed segment files and a restart on the same
//! directory recovers them before accepting traffic (restart-warm).
//! The process runs until `POST /v1/shutdown` (or the process is killed).
//!
//! The three robustness knobs map onto the failure model in DESIGN.md §7:
//! `--max-queue` bounds the connection queue (past it, `503` at accept),
//! `--max-inflight-recordings` bounds concurrent cold simulates (past it,
//! cold simulates get `503 + Retry-After` while warm replays keep
//! serving), and `--request-deadline-ms` is the per-request wall-clock
//! budget (clients lower it via `X-Deadline-Ms`).
//!
//! `--peers` makes this server one member of a self-healing fleet: the
//! comma-separated list is the *full* ring, this server's own `--addr`
//! included (it must appear verbatim, so port 0 is not allowed with
//! `--peers`). At boot — and again on every `POST /v1/rebalance` — the
//! server runs a rebalance pass along the ring: it pulls the segments
//! rendezvous hashing now places on it (within `--replication` copies)
//! from whichever peers hold them, verifying each transfer's checksum
//! before adoption, and drops segments the ring has moved elsewhere once
//! a current owner confirms holding them. Requires `--data-dir`.

use cachetime_serve::client::ClientConfig;
use cachetime_serve::http::limits_for;
use cachetime_serve::{serve_with_app, App, FleetConfig, ServerConfig};
use std::io::Write;
use std::sync::Arc;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".into(),
        ..Default::default()
    };
    let mut port_file: Option<String> = None;
    let mut peers: Option<Vec<String>> = None;
    let mut replication: usize = 2;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--budget-mb" => {
                let mb: usize = parse(&value("--budget-mb"), "--budget-mb");
                config.store_budget_bytes = mb * 1024 * 1024;
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--max-queue" => config.max_queue = parse(&value("--max-queue"), "--max-queue"),
            "--max-inflight-recordings" => {
                config.max_inflight_recordings = parse(
                    &value("--max-inflight-recordings"),
                    "--max-inflight-recordings",
                );
            }
            "--request-deadline-ms" => {
                config.request_deadline_ms =
                    parse(&value("--request-deadline-ms"), "--request-deadline-ms");
            }
            "--data-dir" => config.data_dir = Some(value("--data-dir").into()),
            "--disk-budget-mb" => {
                let mb: u64 = parse(&value("--disk-budget-mb"), "--disk-budget-mb");
                config.disk_budget_bytes = mb * 1024 * 1024;
            }
            "--peers" => {
                peers = Some(
                    value("--peers")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--replication" => replication = parse(&value("--replication"), "--replication"),
            "--help" | "-h" => {
                println!(
                    "ctserve — cachetime simulation server\n\n\
                     USAGE: ctserve [--addr HOST:PORT] [--workers N] [--budget-mb MB] [--port-file PATH]\n\
                     \x20              [--max-queue N] [--max-inflight-recordings N] [--request-deadline-ms MS]\n\
                     \x20              [--data-dir DIR] [--disk-budget-mb MB]\n\n\
                     --addr                     bind address (default 127.0.0.1:8080; port 0 = ephemeral)\n\
                     --workers                  worker threads (default 0 = auto-size to the host)\n\
                     --budget-mb                EventTrace store budget in MiB (default 256)\n\
                     --port-file                write the bound port to PATH once listening\n\
                     --max-queue                connection queue bound; past it, shed with 503 (default 1024)\n\
                     --max-inflight-recordings  cold simulates in flight before shedding (default 0 = 2x workers)\n\
                     --request-deadline-ms      per-request wall-clock budget (default 10000)\n\
                     --data-dir                 durable segment store directory (default: memory-only)\n\
                     --disk-budget-mb           durable store budget in MiB (default 0 = unlimited)\n\
                     --peers                    full fleet ring, this --addr included (enables handoff; needs --data-dir)\n\
                     --replication              copies of each segment the fleet keeps (default 2)"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    // The process-wide registry, not a private one: `GET /v1/metrics`
    // then exposes the core engine's record/replay spans and the sweep
    // executor's counters alongside the server's own families.
    let mut app = App::with_registry(
        config.store_budget_bytes,
        Arc::clone(cachetime_obs::global()),
    )
    .with_limits(limits_for(&config));
    if let Some(dir) = &config.data_dir {
        let disk = cachetime_disk::SegmentStore::open_with_metrics(
            cachetime_disk::DiskConfig {
                root: dir.clone(),
                budget_bytes: config.disk_budget_bytes,
                quarantine_cap_bytes: cachetime_disk::DEFAULT_QUARANTINE_CAP_BYTES,
            },
            cachetime_disk::DiskMetrics::in_registry(cachetime_obs::global()),
        )
        .unwrap_or_else(|e| {
            eprintln!("error: failed to open data dir {}: {e}", dir.display());
            std::process::exit(1);
        });
        app = app.with_disk(disk);
        match app.recover_from_disk() {
            Ok(report) => {
                if report.recovered > 0 || report.quarantined > 0 || report.stale_tmp > 0 {
                    println!(
                        "ctserve recovered {} segment(s) ({} bytes), quarantined {}, removed {} stale temp file(s)",
                        report.recovered, report.bytes, report.quarantined, report.stale_tmp
                    );
                }
            }
            Err(e) => {
                eprintln!("error: recovery scan failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let in_fleet = peers.is_some();
    if let Some(peers) = peers {
        app = app
            .with_fleet(FleetConfig {
                peers,
                self_addr: config.addr.clone(),
                replication,
                client: ClientConfig {
                    read_timeout: std::time::Duration::from_secs(30),
                    ..ClientConfig::default()
                },
            })
            .unwrap_or_else(|e| {
                eprintln!("error: invalid fleet configuration: {e}");
                std::process::exit(2);
            });
    }
    let handle = match serve_with_app(config, Arc::new(app)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = write_port_file(&path, addr.port()) {
            eprintln!("error: failed to write port file {path}: {e}");
            handle.shutdown();
            handle.join();
            std::process::exit(1);
        }
    }
    println!("ctserve listening on http://{addr}");
    if in_fleet {
        // Boot rebalance: adopt what the ring now places here from
        // whichever peers are already up. Peers still booting are counted
        // as fetch failures and retried on the next POST /v1/rebalance —
        // a half-up fleet must never fail to start.
        match handle.app().rebalance() {
            Ok(report) => {
                if report.pulled > 0 || report.dropped > 0 || report.rejected > 0 {
                    println!(
                        "ctserve rebalance: pulled {}, dropped {}, rejected {} (fetch failures {})",
                        report.pulled, report.dropped, report.rejected, report.fetch_failures
                    );
                }
            }
            Err(e) => eprintln!("warning: boot rebalance failed: {e}"),
        }
    }
    handle.join();
    println!("ctserve stopped");
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {text:?} for {flag}");
        std::process::exit(2);
    })
}

/// Writes the port atomically (temp file + rename): a script polling for
/// the file either sees nothing or the complete port line, never an
/// empty or half-written file. `File::create` + `writeln!` had exactly
/// that race — the file exists (empty) before the port lands in it.
fn write_port_file(path: &str, port: u16) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp-{}", std::process::id());
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "{port}")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}
