//! Figure 4-2: execution time versus size, associativity, and cycle time.
//!
//! "A change in associativity can be seen to have a significant
//! performance effect for the smaller caches … for large caches, the
//! improvement is much less significant." The underlying data is one
//! speed–size grid per set size; the break-even maps of Figures 4-3…4-5
//! interpolate between them.

use crate::runner::{SpeedSizeGrid, TraceSet, ASSOCS};
use cachetime_analysis::table::Table;

/// One execution-time grid per associativity.
#[derive(Debug, Clone)]
pub struct AssocGrids {
    /// The grids, in [`grids`](Self::grids) order of `assocs`.
    pub grids: Vec<SpeedSizeGrid>,
}

impl AssocGrids {
    /// The grid for a given set size, if swept.
    pub fn for_assoc(&self, ways: u32) -> Option<&SpeedSizeGrid> {
        self.grids.iter().find(|g| g.assoc == ways)
    }

    /// Global minimum execution time across all grids (the normalization
    /// point of the figure).
    pub fn min_time(&self) -> f64 {
        self.grids
            .iter()
            .map(SpeedSizeGrid::min_time)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Computes grids for every set size in the paper's sweep.
pub fn run(traces: &TraceSet) -> AssocGrids {
    AssocGrids {
        grids: ASSOCS
            .iter()
            .map(|&a| SpeedSizeGrid::compute(traces, a))
            .collect(),
    }
}

/// [`run`] on a worker pool: each per-associativity grid is computed with
/// [`SpeedSizeGrid::compute_jobs`] (`jobs == 0` = available parallelism).
pub fn run_jobs(traces: &TraceSet, jobs: usize) -> AssocGrids {
    AssocGrids {
        grids: ASSOCS
            .iter()
            .map(|&a| SpeedSizeGrid::compute_jobs(traces, a, jobs))
            .collect(),
    }
}

/// Computes grids over explicit axes (tests, quick modes).
pub fn run_over(
    traces: &TraceSet,
    assocs: &[u32],
    sizes_per_cache_kb: &[u64],
    cts_ns: &[u32],
) -> AssocGrids {
    AssocGrids {
        grids: assocs
            .iter()
            .map(|&a| SpeedSizeGrid::compute_over(traces, a, sizes_per_cache_kb, cts_ns))
            .collect(),
    }
}

/// Renders normalized execution times, one block per associativity.
pub fn render(g: &AssocGrids) -> String {
    let min = g.min_time();
    let mut out = String::from("Figure 4-2: execution time vs size, associativity, cycle time\n");
    for grid in &g.grids {
        out.push_str(&format!("\nset size {}:\n", grid.assoc));
        let mut headers = vec!["Total L1".to_string()];
        headers.extend(grid.cts_ns.iter().map(|ct| format!("{ct}ns")));
        let mut t = Table::new(headers);
        for (i, &kb) in grid.sizes_total_kb.iter().enumerate() {
            let mut row = vec![format!("{kb}KB")];
            row.extend(
                grid.time_per_ref[i]
                    .iter()
                    .map(|&v| format!("{:.3}", v / min)),
            );
            t.row(row);
        }
        out.push_str(&t.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_helps_small_caches_more() {
        let traces = TraceSet::quick();
        let g = run_over(&traces, &[1, 2], &[2, 256], &[40]);
        let dm = g.for_assoc(1).unwrap();
        let sa = g.for_assoc(2).unwrap();
        let improvement_small = 1.0 - sa.time_per_ref[0][0] / dm.time_per_ref[0][0];
        let improvement_large = 1.0 - sa.time_per_ref[1][0] / dm.time_per_ref[1][0];
        assert!(
            improvement_small > improvement_large,
            "small-cache gain {improvement_small} must exceed large-cache gain {improvement_large}"
        );
        assert!(g.for_assoc(4).is_none());
        assert!(render(&g).contains("set size 2"));
    }
}
