//! Two-level-hierarchy integration tests: the section-6 mechanisms.

use cachetime::{simulate, LevelTwoConfig, SystemConfig};
use cachetime_cache::{CacheConfig, WriteAllocate};
use cachetime_trace::catalog;
use cachetime_types::{BlockWords, CacheSize, CycleTime};

const SCALE: f64 = 0.03;

fn l1(kb: u64) -> CacheConfig {
    CacheConfig::builder(CacheSize::from_kib(kb).expect("pow2"))
        .build()
        .expect("valid cache")
}

fn l2(kb: u64, block_words: u32) -> LevelTwoConfig {
    LevelTwoConfig::new(
        CacheConfig::builder(CacheSize::from_kib(kb).expect("pow2"))
            .block(BlockWords::new(block_words).expect("pow2"))
            .build()
            .expect("valid L2"),
    )
}

#[test]
fn l2_reduces_the_effective_miss_penalty() {
    let trace = catalog::savec(SCALE).generate();
    let alone = SystemConfig::builder()
        .l1_both(l1(4))
        .build()
        .expect("valid");
    let backed = SystemConfig::builder()
        .l1_both(l1(4))
        .l2(l2(512, 16))
        .build()
        .expect("valid");
    let ra = simulate(&alone, &trace);
    let rb = simulate(&backed, &trace);
    // Identical L1 organization => identical L1 miss behaviour...
    assert_eq!(ra.l1d.read_misses, rb.l1d.read_misses);
    assert_eq!(ra.l1i.read_misses, rb.l1i.read_misses);
    // ...but a much cheaper average miss.
    assert!(rb.cycles < ra.cycles);
}

#[test]
fn bigger_l2_filters_more_memory_traffic() {
    let trace = catalog::rd2n7(SCALE).generate();
    let mut reads = Vec::new();
    for kb in [128u64, 512, 2048] {
        let config = SystemConfig::builder()
            .l1_both(l1(4))
            .l2(l2(kb, 16))
            .build()
            .expect("valid");
        reads.push(simulate(&config, &trace).mem.reads);
    }
    assert!(
        reads[0] >= reads[1] && reads[1] >= reads[2],
        "memory reads must fall with L2 size: {reads:?}"
    );
}

#[test]
fn l2_latency_matters() {
    let trace = catalog::mu3(SCALE).generate();
    let mut times = Vec::new();
    for read_cycles in [2u64, 6, 12] {
        let mut cfg = l2(512, 16);
        cfg.read_cycles = read_cycles;
        let config = SystemConfig::builder()
            .l1_both(l1(4))
            .l2(cfg)
            .build()
            .expect("valid");
        times.push(simulate(&config, &trace).cycles.0);
    }
    assert!(
        times[0] < times[1] && times[1] < times[2],
        "slower L2 must cost cycles: {times:?}"
    );
}

#[test]
fn fast_clock_small_l1_plus_l2_beats_slow_clock_big_l1() {
    // The punchline of section 6: with a short miss penalty, the small
    // fast machine wins again.
    let trace = catalog::mu6(SCALE).generate();
    let small_fast = SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(24).expect("nonzero"))
        .l1_both(l1(8))
        .l2(l2(512, 16))
        .build()
        .expect("valid");
    let big_slow = SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(48).expect("nonzero"))
        .l1_both(l1(64))
        .build()
        .expect("valid");
    let rf = simulate(&small_fast, &trace);
    let rs = simulate(&big_slow, &trace);
    assert!(
        rf.exec_time() < rs.exec_time(),
        "24ns/8KB+L2 ({}) must beat 48ns/64KB ({})",
        rf.exec_time(),
        rs.exec_time()
    );
}

#[test]
fn three_level_hierarchy_filters_progressively() {
    // rd2n4's working set overwhelms a 16KB L2 but fits a 512KB L3; with a
    // slow (420ns) memory the filtered misses are expensive enough that
    // the L3 detour pays.
    let trace = catalog::rd2n4(0.1).generate();
    let slow_memory = cachetime_mem::MemoryConfig::builder()
        .read_op(cachetime_types::Nanos(420))
        .build()
        .expect("valid memory");
    let fast_l2 = {
        let mut c = l2(16, 16);
        c.read_cycles = 2;
        c
    };
    let two = SystemConfig::builder()
        .l1_both(l1(2))
        .l2(fast_l2)
        .memory(slow_memory)
        .build()
        .expect("valid");
    let three = SystemConfig::builder()
        .l1_both(l1(2))
        .l2(fast_l2)
        .l3({
            let mut c = l2(512, 32);
            c.read_cycles = 5;
            c
        })
        .memory(slow_memory)
        .build()
        .expect("valid");
    let r2 = simulate(&two, &trace);
    let r3 = simulate(&three, &trace);
    let l3s = r3.l3.expect("L3 stats");
    assert!(r3.l2.is_some());
    assert!(l3s.reads > 0, "L2 misses must reach the L3");
    assert!(
        l3s.read_misses < l3s.reads,
        "a 2MB L3 must catch something: {l3s:?}"
    );
    // The L3 filters memory reads relative to the two-level machine.
    assert!(
        r3.mem.reads < r2.mem.reads,
        "L3 must reduce memory traffic: {} vs {}",
        r3.mem.reads,
        r2.mem.reads
    );
    // And with a small L2 behind a small L1, the big L3 buys time overall.
    assert!(
        r3.exec_time() < r2.exec_time(),
        "three-level {} vs two-level {}",
        r3.exec_time(),
        r2.exec_time()
    );
}

#[test]
fn single_issue_costs_cycles() {
    let trace = catalog::mu3(SCALE).generate();
    let dual = SystemConfig::builder().build().expect("valid");
    let single = SystemConfig::builder()
        .dual_issue(false)
        .build()
        .expect("valid");
    let rd = simulate(&dual, &trace);
    let rs = simulate(&single, &trace);
    assert!(
        rs.cycles > rd.cycles,
        "serializing couplet halves must cost cycles: {} vs {}",
        rs.cycles,
        rd.cycles
    );
    // Same organization, same misses.
    assert_eq!(rd.l1d.read_misses, rs.l1d.read_misses);
}

#[test]
fn latency_histogram_tracks_couplets() {
    let trace = catalog::savec(SCALE).generate();
    let r = simulate(&SystemConfig::builder().build().expect("valid"), &trace);
    assert_eq!(r.latency.count(), r.couplets);
    // On a 64KB machine most couplets are 1-3 cycle hits.
    assert!(
        r.latency.fraction_within(4) > 0.7,
        "hit-dominated: {}",
        r.latency
    );
    // But misses exist: something lands at 8+ cycles.
    assert!(r.latency.fraction_within(1024) > r.latency.fraction_within(8));
}

#[test]
fn write_allocate_l2_also_works() {
    // The L2 write path has a second policy variant; exercise it end to
    // end for basic sanity.
    let trace = catalog::savec(SCALE).generate();
    let l2cache = CacheConfig::builder(CacheSize::from_kib(256).expect("pow2"))
        .block(BlockWords::new(16).expect("pow2"))
        .write_allocate(WriteAllocate::Allocate)
        .build()
        .expect("valid L2");
    let config = SystemConfig::builder()
        .l1_both(l1(4))
        .l2(LevelTwoConfig::new(l2cache))
        .build()
        .expect("valid");
    let r = simulate(&config, &trace);
    let l2s = r.l2.expect("stats");
    assert!(l2s.writes > 0, "write-backs and write-arounds reach the L2");
    assert!(r.cycles.0 > 0);
}
