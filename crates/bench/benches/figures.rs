//! One Criterion bench per table and figure of the paper.
//!
//! Each bench executes the same code path the `repro` binary uses to
//! regenerate that table/figure, over small-scale traces, and prints the
//! rendered result once so a bench run doubles as a smoke reproduction.
//!
//! Run a single figure with e.g.:
//! `cargo bench -p cachetime-bench --bench figures -- fig3-1`

use cachetime_bench::traces;
use cachetime_experiments::runner::SpeedSizeGrid;
use cachetime_experiments::{
    fig3_1, fig3_2, fig3_3, fig3_4, fig4_1, fig4_2, fig4_345, fig5_1, fig5_2, fig5_3, fig5_4, sec6,
    table1, table2, table3,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

// Reduced axes: benches must iterate in seconds, not minutes.
const SIZES: [u64; 4] = [2, 16, 128, 1024];
const CTS: [u32; 5] = [20, 36, 52, 56, 68];
const BLOCKS: [u32; 5] = [2, 4, 8, 32, 128];

fn bench_table1(c: &mut Criterion) {
    println!("{}", table1::render(&table1::run(traces())));
    c.bench_function("table1", |b| b.iter(|| black_box(table1::run(traces()))));
}

fn bench_table2(c: &mut Criterion) {
    println!("{}", table2::render(&table2::run()));
    c.bench_function("table2", |b| b.iter(|| black_box(table2::run())));
}

fn bench_fig3_1(c: &mut Criterion) {
    println!("{}", fig3_1::render(&fig3_1::run(traces())));
    c.bench_function("fig3_1", |b| b.iter(|| black_box(fig3_1::run(traces()))));
}

fn grid() -> SpeedSizeGrid {
    SpeedSizeGrid::compute_over(traces(), 1, &SIZES, &CTS)
}

fn bench_fig3_2(c: &mut Criterion) {
    println!("{}", fig3_2::render(&fig3_2::run(&grid())));
    c.bench_function("fig3_2", |b| b.iter(|| black_box(fig3_2::run(&grid()))));
}

fn bench_fig3_3(c: &mut Criterion) {
    println!("{}", fig3_3::render(&fig3_3::run(&grid())));
    c.bench_function("fig3_3", |b| b.iter(|| black_box(fig3_3::run(&grid()))));
}

fn bench_fig3_4(c: &mut Criterion) {
    println!("{}", fig3_4::render(&fig3_4::run(&grid(), 16)));
    c.bench_function("fig3_4", |b| b.iter(|| black_box(fig3_4::run(&grid(), 16))));
}

fn bench_fig4_1(c: &mut Criterion) {
    let run = || fig4_1::run_over(traces(), &SIZES, &[1, 2, 4, 8]);
    println!("{}", fig4_1::render(&run()));
    c.bench_function("fig4_1", |b| b.iter(|| black_box(run())));
}

fn assoc_grids() -> fig4_2::AssocGrids {
    fig4_2::run_over(traces(), &[1, 2, 4, 8], &SIZES, &CTS)
}

fn bench_fig4_2(c: &mut Criterion) {
    println!("{}", fig4_2::render(&assoc_grids()));
    c.bench_function("fig4_2", |b| b.iter(|| black_box(assoc_grids())));
}

fn bench_fig4_345(c: &mut Criterion) {
    let grids = assoc_grids();
    for ways in [2, 4, 8] {
        println!("{}", fig4_345::render(&fig4_345::run(&grids, ways)));
    }
    c.bench_function("fig4_345", |b| {
        b.iter(|| {
            for ways in [2, 4, 8] {
                black_box(fig4_345::run(&grids, ways));
            }
        })
    });
}

fn bench_fig5_1(c: &mut Criterion) {
    let run = || fig5_1::run_over(traces(), &BLOCKS);
    println!("{}", fig5_1::render(&run()));
    c.bench_function("fig5_1", |b| b.iter(|| black_box(run())));
}

fn fig5_curves() -> Vec<fig5_2::Curve> {
    fig5_2::run_over(
        traces(),
        &[100, 260, 420],
        &fig5_2::TRANSFER_RATES[1..4],
        &BLOCKS,
    )
}

fn bench_fig5_2(c: &mut Criterion) {
    println!("{}", fig5_2::render(&fig5_curves()));
    c.bench_function("fig5_2", |b| b.iter(|| black_box(fig5_curves())));
}

fn bench_fig5_3(c: &mut Criterion) {
    let curves = fig5_curves();
    println!("{}", fig5_3::render(&fig5_3::run(&curves)));
    c.bench_function("fig5_3", |b| b.iter(|| black_box(fig5_3::run(&curves))));
}

fn bench_fig5_4(c: &mut Criterion) {
    let minima = fig5_3::run(&fig5_curves());
    println!("{}", fig5_4::render(&fig5_4::run(&minima)));
    c.bench_function("fig5_4", |b| b.iter(|| black_box(fig5_4::run(&minima))));
}

fn bench_table3(c: &mut Criterion) {
    let g = grid();
    let rows = table3::run(&g);
    println!("{}", table3::render(&g, &rows, &[4, 32, 256]));
    c.bench_function("table3", |b| b.iter(|| black_box(table3::run(&g))));
}

fn bench_sec6(c: &mut Criterion) {
    let run = || sec6::run(traces(), 20, &[2, 8, 32, 128]);
    let (without, with) = run();
    println!("{}", sec6::render(&without, &with));
    c.bench_function("sec6", |b| b.iter(|| black_box(run())));
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_fig3_1, bench_fig3_2, bench_fig3_3,
        bench_fig3_4, bench_fig4_1, bench_fig4_2, bench_fig4_345, bench_fig5_1,
        bench_fig5_2, bench_fig5_3, bench_fig5_4, bench_table3, bench_sec6
}
criterion_main!(figures);
