//! Figure 4-1: read miss ratio versus size for set sizes 1, 2, 4, 8.
//!
//! "As the total cache size is being kept constant, a doubling in
//! associativity is accompanied by a halving of the number of sets.
//! Random replacement is used regardless of the set size. The change from
//! direct mapped to two way set associativity drops the miss ratio by
//! about 20% for caches up to about 256KB total."

use crate::runner::{run_config, TraceSet, ASSOCS, SIZES_PER_CACHE_KB};
use cachetime::SystemConfig;
use cachetime_analysis::table::Table;
use cachetime_cache::CacheConfig;
use cachetime_types::{Assoc, CacheSize};

/// Miss-ratio curves, one per associativity.
#[derive(Debug, Clone)]
pub struct MissRatios {
    /// Total L1 sizes (KB).
    pub sizes_total_kb: Vec<u64>,
    /// The set sizes swept.
    pub assocs: Vec<u32>,
    /// `miss_ratio[assoc][size]`.
    pub miss_ratio: Vec<Vec<f64>>,
}

impl MissRatios {
    /// The miss-ratio spread (Hill's term): relative improvement from the
    /// first associativity to the second at the given size index.
    pub fn spread(&self, from_assoc: usize, to_assoc: usize, size_idx: usize) -> f64 {
        1.0 - self.miss_ratio[to_assoc][size_idx] / self.miss_ratio[from_assoc][size_idx]
    }
}

/// Sweeps associativity × size at the default 40 ns clock (miss ratios are
/// organizational, so one clock suffices).
pub fn run(traces: &TraceSet) -> MissRatios {
    run_over(traces, &SIZES_PER_CACHE_KB, &ASSOCS)
}

/// Sweeps explicit axes.
pub fn run_over(traces: &TraceSet, sizes_per_cache_kb: &[u64], assocs: &[u32]) -> MissRatios {
    let mut miss_ratio = Vec::new();
    for &ways in assocs {
        let mut row = Vec::new();
        for &kb in sizes_per_cache_kb {
            let l1 = CacheConfig::builder(CacheSize::from_kib(kb).expect("power of two"))
                .assoc(Assoc::new(ways).expect("power of two"))
                .build()
                .expect("valid cache");
            let config = SystemConfig::builder()
                .l1_both(l1)
                .build()
                .expect("valid system");
            row.push(run_config(&config, traces).read_miss_ratio);
        }
        miss_ratio.push(row);
    }
    MissRatios {
        sizes_total_kb: sizes_per_cache_kb.iter().map(|&kb| 2 * kb).collect(),
        assocs: assocs.to_vec(),
        miss_ratio,
    }
}

/// Renders the curves.
pub fn render(m: &MissRatios) -> String {
    let mut headers = vec!["Total L1".to_string()];
    headers.extend(m.assocs.iter().map(|a| format!("{a}-way MR %")));
    headers.push("DM->2way spread %".into());
    let mut t = Table::new(headers);
    for (j, &kb) in m.sizes_total_kb.iter().enumerate() {
        let mut row = vec![format!("{kb}KB")];
        row.extend(
            m.miss_ratio
                .iter()
                .map(|curve| format!("{:.3}", 100.0 * curve[j])),
        );
        row.push(if m.assocs.len() > 1 {
            format!("{:.1}", 100.0 * m.spread(0, 1, j))
        } else {
            "-".into()
        });
        t.row(row);
    }
    format!("Figure 4-1: read miss ratio vs associativity\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_reduces_misses_with_diminishing_returns() {
        let traces = TraceSet::quick();
        let m = run_over(&traces, &[2, 16], &[1, 2, 4]);
        for j in 0..2 {
            assert!(
                m.miss_ratio[0][j] > m.miss_ratio[1][j],
                "2-way must beat direct mapped at size index {j}"
            );
            let dm_to_2 = m.spread(0, 1, j);
            let two_to_4 = m.spread(1, 2, j);
            assert!(dm_to_2 > 0.0);
            assert!(
                two_to_4 < dm_to_2 + 0.05,
                "spread must diminish: {dm_to_2} then {two_to_4}"
            );
        }
        assert!(render(&m).contains("2-way"));
    }
}
