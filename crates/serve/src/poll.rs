//! A thin, zero-dependency readiness API over Linux `epoll`.
//!
//! The workspace's offline-build invariant rules out `libc`, `mio`, and
//! every async runtime, so the three syscalls the event loop needs —
//! `epoll_create1`, `epoll_ctl`, `epoll_pwait` — are invoked directly
//! with inline assembly. This is the only module in the crate allowed to
//! use `unsafe` (the crate root is `#![deny(unsafe_code)]`), and the
//! unsafety is confined to the raw syscall shims; everything above them
//! is a safe, owned-fd API:
//!
//! * [`Poller::new`] creates the epoll instance (`CLOEXEC`).
//! * [`Poller::add`]/[`modify`](Poller::modify)/[`remove`](Poller::remove)
//!   manage per-fd [`Interest`], each fd tagged with a caller-chosen
//!   `u64` token that comes back in its [`Event`]s.
//! * [`Poller::wait`] blocks (optionally bounded) and fills a buffer of
//!   [`Event`]s. `EINTR` is retried internally with the remaining
//!   timeout, so callers never observe it.
//!
//! Registration is **level-triggered** (the epoll default): a readable
//! fd keeps reporting readable until drained, which lets the event loop
//! process a bounded amount per wake-up without losing edges. Error and
//! hang-up conditions (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`) are always
//! reported by the kernel regardless of interest and are surfaced as
//! `readable` + `writable` + [`Event::hangup`], so the owning state
//! machine discovers them through its normal read/write path.

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("cachetime-serve's raw epoll shim supports x86_64 and aarch64 only");

use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x8_0000;

const EINTR: i32 = 4;

/// Events reported per [`Poller::wait`] call; more simply arrive on the
/// next call (level-triggered registration re-reports pending state).
const WAIT_BATCH: usize = 64;

#[cfg(target_arch = "x86_64")]
mod sys {
    pub const EPOLL_CREATE1: usize = 291;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const CLOSE: usize = 3;

    /// `struct epoll_event`; packed on x86_64 only (kernel ABI quirk).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[allow(unsafe_code)]
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the caller passes a valid syscall number and arguments;
        // rcx/r11 are clobbered by the `syscall` instruction itself.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(target_arch = "aarch64")]
mod sys {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;

    /// `struct epoll_event`; natural alignment off x86_64 (4 bytes of
    /// padding between `events` and `data`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[allow(unsafe_code)]
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the caller passes a valid syscall number and arguments;
        // the kernel preserves all registers except x0.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                in("x5") a6,
                options(nostack),
            );
        }
        ret
    }
}

/// Converts a raw syscall return into `io::Result` (negative errno → Err).
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

#[allow(unsafe_code)]
fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
    // SAFETY: every call site passes either valid fds/flags or pointers to
    // live stack buffers that outlive the call; the kernel copies, never
    // retains, the pointed-to memory.
    unsafe { sys::syscall6(nr, a1, a2, a3, a4, a5, a6) }
}

/// Which readiness conditions a registration asks for. Error/hang-up are
/// always reported on top, whatever the interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd has bytes to read (or the peer half-closed).
    pub readable: bool,
    /// Report when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable — or in an error/hang-up state a read will
    /// surface (`EPOLLERR`/`EPOLLHUP` imply both directions here).
    pub readable: bool,
    /// The fd is writable — or errored, which a write will surface.
    pub writable: bool,
    /// The peer hung up or the fd errored; drain, then expect EOF/error.
    pub hangup: bool,
}

/// An owned epoll instance. See the [module docs](self).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (`CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The OS's — fd exhaustion, mostly.
    pub fn new() -> io::Result<Poller> {
        let fd = check(syscall6(sys::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0))?;
        Ok(Poller { epfd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, event: Option<sys::EpollEvent>) -> io::Result<()> {
        // DEL ignores the event, but pre-2.6.9 kernels demanded a non-null
        // pointer, so one is always passed.
        let ev = event.unwrap_or(sys::EpollEvent { events: 0, data: 0 });
        check(syscall6(
            sys::EPOLL_CTL,
            self.epfd as usize,
            op,
            fd as usize,
            (&ev as *const sys::EpollEvent) as usize,
            0,
            0,
        ))
        .map(|_| ())
    }

    /// Registers `fd` with `interest`, tagged `token` (level-triggered).
    ///
    /// # Errors
    ///
    /// `EEXIST` if already registered (use [`modify`](Self::modify)), or
    /// the OS's.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(sys::EpollEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Rewrites an existing registration's interest (and token).
    ///
    /// # Errors
    ///
    /// `ENOENT` if `fd` is not registered, or the OS's.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(sys::EpollEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Drops `fd`'s registration; pending events for it are discarded.
    ///
    /// # Errors
    ///
    /// `ENOENT` if `fd` is not registered, or the OS's.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, replacing `out`'s contents with the events
    /// (at most [`WAIT_BATCH`] per call; level-triggering re-reports the
    /// rest). `None` blocks indefinitely; `Some(ZERO)` polls. `EINTR` is
    /// retried with the remaining budget.
    ///
    /// # Errors
    ///
    /// The OS's (never `EINTR`).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        loop {
            let timeout_ms: isize = match deadline {
                None => -1,
                Some(dl) => {
                    let left = dl.saturating_duration_since(Instant::now());
                    // Round up so a 0.4ms budget polls once with 1ms, not 0.
                    left.as_millis().min(i32::MAX as u128) as isize
                        + if left.subsec_nanos() % 1_000_000 != 0 { 1 } else { 0 }
                }
            };
            let ret = syscall6(
                sys::EPOLL_PWAIT,
                self.epfd as usize,
                buf.as_mut_ptr() as usize,
                WAIT_BATCH,
                timeout_ms as usize,
                0, // no sigmask
                0,
            );
            match check(ret) {
                Ok(n) => {
                    for raw in buf.iter().take(n) {
                        // Copy out of the (possibly packed) struct before
                        // touching fields.
                        let ev = *raw;
                        let bits = ev.events;
                        let err = bits & (EPOLLERR | EPOLLHUP) != 0;
                        out.push(Event {
                            token: ev.data,
                            readable: bits & (EPOLLIN | EPOLLRDHUP) != 0 || err,
                            writable: bits & EPOLLOUT != 0 || err,
                            hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                        });
                    }
                    return Ok(());
                }
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = check(syscall6(sys::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = pair();
        poller.add(rx.as_raw_fd(), 7, Interest::READABLE).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no bytes yet");

        tx.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].hangup);
    }

    #[test]
    fn level_triggering_re_reports_until_drained() {
        let poller = Poller::new().unwrap();
        let (mut tx, mut rx) = pair();
        poller.add(rx.as_raw_fd(), 1, Interest::READABLE).unwrap();
        tx.write_all(b"xy").unwrap();

        let mut events = Vec::new();
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "undrained fd must re-report");
        }
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 2);
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "drained fd must go quiet");
    }

    #[test]
    fn modify_switches_interest_and_remove_silences() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = pair();
        // Write interest on an idle socket: immediately writable.
        poller.add(rx.as_raw_fd(), 2, Interest::WRITABLE).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // Switch to read interest: quiet until bytes arrive.
        poller.modify(rx.as_raw_fd(), 3, Interest::READABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        tx.write_all(b"z").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events[0].token, 3, "modify must retag the fd");

        poller.remove(rx.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "removed fd must not report");
    }

    #[test]
    fn peer_hangup_reports_as_readable_hangup() {
        let poller = Poller::new().unwrap();
        let (tx, rx) = pair();
        poller.add(rx.as_raw_fd(), 9, Interest::READABLE).unwrap();
        drop(tx);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "EOF must be discoverable via read");
        assert!(events[0].hangup);
    }

    #[test]
    fn zero_timeout_polls_without_blocking() {
        let poller = Poller::new().unwrap();
        let (_tx, rx) = pair();
        poller.add(rx.as_raw_fd(), 1, Interest::READABLE).unwrap();
        let started = Instant::now();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() < Duration::from_millis(100));
    }
}
