//! Figure 5-1: miss ratios and execution time versus block size.
//!
//! "It shows the miss ratios and relative execution time of the default
//! organization (separate 64KB I and D caches) with a 260ns latency
//! memory. The best block size on the data side is 32W, and somewhat
//! greater than 64W on the instruction side … The block size that
//! optimizes system performance is significantly smaller than that which
//! minimizes the miss rate."

use crate::runner::{run_config, TraceSet, BLOCK_WORDS};
use cachetime::SystemConfig;
use cachetime_analysis::plot::Chart;
use cachetime_analysis::table::Table;
use cachetime_cache::CacheConfig;
use cachetime_mem::{MemoryConfig, TransferRate};
use cachetime_types::{BlockWords, CacheSize, Nanos};

/// One block-size sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Block size in words (both caches).
    pub block_words: u32,
    /// Instruction-fetch miss ratio.
    pub ifetch_miss_ratio: f64,
    /// Load miss ratio.
    pub load_miss_ratio: f64,
    /// Mean execution time per reference (ns).
    pub time_per_ref_ns: f64,
}

/// Sweeps the block size with the section-5 260 ns uniform-latency memory.
pub fn run(traces: &TraceSet) -> Vec<Point> {
    run_over(traces, &BLOCK_WORDS)
}

/// Sweeps explicit block sizes.
pub fn run_over(traces: &TraceSet, blocks: &[u32]) -> Vec<Point> {
    let memory = MemoryConfig::uniform_latency(Nanos(260), TransferRate::WordsPerCycle(1))
        .expect("valid memory");
    blocks
        .iter()
        .map(|&bw| {
            let l1 = CacheConfig::builder(CacheSize::from_kib(64).expect("power of two"))
                .block(BlockWords::new(bw).expect("power of two"))
                .build()
                .expect("valid cache");
            let config = SystemConfig::builder()
                .l1_both(l1)
                .memory(memory)
                .build()
                .expect("valid system");
            let agg = run_config(&config, traces);
            Point {
                block_words: bw,
                ifetch_miss_ratio: agg.ifetch_miss_ratio,
                load_miss_ratio: agg.load_miss_ratio,
                time_per_ref_ns: agg.time_per_ref_ns,
            }
        })
        .collect()
}

/// The block size minimizing a metric among the sampled points.
pub fn argmin_block(points: &[Point], metric: impl Fn(&Point) -> f64) -> u32 {
    points
        .iter()
        .min_by(|a, b| metric(a).partial_cmp(&metric(b)).expect("no NaNs"))
        .expect("nonempty sweep")
        .block_words
}

/// Renders the figure's three curves.
pub fn render(points: &[Point]) -> String {
    let base = points
        .iter()
        .map(|p| p.time_per_ref_ns)
        .fold(f64::INFINITY, f64::min);
    let mut t = Table::new(["Block", "IFetch MR %", "Load MR %", "Relative exec time"]);
    for p in points {
        t.row([
            format!("{}W", p.block_words),
            format!("{:.3}", 100.0 * p.ifetch_miss_ratio),
            format!("{:.3}", 100.0 * p.load_miss_ratio),
            format!("{:.3}", p.time_per_ref_ns / base),
        ]);
    }
    let mut chart = Chart::new(56, 12)
        .log_x()
        .labels("block size (words)", "relative exec time");
    chart.series(
        "exec",
        points
            .iter()
            .map(|p| (p.block_words as f64, p.time_per_ref_ns / base))
            .collect(),
    );
    format!(
        "Figure 5-1: miss ratios and execution time vs block size (64KB caches, 260ns memory)\n\
         {t}miss-ratio-optimal blocks: I={}W D={}W; performance-optimal block: {}W\n\n{}",
        argmin_block(points, |p| p.ifetch_miss_ratio),
        argmin_block(points, |p| p.load_miss_ratio),
        argmin_block(points, |p| p.time_per_ref_ns),
        chart.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_optimum_below_miss_rate_optimum() {
        let traces = TraceSet::quick();
        let pts = run_over(&traces, &[1, 2, 4, 8, 16, 32, 64]);
        let perf_opt = argmin_block(&pts, |p| p.time_per_ref_ns);
        let miss_opt_i = argmin_block(&pts, |p| p.ifetch_miss_ratio);
        assert!(
            perf_opt <= miss_opt_i,
            "performance optimum {perf_opt}W must not exceed the miss-rate optimum {miss_opt_i}W"
        );
        // The paper's central section-5 claim: small blocks win on time.
        assert!(
            (2..=16).contains(&perf_opt),
            "performance-optimal block {perf_opt}W outside the paper's 4-8W band (±1 step)"
        );
        // Instruction fetches keep benefiting from bigger blocks longer
        // than the time metric does.
        assert!(miss_opt_i >= 8, "instruction miss optimum {miss_opt_i}W");
        assert!(render(&pts).contains("performance-optimal"));
    }
}
