//! The paper's headline scenario (section 3): should you build a 40 ns
//! machine with 16 KB of cache per side, or slow the clock to 50 ns for
//! 64 KB per side?
//!
//! "The slope of the constant performance curve at the (16KB, 40ns) design
//! point is 16ns per quadrupling, greater than the 10ns difference in the
//! RAM speeds. As a result running the CPU at 50ns with a larger cache
//! improves the overall performance."
//!
//! ```text
//! cargo run --release -p cachetime-experiments --example speed_size_tradeoff
//! ```

use cachetime::SystemConfig;
use cachetime_cache::CacheConfig;
use cachetime_experiments::runner::{run_config, TraceSet};
use cachetime_types::{CacheSize, ConfigError, CycleTime};

fn machine(kb: u64, ct_ns: u32) -> Result<SystemConfig, ConfigError> {
    let l1 = CacheConfig::builder(CacheSize::from_kib(kb)?).build()?;
    SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(ct_ns)?)
        .l1_both(l1)
        .build()
}

fn main() -> Result<(), ConfigError> {
    println!("generating the eight Table-1 workloads...");
    let traces = TraceSet::generate(0.15);

    // The paper's worked example: 15ns RAMs give a 40ns machine with 8KB a
    // side; the next size up runs at 25ns, forcing a 50ns clock but 32KB a
    // side. Same chip count, same board.
    let candidates = [
        ("8KB/side  @ 40ns (fast small RAMs)", machine(8, 40)?),
        ("32KB/side @ 50ns (slow big RAMs)", machine(32, 50)?),
        ("16KB/side @ 40ns", machine(16, 40)?),
        ("64KB/side @ 50ns", machine(64, 50)?),
    ];

    println!(
        "\n{:<38} {:>12} {:>12} {:>12}",
        "machine", "cycles/ref", "ns/ref", "read MR %"
    );
    for (name, config) in &candidates {
        let agg = run_config(config, &traces);
        println!(
            "{:<38} {:>12.3} {:>12.1} {:>12.2}",
            name,
            agg.cycles_per_ref,
            agg.time_per_ref_ns,
            100.0 * agg.read_miss_ratio
        );
    }

    let small = run_config(&candidates[0].1, &traces).time_per_ref_ns;
    let big = run_config(&candidates[1].1, &traces).time_per_ref_ns;
    let gain = 100.0 * (1.0 - big / small);
    println!(
        "\nthe 50ns/32KB machine is {gain:.1}% {} than the 40ns/8KB machine",
        if gain >= 0.0 { "faster" } else { "slower" }
    );
    println!("(the paper found 7.3% for its 16KB->64KB-total version of this swap)");
    Ok(())
}
