//! Simulation results and derived metrics.

use cachetime_cache::CacheStats;
use cachetime_mem::MemStats;
use cachetime_mmu::MmuStats;
use cachetime_types::{CycleTime, Cycles, Nanos};
use std::fmt;

/// Warm-window statistics of one simulation run.
///
/// The *primary* metric, per the paper, is execution time — cycle count ×
/// cycle time ([`SimResult::exec_time`]). The classic time-independent
/// metrics (miss ratios, traffic ratios) are derived from the embedded
/// per-component statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// The clock the machine ran at.
    pub cycle_time: CycleTime,
    /// Cycles consumed by the measured window.
    pub cycles: Cycles,
    /// References in the measured window.
    pub refs: u64,
    /// Couplets (CPU issue slots) in the measured window.
    pub couplets: u64,
    /// Instruction-cache statistics (zeroes for a unified organization).
    pub l1i: CacheStats,
    /// Data-cache statistics (the unified cache's statistics when the
    /// organization is unified).
    pub l1d: CacheStats,
    /// Second-level statistics, if an L2 was configured.
    pub l2: Option<CacheStats>,
    /// Third-level statistics, if an L3 was configured.
    pub l3: Option<CacheStats>,
    /// Main-memory statistics.
    pub mem: MemStats,
    /// Translation statistics, if the hierarchy is physically addressed.
    pub mmu: Option<MmuStats>,
    /// Distribution of couplet (issue-slot) durations.
    pub latency: CoupletHistogram,
    /// Cycles beyond what an always-hitting machine would have spent — the
    /// memory hierarchy's contribution to execution time (the quantity the
    /// paper's section 6 wants kept proportionate).
    pub stall_cycles: Cycles,
}

impl SimResult {
    /// Total execution time of the measured window.
    pub fn exec_time(&self) -> Nanos {
        self.cycle_time.elapsed(self.cycles)
    }

    /// Cycles per reference — the paper's Table 3 metric ("since there are
    /// two caches, the value drops below one for large caches").
    pub fn cycles_per_ref(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.cycles.as_f64() / self.refs as f64
        }
    }

    /// Mean time per reference in nanoseconds.
    pub fn time_per_ref_ns(&self) -> f64 {
        self.cycles_per_ref() * self.cycle_time.ns() as f64
    }

    /// Memory-hierarchy stall cycles per reference (0 on an always-hitting
    /// machine).
    pub fn stalls_per_ref(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.stall_cycles.as_f64() / self.refs as f64
        }
    }

    /// Fraction of all cycles spent stalled on the hierarchy.
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles.0 == 0 {
            0.0
        } else {
            self.stall_cycles.as_f64() / self.cycles.as_f64()
        }
    }

    /// Combined L1 read miss ratio: read misses per read, over both caches
    /// (the paper's miss-ratio definition).
    pub fn read_miss_ratio(&self) -> f64 {
        let reads = self.l1i.reads + self.l1d.reads;
        let misses = self.l1i.read_misses + self.l1d.read_misses;
        if reads == 0 {
            0.0
        } else {
            misses as f64 / reads as f64
        }
    }

    /// Instruction-fetch miss ratio.
    pub fn ifetch_miss_ratio(&self) -> f64 {
        self.l1i.read_miss_ratio()
    }

    /// Data-read (load) miss ratio.
    pub fn load_miss_ratio(&self) -> f64 {
        self.l1d.read_miss_ratio()
    }

    /// Words fetched from below per reference.
    pub fn read_traffic_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            (self.l1i.fill_words + self.l1d.fill_words) as f64 / self.refs as f64
        }
    }

    /// The larger write-traffic ratio: all words of dirty victim blocks
    /// (plus write-around words), per reference.
    pub fn write_traffic_ratio_block(&self) -> f64 {
        self.l1d.write_traffic_ratio_block(self.refs)
            + self.l1i.write_traffic_ratio_block(self.refs)
    }

    /// The smaller write-traffic ratio: only dirty words (plus write-around
    /// words), per reference.
    pub fn write_traffic_ratio_dirty(&self) -> f64 {
        self.l1d.write_traffic_ratio_dirty(self.refs)
            + self.l1i.write_traffic_ratio_dirty(self.refs)
    }
}

/// A log₂-bucketed histogram of couplet durations in cycles.
///
/// Bucket `i` counts couplets lasting `[2^i, 2^(i+1))` cycles: bucket 0 is
/// the single-cycle hits, bucket 1 the 2–3-cycle write hits, and the miss
/// penalties land in buckets 3–5. One of the "about 400 unique statistics"
/// the paper's simulator gathered per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoupletHistogram {
    buckets: [u64; 16],
}

impl CoupletHistogram {
    /// Records one couplet of `cycles` duration.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on a zero duration — every couplet costs at
    /// least a cycle.
    pub fn record(&mut self, cycles: u64) {
        self.record_n(cycles, 1);
    }

    /// Records `n` couplets of identical `cycles` duration in one step
    /// (the timing replay collapses runs of all-hit couplets this way).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on a zero duration.
    pub fn record_n(&mut self, cycles: u64, n: u64) {
        debug_assert!(cycles > 0, "zero-length couplet");
        self.buckets[Self::bucket_of(cycles)] += n;
    }

    /// The bucket index a couplet of `cycles` duration lands in.
    #[inline]
    pub fn bucket_of(cycles: u64) -> usize {
        (63 - cycles.max(1).leading_zeros() as usize).min(15)
    }

    /// Adds `n` couplets directly to bucket `index` (see
    /// [`bucket_of`](Self::bucket_of)) — for callers that have already
    /// resolved the bucket of a repeated duration.
    #[inline]
    pub fn add_to_bucket(&mut self, index: usize, n: u64) {
        self.buckets[index] += n;
    }

    /// Total couplets recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Count in bucket `i` (durations in `[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Fraction of couplets that completed within `cycles` cycles
    /// (bucket-granular: rounds the threshold down to a power of two).
    pub fn fraction_within(&self, cycles: u64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let cutoff = (63 - cycles.max(1).leading_zeros() as usize).min(15);
        let within: u64 = self.buckets[..cutoff].iter().sum();
        within as f64 / total as f64
    }
}

impl fmt::Display for CoupletHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "couplet cycles:")?;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                write!(f, " [{}..{}):{c}", 1u64 << i, 1u64 << (i + 1))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} over {} refs ({:.3} cycles/ref, read miss {:.2}%)",
            self.exec_time(),
            self.refs,
            self.cycles_per_ref(),
            100.0 * self.read_miss_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> SimResult {
        SimResult {
            cycle_time: CycleTime::from_ns(40).unwrap(),
            cycles: Cycles(1000),
            refs: 800,
            couplets: 600,
            l1i: CacheStats {
                reads: 500,
                read_misses: 25,
                fills: 25,
                fill_words: 100,
                ..CacheStats::default()
            },
            l1d: CacheStats {
                reads: 200,
                read_misses: 20,
                writes: 100,
                fills: 20,
                fill_words: 80,
                dirty_evictions: 5,
                write_back_words: 20,
                dirty_words_written_back: 9,
                ..CacheStats::default()
            },
            l2: None,
            l3: None,
            mem: MemStats::default(),
            mmu: None,
            latency: CoupletHistogram::default(),
            stall_cycles: Cycles(250),
        }
    }

    #[test]
    fn exec_time_is_cycles_times_cycle_time() {
        assert_eq!(mk().exec_time(), Nanos(40_000));
    }

    #[test]
    fn cycles_per_ref() {
        assert!((mk().cycles_per_ref() - 1.25).abs() < 1e-12);
        assert!((mk().time_per_ref_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn miss_ratios_combine_both_caches() {
        let r = mk();
        assert!((r.read_miss_ratio() - 45.0 / 700.0).abs() < 1e-12);
        assert!((r.ifetch_miss_ratio() - 0.05).abs() < 1e-12);
        assert!((r.load_miss_ratio() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn traffic_ratios() {
        let r = mk();
        assert!((r.read_traffic_ratio() - 180.0 / 800.0).abs() < 1e-12);
        assert!((r.write_traffic_ratio_block() - 20.0 / 800.0).abs() < 1e-12);
        assert!((r.write_traffic_ratio_dirty() - 9.0 / 800.0).abs() < 1e-12);
        assert!(r.write_traffic_ratio_block() >= r.write_traffic_ratio_dirty());
    }

    #[test]
    fn zero_refs_are_safe() {
        let r = SimResult { refs: 0, ..mk() };
        assert_eq!(r.cycles_per_ref(), 0.0);
        assert_eq!(r.read_traffic_ratio(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = mk().to_string();
        assert!(s.contains("refs"));
        assert!(s.contains("cycles/ref"));
    }

    #[test]
    fn stall_metrics() {
        let r = mk();
        assert!((r.stalls_per_ref() - 250.0 / 800.0).abs() < 1e-12);
        assert!((r.stall_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = CoupletHistogram::default();
        h.record(1);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(11); // bucket 3: [8, 16)
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(3), 1);
        assert!((h.fraction_within(8) - 4.0 / 5.0).abs() < 1e-12);
        assert_eq!(h.fraction_within(1), 0.0);
        let s = h.to_string();
        assert!(s.contains("[1..2):2"));
    }

    #[test]
    fn histogram_saturates_at_the_top_bucket() {
        let mut h = CoupletHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.bucket(15), 1);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = CoupletHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.fraction_within(100), 0.0);
        assert_eq!(h.to_string(), "couplet cycles:");
    }
}
