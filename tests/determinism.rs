//! Full-stack determinism: trace generation and simulation are pure
//! functions of their seeds and configurations, byte for byte.

use cachetime::{simulate, SystemConfig};
use cachetime_cache::{CacheConfig, ReplacementPolicy};
use cachetime_trace::{catalog, ProcessParams, WorkloadSpec};
use cachetime_types::{Assoc, CacheSize};

#[test]
fn catalog_traces_are_reproducible() {
    for (a, b) in catalog::all(0.01).iter().zip(catalog::all(0.01).iter()) {
        let (ta, tb) = (a.generate(), b.generate());
        assert_eq!(ta.refs(), tb.refs(), "{}", ta.name());
        assert_eq!(ta.warm_start(), tb.warm_start());
    }
}

#[test]
fn simulation_results_are_reproducible() {
    let config = SystemConfig::paper_default().expect("valid config");
    let trace = catalog::mu6(0.02).generate();
    let a = simulate(&config, &trace);
    let b = simulate(&config, &trace);
    assert_eq!(a, b);
}

#[test]
fn random_replacement_is_seed_stable() {
    // Random replacement must not inject nondeterminism across runs.
    let l1 = CacheConfig::builder(CacheSize::from_kib(2).expect("pow2"))
        .assoc(Assoc::new(4).expect("pow2"))
        .replacement(ReplacementPolicy::Random)
        .build()
        .expect("valid cache");
    let config = SystemConfig::builder()
        .l1_both(l1)
        .build()
        .expect("valid system");
    let trace = catalog::rd1n3(0.02).generate();
    assert_eq!(simulate(&config, &trace), simulate(&config, &trace));
}

#[test]
fn seed_controls_the_workload() {
    let mut spec = WorkloadSpec {
        name: "seeded".into(),
        processes: vec![ProcessParams::vax_like(4096, 8192)],
        length: 20_000,
        warm_up: 1_000,
        mean_switch: 1_000.0,
        os_process: false,
        init_prefix: false,
        seed: 1,
    };
    let t1 = spec.generate();
    spec.seed = 2;
    let t2 = spec.generate();
    assert_ne!(t1.refs(), t2.refs(), "different seeds, different traces");
    spec.seed = 1;
    assert_eq!(t1.refs(), spec.generate().refs());
}

#[test]
fn scale_only_extends_the_trace_shape() {
    // Different scales give different lengths but identical structural
    // parameters — so experiments at different scales stay comparable.
    let small = catalog::mu3(0.01);
    let large = catalog::mu3(0.05);
    assert_eq!(small.processes, large.processes);
    assert_eq!(small.mean_switch, large.mean_switch);
    assert!(large.length > small.length);
}
