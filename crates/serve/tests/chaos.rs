//! Deterministic fault-injection storm: 8 chaos clients hammer one server
//! over the paper's 11×16 grid while a seeded [`FaultPlan`] injects delays
//! and panics inside the handlers. Afterwards the server must be fully
//! healthy — no deadlock (the test finishing *is* the assertion), no
//! stranded in-flight markers, `/healthz` back to `"ok"`, and every
//! surviving store entry still replaying bit-identically to a direct
//! `Simulator::run`.

use cachetime::Simulator;
use cachetime_serve::client::HttpClient;
use cachetime_serve::fault::{self, FaultPlan};
use cachetime_serve::{api, serve_with_app, App, Limits, ServerConfig};
use cachetime_testkit::derive_seed;
use cachetime_trace::catalog;
use cachetime_types::Json;
use std::sync::Arc;
use std::time::Duration;

const ROOT_SEED: u64 = 0xC5A0_5EED;
const THREADS: usize = 8;
const ROUNDS_PER_THREAD: usize = 44; // 8 × 44 = 352 rounds ≈ 2 grid passes
const SCALE: f64 = 0.002; // tiny workloads; chaos is about paths, not cycles

/// Silences the default panic message for *injected* panics only, so the
/// storm's deliberate unwinds don't bury real failures in the test log.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault panic"));
        if !injected {
            default_hook(info);
        }
    }));
}

#[test]
fn seeded_chaos_storm_leaves_the_server_healthy() {
    quiet_injected_panics();
    // Arm faults on every named point: short delays are common, panics
    // rare but guaranteed to occur at these budgets over 352 rounds.
    // serve.handle and serve.record mix delays with a budgeted ration of
    // panics (the transport converts those to recognizable 500s, which the
    // chaos client tolerates and counts). serve.write gets delays only: a
    // write-phase panic drops the connection with no response at all,
    // which would be indistinguishable from a server bug here — that path
    // has its own targeted test in robustness.rs.
    let faults = FaultPlan::seeded(ROOT_SEED)
        .arm_delay("serve.write", 0.05, Duration::from_millis(5), None)
        .arm_panic("serve.handle", 0.02, Some(4))
        .arm_panic("serve.record", 0.05, Some(4));
    let app = Arc::new(
        App::new(8 * 1024 * 1024) // tight budget: eviction churn under fire
            .with_limits(Limits {
                request_deadline: Duration::from_secs(30),
                max_inflight_recordings: 4,
            })
            .with_faults(faults),
    );
    let handle = serve_with_app(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            ..Default::default()
        },
        Arc::clone(&app),
    )
    .expect("bind an ephemeral port");
    let addr = handle.local_addr().to_string();

    let threads: Vec<_> = (0..THREADS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                fault::run_chaos_client(
                    &addr,
                    derive_seed(ROOT_SEED, i as u64),
                    SCALE,
                    ROUNDS_PER_THREAD,
                )
            })
        })
        .collect();
    let mut total = fault::ChaosReport::default();
    for t in threads {
        let report = t.join().expect("chaos thread must not panic");
        match report {
            Ok(r) => total.merge(&r),
            Err(e) => panic!("protocol violation under chaos: {e}"),
        }
    }
    assert_eq!(total.rounds as usize, THREADS * ROUNDS_PER_THREAD);
    assert!(total.ok > 0, "some traffic must succeed: {total:?}");
    assert!(total.faulted > 0, "the clients must actually misbehave: {total:?}");
    assert!(
        total.panicked >= 1,
        "the armed panics never surfaced as 500s — the run proved nothing: {total:?}"
    );
    assert!(
        app.faults().injected() >= 1,
        "fault plan never fired — the chaos run proved nothing"
    );

    // Recovery: health back to "ok" (no recordings stuck in flight) and
    // the request in-flight gauge drained.
    let mut client = HttpClient::connect(&addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200, "{body}");
        let health = Json::parse(&body).unwrap();
        if health.get("status").and_then(Json::as_str) == Some("ok") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "healthz stuck degraded after chaos: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_, body) = client.get("/v1/stats").unwrap();
    let stats = Json::parse(&body).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(
        store.get("recordings_in_flight").and_then(Json::as_u64),
        Some(0),
        "stranded in-flight marker after chaos: {body}"
    );

    // No corruption: a grid cell simulated through the chaos-scarred
    // store must still be bit-identical to a direct in-process run.
    let size_kib = fault::GRID_SIZES_KIB[3];
    let ct_ns = fault::GRID_CYCLE_TIMES_NS[5];
    let (status, body) = client
        .post("/v1/simulate", &fault::grid_body(size_kib, ct_ns, SCALE))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let served = Json::parse(&body).unwrap();
    let config_json = Json::parse(&fault::grid_body(size_kib, ct_ns, SCALE)).unwrap();
    let config = api::system_config_from_json(config_json.get("config")).unwrap();
    let direct = Simulator::new(&config).run(&catalog::mu3(SCALE).generate());
    assert_eq!(
        served.get("result"),
        Some(&api::sim_result_to_json(&direct)),
        "store corrupted: served result diverges from Simulator::run"
    );

    handle.shutdown();
    handle.join();
}

/// Chaos aimed at the event loop's own failure modes, which the grid storm
/// above cannot reach: idle keep-alive connections parked in the epoll set
/// while faults fire, clients that vanish without reading their response
/// (EPIPE on the loop thread, mid-write and mid-injected-delay), and
/// `serve.write` *panics* — which drop the connection with no response and
/// were deliberately excluded from the grid storm. Afterwards the server
/// must be healthy, the store bit-identical, and — the event-loop-specific
/// part — the connections that sat parked through the whole storm must
/// still work, never having been poisoned by a neighbor's chaos.
#[test]
fn event_loop_chaos_with_parked_and_vanishing_clients() {
    use std::io::{Read, Write};

    quiet_injected_panics();
    let faults = FaultPlan::seeded(ROOT_SEED ^ 0xE7E2)
        .arm_delay("serve.write", 0.25, Duration::from_millis(3), None)
        .arm_panic("serve.write", 0.04, Some(3))
        .arm_panic("serve.handle", 0.02, Some(3));
    let app = Arc::new(
        App::new(64 * 1024 * 1024)
            .with_limits(Limits {
                request_deadline: Duration::from_secs(30),
                max_inflight_recordings: 4,
            })
            .with_faults(faults),
    );
    let handle = serve_with_app(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..Default::default()
        },
        Arc::clone(&app),
    )
    .expect("bind an ephemeral port");
    let addr = handle.local_addr().to_string();

    // Warm one key so the storm has an inline (loop-thread) replay path to
    // hammer — the path a `serve.write` fault hits most often.
    let mut warm = HttpClient::connect(&addr).unwrap();
    let (status, body) = warm
        .post("/v1/simulate", &fault::grid_body(64, 40, SCALE))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let key = Json::parse(&body)
        .unwrap()
        .get("key")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Park keep-alive connections for the duration: each sends one request
    // up front (so the server has seen them alive), reads its response,
    // then goes silent inside the epoll set.
    let mut parked: Vec<std::net::TcpStream> = (0..8)
        .map(|_| {
            let mut s = std::net::TcpStream::connect(&addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut buf = [0u8; 1024];
            let n = s.read(&mut buf).unwrap();
            assert!(buf[..n].starts_with(b"HTTP/1.1 200"), "parked conn greeting");
            s
        })
        .collect();

    // Vanishers: request, then hang up without reading — or half-read and
    // hang up — so the loop eats EPIPE at every write phase, including
    // inside injected delays.
    let replay_body = format!(r#"{{"key": "{key}", "cycle_times_ns": [40, 20]}}"#);
    let vanishers: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let body = replay_body.clone();
            std::thread::spawn(move || {
                for round in 0..24usize {
                    let Ok(mut s) = std::net::TcpStream::connect(&addr) else {
                        continue;
                    };
                    let req = format!(
                        "POST /v1/replay HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    let _ = s.write_all(req.as_bytes());
                    if (i + round) % 2 == 0 {
                        let _ = s.set_read_timeout(Some(Duration::from_millis(20)));
                        let mut one = [0u8; 64];
                        let _ = s.read(&mut one); // half a response at most
                    }
                    drop(s); // vanish
                }
            })
        })
        .collect();

    // Well-behaved clients on the same warm key; a dropped connection
    // (injected write panic) is tolerated by reconnecting, anything else
    // must be a clean 200/500/503.
    let citizens: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let body = replay_body.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut round = 0usize;
                let mut client = HttpClient::connect(&addr).unwrap();
                while round < 40 {
                    round += 1;
                    match client.post("/v1/replay", &body) {
                        Ok((200, _)) => ok += 1,
                        Ok((500, body)) => {
                            assert!(body.contains("panic"), "unexplained 500: {body}")
                        }
                        Ok((503, _)) => {}
                        Ok((status, body)) => {
                            panic!("unexpected status {status} under chaos: {body}")
                        }
                        // Dropped mid-response by an injected write panic.
                        Err(_) => client = HttpClient::connect(&addr).unwrap(),
                    }
                }
                ok
            })
        })
        .collect();

    for v in vanishers {
        v.join().expect("vanisher threads must not panic");
    }
    let mut ok_total = 0;
    for c in citizens {
        ok_total += c.join().expect("citizen threads must not panic");
    }
    assert!(ok_total > 0, "some well-behaved traffic must succeed");
    assert!(app.faults().injected() >= 1, "fault plan never fired");

    // The parked connections sat in the epoll set through every fault.
    // They must still be live, fully functional connections.
    for s in &mut parked {
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).unwrap();
        assert!(
            buf[..n].starts_with(b"HTTP/1.1 200"),
            "a parked connection came out of the storm broken"
        );
    }

    // Recovery + no corruption, same bar as the grid storm: health green,
    // nothing stranded, and the chaos-scarred store still replays the warm
    // key bit-identically to a direct Simulator::run.
    let mut client = HttpClient::connect(&addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200, "{body}");
        if Json::parse(&body).unwrap().get("status").and_then(Json::as_str) == Some("ok") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "healthz stuck degraded after event-loop chaos: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (status, body) = client.post("/v1/replay", &replay_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let served = Json::parse(&body).unwrap();
    let results = served.get("results").and_then(Json::as_array).unwrap();
    let config_json = Json::parse(&fault::grid_body(64, 40, SCALE)).unwrap();
    let config = api::system_config_from_json(config_json.get("config")).unwrap();
    let direct = Simulator::new(&config).run(&catalog::mu3(SCALE).generate());
    assert_eq!(
        results[0],
        api::sim_result_to_json(&direct),
        "store corrupted: post-chaos replay diverges from Simulator::run"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn grid_bodies_parse_into_the_cells_they_name() {
    // The chaos client and the bit-identity check both trust grid_body to
    // describe the cell it names; pin that mapping here.
    for (i, &size_kib) in fault::GRID_SIZES_KIB.iter().enumerate() {
        let ct_ns = fault::GRID_CYCLE_TIMES_NS[i % fault::GRID_CYCLE_TIMES_NS.len()];
        let v = Json::parse(&fault::grid_body(size_kib, ct_ns, SCALE)).unwrap();
        let c = api::system_config_from_json(v.get("config")).unwrap();
        assert_eq!(u64::from(c.cycle_time().ns()), u64::from(ct_ns));
        assert_eq!(c.l1d().size().kib(), size_kib);
    }
}
