//! Section 6's conclusion, demonstrated: for a fast CPU, a second-level
//! cache shrinks the L1 miss penalty, which shrinks the optimal L1 size
//! and recovers the fast cycle time.
//!
//! ```text
//! cargo run --release -p cachetime-experiments --example multilevel_hierarchy
//! ```

use cachetime_experiments::runner::TraceSet;
use cachetime_experiments::sec6;

fn main() {
    println!("generating workloads...");
    let traces = TraceSet::generate(0.15);

    for ct in [20u32, 40] {
        let (without, with) = sec6::run(&traces, ct, &[2, 4, 8, 16, 32, 64, 128]);
        println!("\n{}", sec6::render(&without, &with));
        let best_without = without
            .time_per_ref_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let best_with = with
            .time_per_ref_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        println!(
            "best achievable at {ct}ns: {best_without:.2} ns/ref alone, \
             {best_with:.2} ns/ref with the L2 ({:+.1}%)",
            100.0 * (best_with / best_without - 1.0)
        );
    }
    println!(
        "\n\"as the disparity between main memory times and CPU cycle time continues \
         to grow, the only way to deliver a consistent proportion of the peak CPU \
         performance is through the use of a multilevel cache hierarchy\""
    );
}
