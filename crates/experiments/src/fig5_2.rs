//! Figure 5-2: execution time versus block size and memory parameters.
//!
//! "The latency … is varied from 100ns (three 40ns cycles) to 420ns
//! (eleven 40ns cycles) … The transfer rate is varied over a range of
//! four words in one cycle to one word in four cycles" — peak bandwidths
//! of 400 MB/s down to 25 MB/s.

use crate::runner::{aggregate, TraceSet, BLOCK_WORDS, MEM_LATENCIES_NS};
use cachetime::{replay_many, BehavioralSim, SimResult, SystemConfig};
use cachetime_analysis::table::Table;
use cachetime_cache::CacheConfig;
use cachetime_mem::{MemoryConfig, TransferRate};
use cachetime_types::{BlockWords, CacheSize, Nanos};

/// The paper's transfer-rate sweep, fastest first.
pub const TRANSFER_RATES: [TransferRate; 5] = [
    TransferRate::WordsPerCycle(4),
    TransferRate::WordsPerCycle(2),
    TransferRate::WordsPerCycle(1),
    TransferRate::CyclesPerWord(2),
    TransferRate::CyclesPerWord(4),
];

/// One curve: a (latency, transfer-rate) pairing swept over block sizes.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Memory latency (read = write = recovery), ns.
    pub latency_ns: u64,
    /// Backplane transfer rate.
    pub transfer: TransferRate,
    /// Block sizes sampled (words).
    pub block_words: Vec<u32>,
    /// Execution time per reference (ns) per block size.
    pub time_per_ref_ns: Vec<f64>,
}

impl Curve {
    /// The memory-speed product `la × tr` at the 40 ns clock.
    pub fn memory_speed_product(&self) -> f64 {
        let la = (self.latency_ns as f64 / 40.0).ceil();
        la * self.transfer.words_per_cycle()
    }
}

/// Sweeps all 25 (latency, transfer) pairings over the block sizes.
pub fn run(traces: &TraceSet) -> Vec<Curve> {
    run_over(traces, &MEM_LATENCIES_NS, &TRANSFER_RATES, &BLOCK_WORDS)
}

/// [`run`] on a worker pool (`jobs == 0` = available parallelism).
pub fn run_jobs(traces: &TraceSet, jobs: usize) -> Vec<Curve> {
    run_over_jobs(traces, &MEM_LATENCIES_NS, &TRANSFER_RATES, &BLOCK_WORDS, jobs)
}

/// Sweeps explicit axes.
pub fn run_over(
    traces: &TraceSet,
    latencies_ns: &[u64],
    transfers: &[TransferRate],
    blocks: &[u32],
) -> Vec<Curve> {
    run_over_jobs(traces, latencies_ns, transfers, blocks, 1)
}

/// One `(block size, trace)` unit of work in the sweep: the block size is
/// the *organization* axis, so one behavioral pass per task covers every
/// (latency, transfer) pairing via timing replay.
#[derive(Debug, Clone, Copy)]
struct CurveTask {
    block_words: u32,
    trace: usize,
}

/// [`run_over`] on a worker pool. Tasks fan out one per
/// `(block size, trace)` pair; each records the trace's behavioral events
/// once and reprices them under every (latency, transfer) memory, so the
/// memory axes cost a replay per point instead of a full simulation.
/// Curves are reassembled in input order and replay is bit-identical to
/// direct simulation, so the output matches the old per-triple path for
/// every job count.
pub fn run_over_jobs(
    traces: &TraceSet,
    latencies_ns: &[u64],
    transfers: &[TransferRate],
    blocks: &[u32],
    jobs: usize,
) -> Vec<Curve> {
    let n_traces = traces.traces().len();
    let mut tasks = Vec::with_capacity(blocks.len() * n_traces);
    for &bw in blocks {
        for trace in 0..n_traces {
            tasks.push(CurveTask {
                block_words: bw,
                trace,
            });
        }
    }
    let run = crate::sweep::run(&tasks, jobs, |_idx, task| {
        let l1 = CacheConfig::builder(CacheSize::from_kib(64).expect("power of two"))
            .block(BlockWords::new(task.block_words).expect("power of two"))
            .build()
            .expect("valid cache");
        let mk = |lat: u64, tr: TransferRate| {
            let memory = MemoryConfig::uniform_latency(Nanos(lat), tr).expect("valid memory");
            SystemConfig::builder()
                .l1_both(l1)
                .memory(memory)
                .build()
                .expect("valid system")
        };
        let mut configs = Vec::with_capacity(latencies_ns.len() * transfers.len());
        for &lat in latencies_ns {
            for &tr in transfers {
                configs.push(mk(lat, tr));
            }
        }
        let events =
            BehavioralSim::new(&configs[0].organization()).record(&traces.traces()[task.trace]);
        replay_many(&events, &configs).expect("same organization")
    })
    .expect("simulation does not panic");

    let mut curves = Vec::new();
    for (p, (&lat, &tr)) in latencies_ns
        .iter()
        .flat_map(|lat| transfers.iter().map(move |tr| (lat, tr)))
        .enumerate()
    {
        let time_per_ref_ns = blocks
            .iter()
            .enumerate()
            .map(|(bi, _)| {
                let cell: Vec<SimResult> = (0..n_traces)
                    .map(|t| run.results[bi * n_traces + t][p])
                    .collect();
                aggregate(&cell).time_per_ref_ns
            })
            .collect();
        curves.push(Curve {
            latency_ns: lat,
            transfer: tr,
            block_words: blocks.to_vec(),
            time_per_ref_ns,
        });
    }
    curves
}

/// Renders every curve, normalized to the global best point.
pub fn render(curves: &[Curve]) -> String {
    let base = curves
        .iter()
        .flat_map(|c| &c.time_per_ref_ns)
        .copied()
        .fold(f64::INFINITY, f64::min);
    let blocks = &curves.first().expect("nonempty").block_words;
    let mut headers = vec!["latency".to_string(), "transfer".to_string()];
    headers.extend(blocks.iter().map(|b| format!("{b}W")));
    let mut t = Table::new(headers);
    for c in curves {
        let mut row = vec![format!("{}ns", c.latency_ns), c.transfer.to_string()];
        row.extend(
            c.time_per_ref_ns
                .iter()
                .map(|&v| format!("{:.3}", v / base)),
        );
        t.row(row);
    }
    format!("Figure 5-2: execution time vs block size and memory parameters\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_memory_is_slower_and_blocks_have_interior_optimum() {
        let traces = TraceSet::quick();
        let curves = run_over(
            &traces,
            &[100, 420],
            &[TransferRate::WordsPerCycle(1)],
            &[1, 4, 32, 128],
        );
        assert_eq!(curves.len(), 2);
        let (fast, slow) = (&curves[0], &curves[1]);
        for (f, s) in fast.time_per_ref_ns.iter().zip(&slow.time_per_ref_ns) {
            assert!(f < s, "higher latency must cost time");
        }
        // Huge blocks are bad: the transfer term dominates.
        let last = *fast.time_per_ref_ns.last().unwrap();
        let mid = fast.time_per_ref_ns[1];
        assert!(last > mid, "128W blocks must lose to 4W");
        assert!(render(&curves).contains("latency"));
    }

    #[test]
    fn memory_speed_product_matches_paper_quantization() {
        let c = Curve {
            latency_ns: 260,
            transfer: TransferRate::WordsPerCycle(2),
            block_words: vec![],
            time_per_ref_ns: vec![],
        };
        assert_eq!(c.memory_speed_product(), 14.0); // ceil(260/40)=7, tr=2
    }
}
