//! Property-based tests for the memory-system timing model, on the
//! hermetic testkit runner.

use cachetime_mem::{FillRequest, MemoryConfig, MemorySystem, MemoryTiming, TransferRate};
use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, CaseResult, SplitMix64};
use cachetime_types::{CycleTime, Nanos, Pid, WordAddr};

fn gen_config(rng: &mut SplitMix64) -> MemoryConfig {
    let transfer = if rng.gen_bool(0.5) {
        TransferRate::WordsPerCycle(rng.gen_range(1u32..5))
    } else {
        TransferRate::CyclesPerWord(rng.gen_range(1u32..5))
    };
    MemoryConfig::builder()
        .read_op(Nanos(rng.gen_range(1u64..500)))
        .write_op(Nanos(rng.gen_range(1u64..500)))
        .recovery(Nanos(rng.gen_range(0u64..500)))
        .transfer(transfer)
        .wb_depth(rng.gen_range(0u32..8))
        .wb_coalesce(rng.gen_bool(0.5))
        .read_priority(rng.gen_bool(0.5))
        .build()
        .expect("valid config")
}

/// (op kind, addr, gap to next event)
fn gen_ops(rng: &mut SplitMix64) -> Vec<(u8, u64, u32)> {
    let n = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0u8..3),
                rng.gen_range(0u64..256),
                rng.gen_range(0u32..30),
            )
        })
        .collect()
}

/// A fill can never complete faster than the pure read time, and the
/// returned completion is never before `now`.
#[test]
fn fill_lower_bound() {
    check(
        "fill_lower_bound",
        |rng| {
            (
                gen_config(rng),
                rng.gen_range(1u32..100),
                rng.gen_range(0u32..6),
                rng.gen_range(0u64..1000),
            )
        },
        shrink::none,
        |(config, ct, words_log, now)| {
            let ct = CycleTime::from_ns(*ct).unwrap();
            let words = 1u32 << words_log;
            let now = *now;
            let mut mem = MemorySystem::new(config, ct);
            let done = mem.fill(
                now,
                FillRequest {
                    pid: Pid(0),
                    addr: WordAddr::new(0),
                    words,
                    victim: None,
                },
            );
            let floor = MemoryTiming::new(config, ct).read_time(words);
            prop_assert!(done >= now + floor, "done={done}, now={now}, floor={floor}");
            Ok(())
        },
    );
}

/// The body of `monotone_and_bounded`, shared with the regression test.
fn check_monotone_and_bounded(config: &MemoryConfig, ops: &[(u8, u64, u32)]) -> CaseResult {
    let mut mem = MemorySystem::new(config, CycleTime::from_ns(40).unwrap());
    let mut now = 0u64;
    for &(kind, addr, gap) in ops {
        let a = WordAddr::new(addr);
        let t = match kind {
            0 => mem.fill(
                now,
                FillRequest {
                    pid: Pid(0),
                    addr: a,
                    words: 4,
                    victim: None,
                },
            ),
            1 => mem.fill(
                now,
                FillRequest {
                    pid: Pid(0),
                    addr: a,
                    words: 4,
                    victim: Some((WordAddr::new(addr ^ 0x1000), 4)),
                },
            ),
            _ => mem.write_word(now, Pid(0), a),
        };
        prop_assert!(t >= now, "completion {t} before request {now}");
        prop_assert!(mem.pending_writes() <= config.wb_depth() as usize);
        now = t + gap as u64;
    }
    mem.drain_all(now);
    prop_assert_eq!(mem.pending_writes(), 0);
    Ok(())
}

/// Time never runs backwards across any interleaving of fills and
/// writes, and the buffer never exceeds its depth.
#[test]
fn monotone_and_bounded() {
    check(
        "monotone_and_bounded",
        |rng| (gen_config(rng), gen_ops(rng)),
        shrink::pair_vec,
        |(config, ops)| check_monotone_and_bounded(config, ops),
    );
}

/// Regression (found by the previous fuzzing setup): a fill carrying a
/// victim with a zero-depth write buffer must still make progress.
#[test]
fn regression_victim_fill_with_zero_depth_buffer() {
    let config = MemoryConfig::builder()
        .read_op(Nanos(1))
        .write_op(Nanos(1))
        .recovery(Nanos(0))
        .transfer(TransferRate::WordsPerCycle(1))
        .wb_depth(0)
        .wb_coalesce(false)
        .read_priority(false)
        .build()
        .expect("valid config");
    check_monotone_and_bounded(&config, &[(1, 0, 0)]).expect("regression case must pass");
}

/// Replaying the same op sequence gives identical completion times and
/// statistics (full determinism).
#[test]
fn deterministic() {
    check(
        "deterministic",
        |rng| (gen_config(rng), gen_ops(rng)),
        shrink::pair_vec,
        |(config, ops)| {
            let run = || {
                let mut mem = MemorySystem::new(config, CycleTime::from_ns(40).unwrap());
                let mut now = 0u64;
                let mut times = Vec::new();
                for &(kind, addr, gap) in ops {
                    let a = WordAddr::new(addr);
                    let t = match kind {
                        0 => mem.fill(
                            now,
                            FillRequest {
                                pid: Pid(0),
                                addr: a,
                                words: 4,
                                victim: None,
                            },
                        ),
                        1 => mem.fill(
                            now,
                            FillRequest {
                                pid: Pid(0),
                                addr: a,
                                words: 4,
                                victim: Some((WordAddr::new(addr ^ 0x1000), 4)),
                            },
                        ),
                        _ => mem.write_word(now, Pid(0), a),
                    };
                    times.push(t);
                    now = t + gap as u64;
                }
                (times, *mem.stats())
            };
            prop_assert_eq!(run(), run());
            Ok(())
        },
    );
}

/// Write-back traffic conservation: every accepted write eventually
/// drains, and drained words equal pushed words (when coalescing is
/// off).
#[test]
fn write_conservation() {
    check(
        "write_conservation",
        gen_ops,
        shrink::vec_linear,
        |ops| {
            let config = MemoryConfig::builder().wb_coalesce(false).build().unwrap();
            let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
            let mut now = 0u64;
            let mut pushed_words = 0u64;
            for &(kind, addr, gap) in ops {
                let a = WordAddr::new(addr);
                if kind == 2 {
                    now = mem.write_word(now, Pid(0), a);
                    pushed_words += 1;
                } else {
                    let victim = (kind == 1).then(|| (WordAddr::new(addr ^ 0x1000), 4u32));
                    if victim.is_some() {
                        pushed_words += 4;
                    }
                    now = mem.fill(
                        now,
                        FillRequest {
                            pid: Pid(0),
                            addr: a,
                            words: 4,
                            victim,
                        },
                    );
                }
                now += gap as u64;
            }
            mem.drain_all(now);
            prop_assert_eq!(mem.stats().write_words, pushed_words);
            Ok(())
        },
    );
}

/// Quantization sanity across cycle times: the read time in *cycles*
/// never increases when the cycle time grows (Table 2's monotonicity).
#[test]
fn read_cycles_monotone_in_cycle_time() {
    check(
        "read_cycles_monotone_in_cycle_time",
        |rng| (gen_config(rng), rng.gen_range(0u32..6)),
        shrink::none,
        |(config, words_log)| {
            let words = 1u32 << words_log;
            let mut prev = u64::MAX;
            for ns in 1..200u32 {
                let t = MemoryTiming::new(config, CycleTime::from_ns(ns).unwrap());
                let cycles = t.read_time(words);
                prop_assert!(cycles <= prev);
                prev = cycles;
            }
            Ok(())
        },
    );
}

/// Elapsed nanoseconds of a read (cycles × cycle time) never falls
/// below the asynchronous component: quantization only adds time.
#[test]
fn quantization_never_loses_time() {
    check(
        "quantization_never_loses_time",
        |rng| (gen_config(rng), rng.gen_range(1u32..200)),
        shrink::none,
        |(config, ns)| {
            let ns = *ns;
            let ct = CycleTime::from_ns(ns).unwrap();
            let t = MemoryTiming::new(config, ct);
            let elapsed_ns = t.latency_cycles() * ns as u64;
            prop_assert!(elapsed_ns >= config.read_op().0);
            prop_assert!(elapsed_ns < config.read_op().0 + ns as u64);
            Ok(())
        },
    );
}

/// Metamorphic: enabling coalescing never increases the number of
/// memory write operations (it can only merge them).
#[test]
fn coalescing_never_adds_write_ops() {
    check(
        "coalescing_never_adds_write_ops",
        gen_ops,
        shrink::vec_linear,
        |ops| {
            let run = |coalesce: bool| {
                let config = MemoryConfig::builder()
                    .wb_coalesce(coalesce)
                    .build()
                    .unwrap();
                let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
                let mut now = 0u64;
                for &(kind, addr, gap) in ops {
                    let a = WordAddr::new(addr);
                    now = match kind {
                        0 | 1 => mem.fill(
                            now,
                            FillRequest {
                                pid: Pid(0),
                                addr: a,
                                words: 4,
                                victim: None,
                            },
                        ),
                        _ => mem.write_word(now, Pid(0), a),
                    } + gap as u64;
                }
                mem.drain_all(now);
                mem.stats().writes
            };
            prop_assert!(run(true) <= run(false));
            Ok(())
        },
    );
}

/// Metamorphic: a longer drain delay never increases write operations
/// (a longer aging window only improves merging).
#[test]
fn longer_drain_delay_never_adds_write_ops() {
    check(
        "longer_drain_delay_never_adds_write_ops",
        |rng| {
            (
                (rng.gen_range(0u64..16), rng.gen_range(1u64..64)),
                gen_ops(rng),
            )
        },
        shrink::pair_vec,
        |((d1, extra), ops)| {
            let run = |delay: u64| {
                let config = MemoryConfig::builder()
                    .wb_drain_delay(delay)
                    .build()
                    .unwrap();
                let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
                let mut now = 0u64;
                for &(kind, addr, gap) in ops {
                    let a = WordAddr::new(addr);
                    now = match kind {
                        0 | 1 => mem.fill(
                            now,
                            FillRequest {
                                pid: Pid(0),
                                addr: a,
                                words: 4,
                                victim: None,
                            },
                        ),
                        _ => mem.write_word(now, Pid(0), a),
                    } + gap as u64;
                }
                mem.drain_all(now);
                mem.stats().writes
            };
            prop_assert!(run(d1 + extra) <= run(*d1));
            Ok(())
        },
    );
}
