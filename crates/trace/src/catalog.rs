//! The eight synthetic workloads mirroring the paper's Table 1.
//!
//! | Name  | Procs | Refs (M) | Unique words (K) | Family |
//! |-------|-------|----------|------------------|--------|
//! | mu3   | 7     | 1.439    | 33.1             | VAX/VMS (OS refs) |
//! | mu6   | 11    | 1.543    | 49.6             | VAX/VMS |
//! | mu10  | 14    | 1.094    | 49.4             | VAX/VMS |
//! | savec | 6     | 1.162    | 25.2             | VAX/Ultrix |
//! | rd1n3 | 3     | 1.489    | 299              | R2000, init prefix |
//! | rd2n4 | 4     | 1.314    | 241              | R2000, init prefix |
//! | rd1n5 | 5     | 1.314    | 248              | R2000, egrep start-up |
//! | rd2n7 | 7     | 1.678    | 448              | R2000, grep start-up |
//!
//! Every constructor takes a `scale` factor applied to the reference
//! counts (1.0 = paper-sized, ~1–1.7 M references; tests and benches use
//! much smaller scales). Footprints are *not* scaled: the miss-ratio
//! curves the experiments measure are footprint-determined.

use crate::multiprogram::WorkloadSpec;
use crate::process::ProcessParams;
use crate::trace::Trace;

/// The paper's warm-start boundary for the VAX traces, in references.
const VAX_WARM_UP: usize = 450_000;
/// Mean context-switch interval in references (matches the VMS-quantum
/// scale of the ATUM snapshots).
const MEAN_SWITCH: f64 = 9_000.0;

fn scaled(n: f64, scale: f64) -> usize {
    ((n * scale) as usize).max(2_000)
}

/// Splits a total footprint (in Kwords) across `n` processes with a spread
/// of sizes (real workloads are not uniform), returning per-process
/// (code, data) word counts.
fn split_footprint(total_kwords: f64, n: usize, code_frac: f64) -> Vec<(u64, u64)> {
    let total_words = total_kwords * 1024.0;
    // Weights 1, 1.35, 1.7, ... normalized.
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + 0.35 * i as f64).collect();
    let wsum: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            let words = total_words * w / wsum;
            let code = (words * code_frac) as u64;
            let data = (words * (1.0 - code_frac)) as u64;
            (code, data)
        })
        .collect()
}

fn vax_spec(
    name: &str,
    n_procs: usize,
    refs_m: f64,
    unique_kwords: f64,
    scale: f64,
    seed: u64,
) -> WorkloadSpec {
    let processes = split_footprint(unique_kwords, n_procs, 0.42)
        .into_iter()
        .map(|(c, d)| ProcessParams::vax_like(c, d))
        .collect();
    WorkloadSpec {
        name: name.into(),
        processes,
        length: scaled(refs_m * 1e6 - VAX_WARM_UP as f64, scale),
        warm_up: scaled(VAX_WARM_UP as f64, scale),
        mean_switch: MEAN_SWITCH,
        os_process: true,
        init_prefix: false,
        seed,
    }
}

fn risc_spec(
    name: &str,
    n_procs: usize,
    refs_m: f64,
    unique_kwords: f64,
    startup_zero: Option<u64>,
    scale: f64,
    seed: u64,
) -> WorkloadSpec {
    // Table 1's unique-address counts for the R2000 traces include their
    // initialization prefixes; only part of the footprint stays live in
    // the traced window. Split ~30% live / ~60% prefix-only cold data.
    let mut processes: Vec<ProcessParams> = split_footprint(unique_kwords * 0.32, n_procs, 0.18)
        .into_iter()
        .map(|(c, d)| {
            let cold = (unique_kwords * 0.60 * 1024.0 / n_procs as f64) as u64;
            ProcessParams::risc_like(c, d).with_cold_words(cold)
        })
        .collect();
    if let Some(words) = startup_zero {
        // The grep/egrep-like process zeroes its data space at start.
        let last = processes.len() - 1;
        processes[last] = processes[last].clone().with_startup_zero(words);
    }
    WorkloadSpec {
        name: name.into(),
        processes,
        length: scaled(refs_m * 1e6, scale),
        warm_up: 0,
        mean_switch: MEAN_SWITCH,
        os_process: false,
        init_prefix: true,
        seed,
    }
}

/// `mu3`: Fortran compile, microcode allocator, directory search under VMS.
pub fn mu3(scale: f64) -> WorkloadSpec {
    vax_spec("mu3", 7, 1.439, 33.1, scale, 0x3301)
}

/// `mu6`: `mu3` plus Pascal compile, 4x1x5, spice.
pub fn mu6(scale: f64) -> WorkloadSpec {
    vax_spec("mu6", 11, 1.543, 49.6, scale, 0x3002)
}

/// `mu10`: `mu6` plus jacobian, string search, assembler, octal dump,
/// linker.
pub fn mu10(scale: f64) -> WorkloadSpec {
    vax_spec("mu10", 14, 1.094, 49.4, scale, 0x3003)
}

/// `savec`: C compile with miscellaneous other activity under Ultrix.
pub fn savec(scale: f64) -> WorkloadSpec {
    vax_spec("savec", 6, 1.162, 25.2, scale, 0x3004)
}

/// `rd1n3`: emacs, switch, rsim.
pub fn rd1n3(scale: f64) -> WorkloadSpec {
    risc_spec("rd1n3", 3, 1.489, 299.0, None, scale, 0x4001)
}

/// `rd2n4`: C compiler front end, emacs, troff, a trace analyzer.
pub fn rd2n4(scale: f64) -> WorkloadSpec {
    risc_spec("rd2n4", 4, 1.314, 241.0, None, scale, 0x4002)
}

/// `rd1n5`: `rd2n4` plus egrep searching 400 KB in 27 files (observed from
/// start of execution — its data space gets zeroed).
pub fn rd1n5(scale: f64) -> WorkloadSpec {
    risc_spec("rd1n5", 5, 1.314, 248.0, Some(50_000), scale, 0x4003)
}

/// `rd2n7`: `rd2n4` plus rsim, grep doing a constant search, emacs.
pub fn rd2n7(scale: f64) -> WorkloadSpec {
    risc_spec("rd2n7", 7, 1.678, 448.0, Some(40_000), scale, 0x4004)
}

/// Looks up one catalog workload by its Table 1 name (`"mu3"` … `"rd2n7"`).
///
/// `None` for names outside the catalog — callers resolving external input
/// (the simulation server's `trace.name` field) get a checkable miss
/// instead of a panic.
pub fn by_name(name: &str, scale: f64) -> Option<WorkloadSpec> {
    match name {
        "mu3" => Some(mu3(scale)),
        "mu6" => Some(mu6(scale)),
        "mu10" => Some(mu10(scale)),
        "savec" => Some(savec(scale)),
        "rd1n3" => Some(rd1n3(scale)),
        "rd2n4" => Some(rd2n4(scale)),
        "rd1n5" => Some(rd1n5(scale)),
        "rd2n7" => Some(rd2n7(scale)),
        _ => None,
    }
}

/// All eight workload specs, in the paper's Table 1 order.
pub fn all(scale: f64) -> Vec<WorkloadSpec> {
    vec![
        mu3(scale),
        mu6(scale),
        mu10(scale),
        savec(scale),
        rd1n3(scale),
        rd2n4(scale),
        rd1n5(scale),
        rd2n7(scale),
    ]
}

/// Generates every catalog trace at the given scale.
pub fn generate_all(scale: f64) -> Vec<Trace> {
    all(scale).iter().map(WorkloadSpec::generate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_traces() {
        let specs = all(0.01);
        assert_eq!(specs.len(), 8);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["mu3", "mu6", "mu10", "savec", "rd1n3", "rd2n4", "rd1n5", "rd2n7"]
        );
    }

    #[test]
    fn by_name_resolves_the_whole_catalog() {
        for spec in all(0.01) {
            let found = by_name(&spec.name, 0.01).expect("catalog name resolves");
            assert_eq!(found.seed, spec.seed);
            assert_eq!(found.length, spec.length);
        }
        assert!(by_name("nonesuch", 0.01).is_none());
    }

    #[test]
    fn process_counts_match_table_1() {
        let specs = all(0.01);
        let procs: Vec<usize> = specs.iter().map(|s| s.processes.len()).collect();
        assert_eq!(procs, [7, 11, 14, 6, 3, 4, 5, 7]);
    }

    #[test]
    fn vax_traces_have_os_and_no_prefix() {
        for spec in &all(0.01)[..4] {
            assert!(spec.os_process, "{}", spec.name);
            assert!(!spec.init_prefix, "{}", spec.name);
            assert!(spec.warm_up > 0);
        }
    }

    #[test]
    fn risc_traces_have_prefix_and_no_os() {
        for spec in &all(0.01)[4..] {
            assert!(!spec.os_process, "{}", spec.name);
            assert!(spec.init_prefix, "{}", spec.name);
        }
    }

    #[test]
    fn grep_traces_zero_their_data_space() {
        assert!(rd1n5(0.01)
            .processes
            .iter()
            .any(|p| p.startup_zero_words > 0));
        assert!(rd2n7(0.01)
            .processes
            .iter()
            .any(|p| p.startup_zero_words > 0));
        assert!(rd1n3(0.01)
            .processes
            .iter()
            .all(|p| p.startup_zero_words == 0));
    }

    #[test]
    fn risc_traces_have_larger_footprints() {
        let vax_total: u64 = mu3(0.01)
            .processes
            .iter()
            .map(|p| p.code_words + p.data_words)
            .sum();
        let risc_total: u64 = rd1n3(0.01)
            .processes
            .iter()
            .map(|p| p.code_words + p.data_words + p.cold_words)
            .sum();
        assert!(risc_total > 4 * vax_total);
    }

    #[test]
    fn scale_changes_length_not_footprint() {
        let small = mu3(0.01);
        let big = mu3(0.1);
        assert!(big.length > small.length);
        assert_eq!(small.processes, big.processes);
    }

    #[test]
    fn generated_trace_footprint_in_table_1_ballpark() {
        // mu3 targets 33.1K unique words; the generator cannot exceed the
        // configured footprint and should touch most of it.
        let t = mu3(0.15).generate();
        let unique = t.stats().unique_words;
        assert!(
            (8_000..=40_000).contains(&unique),
            "mu3 unique words {unique} far from Table 1's 33.1K"
        );
    }
}
