//! Representative-interval selection for huge traces.
//!
//! Pricing a billion-reference upload by simulating every reference is
//! exactly the cost the two-phase engine was built to avoid paying twice;
//! interval sampling (Bueno et al., *Improving the Representativeness of
//! Simulation Intervals for the Cache Memory System*) avoids paying it
//! even once. The trace is cut into fixed-size windows, each window is
//! summarized by a small **feature vector** gathered in one streaming
//! pass — miss counts from three tiny direct-mapped probe caches of
//! well-spread sizes, plus the ifetch/store mix — and a k-medoid-style
//! clustering picks ≤ k windows whose weighted combination stands in for
//! the whole trace.
//!
//! The pick is **seeded** (testkit's SplitMix64) and fully deterministic:
//! the same trace, window size, k, and seed select the same windows on
//! every machine, so a selection can be named in a response and relied on
//! later. The selection also reports its own accuracy: for each probe
//! size, the weighted miss ratio over the picked windows is compared with
//! the exact miss ratio over *all* windows, and the worst absolute gap is
//! published as [`Selection::profile_error`]. The documented bound is
//! [`PROFILE_ERROR_BOUND`]: selections over the synthetic catalog stay
//! within it (property-tested), and ingestion surfaces the measured value
//! with every upload so callers can judge an atypical trace for
//! themselves.

use cachetime_testkit::SplitMix64;
use cachetime_types::{AccessKind, MemRef};

/// Words per probe-cache block (16 bytes — small enough that spatial
/// locality differences between windows still show up in the features).
const PROBE_BLOCK_WORDS: u64 = 4;

/// Probe-cache set counts: 256 / 2K / 16K sets of one block each, i.e.
/// 4 KiB / 32 KiB / 256 KiB — spread across the paper's size axis so
/// windows that differ anywhere on the miss-ratio curve get different
/// feature vectors.
const PROBE_SETS: [usize; 3] = [256, 2048, 16384];

/// The documented ceiling on [`Selection::profile_error`] for catalog
/// traces: the weighted probe miss ratio of the picked windows stays
/// within this absolute distance of the full-trace value.
pub const PROFILE_ERROR_BOUND: f64 = 0.05;

/// One direct-mapped probe cache: a tag per set, no data, no timing —
/// just enough state to count misses.
#[derive(Debug)]
struct ProbeCache {
    tags: Vec<u64>,
    mask: u64,
}

impl ProbeCache {
    fn new(sets: usize) -> ProbeCache {
        ProbeCache {
            tags: vec![u64::MAX; sets],
            mask: sets as u64 - 1,
        }
    }

    /// Returns `true` on a miss (and installs the block).
    fn probe(&mut self, r: MemRef) -> bool {
        // Tag on (block, pid) so multiprogrammed uploads conflict the way
        // the virtual caches in the simulator do.
        let block = r.addr.block(PROBE_BLOCK_WORDS as u32).value();
        let tag = (block << 16) | u64::from(r.pid.0);
        let set = (block & self.mask) as usize;
        let miss = self.tags[set] != tag;
        self.tags[set] = tag;
        miss
    }
}

/// The per-window feature vector: probe miss ratios at the three sizes
/// plus the access-kind mix, every component in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowFeatures {
    /// Index of the window's first reference in the trace.
    pub start_ref: usize,
    /// References in the window (the last window may be short).
    pub len: usize,
    /// Probe-cache miss ratios, smallest probe first.
    pub probe_miss: [f64; 3],
    /// Fraction of references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Fraction of references that are stores.
    pub store_frac: f64,
}

impl WindowFeatures {
    /// Squared euclidean distance in feature space.
    fn dist2(&self, other: &WindowFeatures) -> f64 {
        let mut d = 0.0;
        for i in 0..3 {
            let x = self.probe_miss[i] - other.probe_miss[i];
            d += x * x;
        }
        let fi = self.ifetch_frac - other.ifetch_frac;
        let fs = self.store_frac - other.store_frac;
        d + fi * fi + fs * fs
    }
}

/// Streaming per-window feature extraction: push every reference once,
/// in order; memory is O(probe sets + windows seen), independent of the
/// reference count.
#[derive(Debug)]
pub struct IntervalProfiler {
    window_refs: usize,
    probes: [ProbeCache; 3],
    windows: Vec<WindowFeatures>,
    // Accumulators for the window being filled.
    cur_len: usize,
    cur_miss: [u64; 3],
    cur_ifetch: u64,
    cur_store: u64,
    total_refs: usize,
}

impl IntervalProfiler {
    /// A profiler cutting the stream into windows of `window_refs`
    /// references (min 1).
    pub fn new(window_refs: usize) -> IntervalProfiler {
        IntervalProfiler {
            window_refs: window_refs.max(1),
            probes: [
                ProbeCache::new(PROBE_SETS[0]),
                ProbeCache::new(PROBE_SETS[1]),
                ProbeCache::new(PROBE_SETS[2]),
            ],
            windows: Vec::new(),
            cur_len: 0,
            cur_miss: [0; 3],
            cur_ifetch: 0,
            cur_store: 0,
            total_refs: 0,
        }
    }

    /// Feeds one reference.
    pub fn push(&mut self, r: MemRef) {
        for (i, p) in self.probes.iter_mut().enumerate() {
            self.cur_miss[i] += u64::from(p.probe(r));
        }
        match r.kind {
            AccessKind::IFetch => self.cur_ifetch += 1,
            AccessKind::Store => self.cur_store += 1,
            AccessKind::Load => {}
        }
        self.cur_len += 1;
        self.total_refs += 1;
        if self.cur_len == self.window_refs {
            self.seal_window();
        }
    }

    fn seal_window(&mut self) {
        let len = self.cur_len;
        if len == 0 {
            return;
        }
        let n = len as f64;
        self.windows.push(WindowFeatures {
            start_ref: self.total_refs - len,
            len,
            probe_miss: [
                self.cur_miss[0] as f64 / n,
                self.cur_miss[1] as f64 / n,
                self.cur_miss[2] as f64 / n,
            ],
            ifetch_frac: self.cur_ifetch as f64 / n,
            store_frac: self.cur_store as f64 / n,
        });
        self.cur_len = 0;
        self.cur_miss = [0; 3];
        self.cur_ifetch = 0;
        self.cur_store = 0;
    }

    /// Seals any partial final window and returns the profile.
    pub fn finish(mut self) -> IntervalProfile {
        self.seal_window();
        IntervalProfile {
            window_refs: self.window_refs,
            total_refs: self.total_refs,
            windows: self.windows,
        }
    }
}

/// The per-window feature vectors of a whole trace.
#[derive(Debug, Clone)]
pub struct IntervalProfile {
    /// The fixed window size the profile was cut with.
    pub window_refs: usize,
    /// Total references profiled.
    pub total_refs: usize,
    /// One feature vector per window, in trace order.
    pub windows: Vec<WindowFeatures>,
}

impl IntervalProfile {
    /// Profiles an in-memory slice (streaming callers drive
    /// [`IntervalProfiler`] directly).
    pub fn scan(refs: &[MemRef], window_refs: usize) -> IntervalProfile {
        let mut p = IntervalProfiler::new(window_refs);
        for &r in refs {
            p.push(r);
        }
        p.finish()
    }

    /// The exact length-weighted mean of probe miss ratio `probe` over
    /// every window — the ground truth a selection's estimate is judged
    /// against.
    fn full_probe_miss(&self, probe: usize) -> f64 {
        if self.total_refs == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .windows
            .iter()
            .map(|w| w.probe_miss[probe] * w.len as f64)
            .sum();
        sum / self.total_refs as f64
    }
}

/// One selected window with its cluster weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pick {
    /// Index into [`IntervalProfile::windows`].
    pub window: usize,
    /// First reference of the window in the trace.
    pub start_ref: usize,
    /// References in the window.
    pub len: usize,
    /// Fraction of the trace this window stands in for (cluster refs /
    /// total refs); weights sum to 1.
    pub weight: f64,
}

/// A representative-interval selection with its self-measured accuracy.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The picked windows, in trace order.
    pub picks: Vec<Pick>,
    /// Worst absolute gap, across the probe sizes, between the weighted
    /// picked miss ratio and the exact full-profile miss ratio. The
    /// documented catalog bound is [`PROFILE_ERROR_BOUND`].
    pub profile_error: f64,
}

impl Selection {
    /// Picks at most `k` representative windows from `profile`,
    /// deterministically for a given `seed`.
    ///
    /// k-medoid-style: medoids are initialized k-means++-fashion from the
    /// seeded stream (first uniform, then proportional to squared
    /// distance from the nearest chosen medoid), every window is assigned
    /// to its nearest medoid, and each cluster's medoid is re-centered to
    /// the member minimizing total intra-cluster distance until the
    /// assignment stops changing (or a small iteration cap). Weights are
    /// cluster reference counts over total references.
    pub fn pick(profile: &IntervalProfile, k: usize, seed: u64) -> Selection {
        let windows = &profile.windows;
        if windows.is_empty() {
            return Selection {
                picks: Vec::new(),
                profile_error: 0.0,
            };
        }
        let k = k.max(1).min(windows.len());
        let mut rng = SplitMix64::from_seed(seed);

        // k-means++-style medoid init.
        let mut medoids: Vec<usize> = Vec::with_capacity(k);
        medoids.push(rng.gen_range(0..windows.len() as u64) as usize);
        let mut nearest2: Vec<f64> = windows
            .iter()
            .map(|w| w.dist2(&windows[medoids[0]]))
            .collect();
        while medoids.len() < k {
            let total: f64 = nearest2.iter().sum();
            let next = if total <= 0.0 {
                // All remaining windows coincide with a medoid; any
                // non-medoid index keeps determinism.
                match (0..windows.len()).find(|i| !medoids.contains(i)) {
                    Some(i) => i,
                    None => break,
                }
            } else {
                let mut target = rng.next_f64() * total;
                let mut chosen = windows.len() - 1;
                for (i, &d) in nearest2.iter().enumerate() {
                    if target < d {
                        chosen = i;
                        break;
                    }
                    target -= d;
                }
                chosen
            };
            medoids.push(next);
            for (i, w) in windows.iter().enumerate() {
                nearest2[i] = nearest2[i].min(w.dist2(&windows[next]));
            }
        }

        // Assign + re-center until stable.
        let mut assign = vec![0usize; windows.len()];
        for _ in 0..16 {
            let mut changed = false;
            for (i, w) in windows.iter().enumerate() {
                let best = (0..medoids.len())
                    .min_by(|&a, &b| {
                        w.dist2(&windows[medoids[a]])
                            .total_cmp(&w.dist2(&windows[medoids[b]]))
                    })
                    .expect("at least one medoid");
                if assign[i] != best {
                    assign[i] = best;
                    changed = true;
                }
            }
            let mut moved = false;
            for c in 0..medoids.len() {
                let members: Vec<usize> = (0..windows.len())
                    .filter(|&i| assign[i] == c)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let best = *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        let cost = |m: usize| -> f64 {
                            members.iter().map(|&i| windows[i].dist2(&windows[m])).sum()
                        };
                        cost(a).total_cmp(&cost(b))
                    })
                    .expect("nonempty cluster");
                if medoids[c] != best {
                    medoids[c] = best;
                    moved = true;
                }
            }
            if !changed && !moved {
                break;
            }
        }

        // Weights: cluster reference mass. Empty clusters (possible when
        // duplicate medoids collapse) contribute nothing and are dropped.
        let mut cluster_refs = vec![0usize; medoids.len()];
        for (i, &c) in assign.iter().enumerate() {
            cluster_refs[c] += windows[i].len;
        }
        let total = profile.total_refs.max(1) as f64;
        let mut picks: Vec<Pick> = medoids
            .iter()
            .enumerate()
            .filter(|&(c, _)| cluster_refs[c] > 0)
            .map(|(c, &m)| Pick {
                window: m,
                start_ref: windows[m].start_ref,
                len: windows[m].len,
                weight: cluster_refs[c] as f64 / total,
            })
            .collect();
        picks.sort_by_key(|p| p.window);

        // Self-measured accuracy: weighted picked miss vs exact, worst
        // probe size.
        let mut profile_error: f64 = 0.0;
        for probe in 0..3 {
            let est: f64 = picks
                .iter()
                .map(|p| windows[p.window].probe_miss[probe] * p.weight)
                .sum();
            let exact = profile.full_probe_miss(probe);
            profile_error = profile_error.max((est - exact).abs());
        }
        Selection {
            picks,
            profile_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use cachetime_testkit::{check, prop_assert, prop_assert_eq};
    use cachetime_types::{Pid, WordAddr};

    fn synthetic(n: usize, seed: u64) -> Vec<MemRef> {
        let mut rng = SplitMix64::from_seed(seed);
        (0..n)
            .map(|i| {
                // Two alternating phases with different footprints, so
                // clustering has real structure to find.
                let phase = (i / 512) % 2;
                let span = if phase == 0 { 1 << 10 } else { 1 << 16 };
                let addr = WordAddr::new(rng.next_u64() % span);
                match rng.next_u64() % 4 {
                    0 => MemRef::store(addr, Pid(0)),
                    1 => MemRef::load(addr, Pid(0)),
                    _ => MemRef::ifetch(addr, Pid(0)),
                }
            })
            .collect()
    }

    #[test]
    fn profile_cuts_fixed_windows_with_a_short_tail() {
        let refs = synthetic(2500, 1);
        let p = IntervalProfile::scan(&refs, 1000);
        assert_eq!(p.total_refs, 2500);
        assert_eq!(p.windows.len(), 3);
        assert_eq!(p.windows[0].len, 1000);
        assert_eq!(p.windows[2].len, 500);
        assert_eq!(p.windows[2].start_ref, 2000);
        for w in &p.windows {
            for m in w.probe_miss {
                assert!((0.0..=1.0).contains(&m));
            }
            assert!(w.ifetch_frac + w.store_frac <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn probe_miss_falls_with_probe_size() {
        let refs = synthetic(20_000, 2);
        let p = IntervalProfile::scan(&refs, 20_000);
        let m = p.windows[0].probe_miss;
        assert!(m[0] >= m[1] && m[1] >= m[2], "{m:?}");
    }

    #[test]
    fn empty_and_tiny_traces_are_handled() {
        let p = IntervalProfile::scan(&[], 100);
        assert!(p.windows.is_empty());
        let s = Selection::pick(&p, 5, 0);
        assert!(s.picks.is_empty());
        assert_eq!(s.profile_error, 0.0);

        let one = [MemRef::load(WordAddr::new(1), Pid(0))];
        let p1 = IntervalProfile::scan(&one, 100);
        let s1 = Selection::pick(&p1, 5, 0);
        assert_eq!(s1.picks.len(), 1);
        assert!((s1.picks[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_is_deterministic_for_a_fixed_seed() {
        check(
            "interval_selection_deterministic",
            |rng| {
                let n = 2_000 + (rng.next_u64() % 30_000) as usize;
                let trace_seed = rng.next_u64();
                let pick_seed = rng.next_u64();
                let k = 1 + (rng.next_u64() % 12) as usize;
                (n, trace_seed, pick_seed, k)
            },
            |&(n, ts, ps, k)| {
                if n > 2_000 {
                    vec![(n / 2, ts, ps, k)]
                } else {
                    Vec::new()
                }
            },
            |&(n, trace_seed, pick_seed, k)| {
                let refs = synthetic(n, trace_seed);
                let p = IntervalProfile::scan(&refs, 1024);
                let a = Selection::pick(&p, k, pick_seed);
                let b = Selection::pick(&p, k, pick_seed);
                prop_assert_eq!(a.picks.len(), b.picks.len(), "pick counts");
                for (x, y) in a.picks.iter().zip(&b.picks) {
                    prop_assert_eq!(x.window, y.window, "window choice");
                    prop_assert!(
                        (x.weight - y.weight).abs() < 1e-15,
                        "weights bit-stable"
                    );
                }
                prop_assert!(
                    (a.profile_error - b.profile_error).abs() < 1e-15,
                    "error bit-stable"
                );
                prop_assert!(a.picks.len() <= k.max(1), "at most k picks");
                let wsum: f64 = a.picks.iter().map(|p| p.weight).sum();
                prop_assert!((wsum - 1.0).abs() < 1e-9, "weights sum to 1, got {wsum}");
                Ok(())
            },
        );
    }

    #[test]
    fn catalog_selections_stay_within_the_documented_error_bound() {
        for spec in [catalog::mu3(0.05), catalog::savec(0.05), catalog::rd1n3(0.05)] {
            let trace = spec.generate();
            let window = (trace.len() / 40).max(256);
            let profile = IntervalProfile::scan(trace.refs(), window);
            for seed in [0u64, 1, 42] {
                let s = Selection::pick(&profile, 10, seed);
                assert!(s.picks.len() <= 10);
                assert!(
                    s.profile_error <= PROFILE_ERROR_BOUND,
                    "{}: profile error {} over bound {PROFILE_ERROR_BOUND} (seed {seed})",
                    spec.name,
                    s.profile_error
                );
            }
        }
    }
}
