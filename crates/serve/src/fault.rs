//! Deterministic fault injection: a seeded [`FaultPlan`] for server-side
//! fault points, and a seeded chaos client that misbehaves on the wire.
//!
//! Both halves draw from the testkit's SplitMix64, so a chaos run is a
//! pure function of its seed: the same seed injects the same faults in
//! the same per-point order, and a failure reproduces from the seed alone
//! (thread interleaving may reorder *which request* hits a fault, but the
//! per-point decision stream is fixed).
//!
//! # Server-side fault points
//!
//! The server consults its plan (inert by default — a single relaxed
//! atomic load) at three named points:
//!
//! | point | where |
//! |---|---|
//! | `serve.handle` | entry of [`App::handle`](crate::App::handle), before routing |
//! | `serve.record` | inside the store's recording closure, before the behavioral pass |
//! | `serve.write` | in the worker, before the response bytes are written |
//! | `disk.write` | in the segment store, before a spill touches the disk |
//! | `disk.read` | in the segment store, after a read-through's bytes arrive |
//! | `peer.fetch` | in a rebalance pass, after a peer's segment bytes arrive and before adoption |
//!
//! The disk points (and `peer.fetch`, which reuses their machinery) use
//! [`decide_disk`](FaultPlan::decide_disk) / [`DiskFaultAction`] instead
//! of [`FaultAction`]: their failure mode is torn, shortened, or
//! bit-flipped bytes (a crash image recovery — or a segment adoption —
//! must quarantine), not a panic or a delay.
//!
//! A [`FaultAction::Panic`] at `serve.handle` or `serve.record` exercises
//! the panic-isolation path: the worker's `catch_unwind` turns it into a
//! `500` and the pool keeps serving. A [`FaultAction::Delay`] at
//! `serve.record` holds a recording in flight, which is how tests push the
//! server into degraded mode on demand.
//!
//! # Client-side chaos
//!
//! [`run_chaos_client`] speaks raw TCP at a running server and, per
//! seeded round, either behaves (simulate / replay / stats / health) or
//! misbehaves: half-written request heads, mid-body disconnects, torn
//! response reads, dribbled writes, garbage bytes, and oversized
//! `Content-Length` claims. It returns a [`ChaosReport`] and fails fast
//! (with a message) on any *protocol violation* — a well-formed request
//! answered with anything but `200`/`503`, or a malformed one answered
//! with anything but its proper `4xx`.

use cachetime_testkit::SplitMix64;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed fault point does when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: the point falls through at full speed.
    Proceed,
    /// Sleep for the given duration before proceeding.
    Delay(Duration),
    /// Panic with a recognizable message (`"injected fault panic"`).
    Panic,
}

/// What an armed disk fault point does when hit — the `FaultPlan` side of
/// the `cachetime-disk` fault hook. The server adapts these into
/// `cachetime_disk::DiskFault`s (which carry concrete byte counts) once
/// the I/O size is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiskFaultAction {
    /// No fault.
    Proceed,
    /// Keep only this fraction of the bytes — a torn write (fraction
    /// lands mid-payload) or a short write (fraction lands inside the
    /// header). Uniform in `[0, 1)`, so both cases occur.
    Torn {
        /// Fraction of the I/O that survives.
        frac: f64,
    },
    /// Flip one bit at this (modular) byte offset — silent corruption.
    BitFlip {
        /// Byte offset, reduced modulo the I/O length by the disk layer.
        offset: u64,
    },
    /// Fail the whole operation with an I/O error.
    Error,
}

#[derive(Debug, Clone)]
struct Rule {
    /// Probability a hit panics.
    panic_p: f64,
    /// Probability a hit delays (evaluated after the panic draw misses).
    delay_p: f64,
    /// Delay length: uniform in `[0, max_delay]`.
    max_delay: Duration,
    /// Probability a disk hit is torn/short (disk points only).
    torn_p: f64,
    /// Probability a disk hit is bit-flipped (after the torn draw).
    flip_p: f64,
    /// Probability a disk hit errors outright (after the flip draw).
    error_p: f64,
    /// Remaining faults this rule may inject; `None` = unlimited.
    budget: Option<u64>,
}

impl Rule {
    fn new() -> Self {
        Rule {
            panic_p: 0.0,
            delay_p: 0.0,
            max_delay: Duration::ZERO,
            torn_p: 0.0,
            flip_p: 0.0,
            error_p: 0.0,
            budget: None,
        }
    }
}

struct Point {
    rng: SplitMix64,
    rule: Rule,
}

/// A deterministic, thread-safe fault schedule keyed by named points.
///
/// Points without an armed rule always [`FaultAction::Proceed`]; an
/// entirely inert plan costs one relaxed atomic load per hit, so the
/// production server carries one at zero practical cost.
pub struct FaultPlan {
    seed: u64,
    armed: AtomicBool,
    points: Mutex<HashMap<String, Point>>,
    injected: AtomicU64,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

/// FNV-1a, mixed into the plan seed so each point gets its own stream.
fn point_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn inert() -> Self {
        Self::seeded(0)
    }

    /// An empty plan with the given seed; arm points with
    /// [`arm_panic`](Self::arm_panic) / [`arm_delay`](Self::arm_delay).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            armed: AtomicBool::new(false),
            points: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    fn arm(self, point: &str, rule: Rule) -> Self {
        {
            let mut points = self.points.lock().unwrap();
            points.insert(
                point.to_string(),
                Point {
                    rng: SplitMix64::from_seed(self.seed ^ point_hash(point)),
                    rule,
                },
            );
        }
        self.armed.store(true, Ordering::Release);
        self
    }

    /// Arms `point` to panic with probability `p` per hit, at most
    /// `budget` times (`None` = forever).
    pub fn arm_panic(self, point: &str, p: f64, budget: Option<u64>) -> Self {
        self.arm(
            point,
            Rule {
                panic_p: p,
                budget,
                ..Rule::new()
            },
        )
    }

    /// Arms `point` to delay (uniform in `[0, max_delay]`) with
    /// probability `p` per hit, at most `budget` times.
    pub fn arm_delay(self, point: &str, p: f64, max_delay: Duration, budget: Option<u64>) -> Self {
        self.arm(
            point,
            Rule {
                delay_p: p,
                max_delay,
                budget,
                ..Rule::new()
            },
        )
    }

    /// Arms a disk point (`disk.write` / `disk.read`) to tear or shorten
    /// the I/O with probability `torn_p` and to bit-flip it with
    /// probability `flip_p` (drawn after a torn miss), at most `budget`
    /// faults total. Consumed via [`decide_disk`](Self::decide_disk).
    pub fn arm_disk(self, point: &str, torn_p: f64, flip_p: f64, budget: Option<u64>) -> Self {
        self.arm(
            point,
            Rule {
                torn_p,
                flip_p,
                budget,
                ..Rule::new()
            },
        )
    }

    /// Arms a disk point to fail outright with probability `p`.
    pub fn arm_disk_error(self, point: &str, p: f64, budget: Option<u64>) -> Self {
        self.arm(
            point,
            Rule {
                error_p: p,
                budget,
                ..Rule::new()
            },
        )
    }

    /// Arms `point` to panic on exactly its next hit, then disarm.
    pub fn panic_once(self, point: &str) -> Self {
        self.arm_panic(point, 1.0, Some(1))
    }

    /// Decides what `point` does on this hit (consuming fault budget).
    pub fn decide(&self, point: &str) -> FaultAction {
        if !self.armed.load(Ordering::Acquire) {
            return FaultAction::Proceed;
        }
        let mut points = self.points.lock().unwrap();
        let Some(p) = points.get_mut(point) else {
            return FaultAction::Proceed;
        };
        if p.rule.budget == Some(0) {
            return FaultAction::Proceed;
        }
        let action = if p.rule.panic_p > 0.0 && p.rng.gen_bool(p.rule.panic_p) {
            FaultAction::Panic
        } else if p.rule.delay_p > 0.0 && p.rng.gen_bool(p.rule.delay_p) {
            let micros = p.rule.max_delay.as_micros() as u64;
            let d = if micros == 0 {
                Duration::ZERO
            } else {
                Duration::from_micros(p.rng.gen_range(0u64..micros + 1))
            };
            FaultAction::Delay(d)
        } else {
            FaultAction::Proceed
        };
        if action != FaultAction::Proceed {
            if let Some(b) = &mut p.rule.budget {
                *b -= 1;
            }
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }

    /// Decides what a disk I/O at `point` (`disk.write` / `disk.read`)
    /// suffers on this hit, consuming fault budget like
    /// [`decide`](Self::decide). The draw order is torn → bit-flip →
    /// error, each evaluated only if the previous missed.
    pub fn decide_disk(&self, point: &str) -> DiskFaultAction {
        if !self.armed.load(Ordering::Acquire) {
            return DiskFaultAction::Proceed;
        }
        let mut points = self.points.lock().unwrap();
        let Some(p) = points.get_mut(point) else {
            return DiskFaultAction::Proceed;
        };
        if p.rule.budget == Some(0) {
            return DiskFaultAction::Proceed;
        }
        let action = if p.rule.torn_p > 0.0 && p.rng.gen_bool(p.rule.torn_p) {
            DiskFaultAction::Torn {
                frac: p.rng.next_f64(),
            }
        } else if p.rule.flip_p > 0.0 && p.rng.gen_bool(p.rule.flip_p) {
            DiskFaultAction::BitFlip {
                offset: p.rng.next_u64(),
            }
        } else if p.rule.error_p > 0.0 && p.rng.gen_bool(p.rule.error_p) {
            DiskFaultAction::Error
        } else {
            DiskFaultAction::Proceed
        };
        if action != DiskFaultAction::Proceed {
            if let Some(b) = &mut p.rule.budget {
                *b -= 1;
            }
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }

    /// Acts on [`decide`](Self::decide): sleeps on a delay, panics on a
    /// panic. The panic is injected *after* the plan's lock is released,
    /// so a caught unwind never poisons the plan.
    ///
    /// # Panics
    ///
    /// By design, when the point's rule draws [`FaultAction::Panic`].
    pub fn inject(&self, point: &str) {
        match self.decide(point) {
            FaultAction::Proceed => {}
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Panic => panic!("injected fault panic at {point:?}"),
        }
    }

    /// Total faults injected so far (panics + delays).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Seeded chaos client
// ---------------------------------------------------------------------------

/// What one chaos run saw. Counters only — protocol violations abort the
/// run with an error instead of being tallied.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Well-formed requests answered `200`.
    pub ok: u64,
    /// Well-formed requests shed or deadline-bounced (`503`).
    pub shed: u64,
    /// Malformed requests correctly rejected with their `4xx`.
    pub rejected: u64,
    /// Rounds that deliberately broke the connection (half-writes, torn
    /// reads, disconnects, garbage the server may drop silently).
    pub faulted: u64,
    /// Well-formed requests answered `500` by an *injected* panic (the
    /// body carries the recognizable marker). Only legal when the server
    /// runs an armed [`FaultPlan`]; any other `500` is a violation.
    pub panicked: u64,
}

impl ChaosReport {
    /// Folds another thread's report into this one.
    pub fn merge(&mut self, other: &ChaosReport) {
        self.rounds += other.rounds;
        self.ok += other.ok;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.faulted += other.faulted;
        self.panicked += other.panicked;
    }
}

/// Whether a `500` body is the transport's injected-panic conversion —
/// the one `500` a chaos run must tolerate (and count) rather than flag.
fn is_injected_panic(status: u16, body: &str) -> bool {
    status == 500 && body.contains("panic")
}

/// The paper's 11-point per-cache size axis (2 KB – 2 MB), as served.
pub const GRID_SIZES_KIB: [u64; 11] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// The paper's 16-point cycle-time axis.
pub const GRID_CYCLE_TIMES_NS: [u32; 16] = [
    20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64, 68, 72, 76, 80,
];

/// The simulate body for one 11×16 grid cell at `scale` (trace `mu3`).
pub fn grid_body(size_kib: u64, ct_ns: u32, scale: f64) -> String {
    format!(
        r#"{{"config": {{"cycle_time_ns": {ct_ns}, "l1": {{"size_kib": {size_kib}}}}}, "trace": {{"name": "mu3", "scale": {scale}}}}}"#
    )
}

/// One short-lived raw connection; chaos rounds intentionally leak/break
/// these, so nothing is pooled.
fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(addr)?;
    s.set_nodelay(true)?;
    s.set_read_timeout(Some(Duration::from_secs(30)))?;
    s.set_write_timeout(Some(Duration::from_secs(30)))?;
    Ok(s)
}

fn send_request(s: &mut TcpStream, method: &str, path: &str, body: &str) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes())?;
    s.write_all(body.as_bytes())
}

/// Reads the whole `Connection: close` response and returns `(status, body)`.
fn read_response(s: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no response head"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok((status, body))
}

/// One well-formed round trip on a fresh connection.
fn roundtrip(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut s = dial(addr)?;
    send_request(&mut s, method, path, body)?;
    read_response(&mut s)
}

/// Extracts `"key": "<hex>"` from a simulate response without a JSON
/// parser (the chaos client stays deliberately dumb about bodies).
fn extract_key(body: &str) -> Option<String> {
    let at = body.find("\"key\"")?;
    let rest = &body[at + 5..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Runs `rounds` seeded chaos rounds against the server at `addr`.
///
/// Grid cells come from the 11×16 paper grid at `scale`. Well-formed
/// requests must answer `200` (or `503` when the server sheds, or the
/// recognizable injected-panic `500` when the server runs an armed
/// [`FaultPlan`]); malformed ones must answer their proper `4xx` or see
/// the connection closed.
///
/// # Errors
///
/// A human-readable protocol violation (the server answered something it
/// never should), or an I/O error dialing the server for a *well-formed*
/// round — misbehaving rounds swallow I/O errors, they are the point.
pub fn run_chaos_client(addr: &str, seed: u64, scale: f64, rounds: usize) -> Result<ChaosReport, String> {
    let mut rng = SplitMix64::from_seed(seed);
    let mut report = ChaosReport::default();
    let mut keys: Vec<String> = Vec::new();
    let cells = GRID_SIZES_KIB.len() * GRID_CYCLE_TIMES_NS.len();

    for round in 0..rounds {
        report.rounds += 1;
        // Walk the grid in round order so every thread covers all 176
        // cells across its run; the *action* per cell is the seeded draw.
        let cell = round % cells;
        let size_kib = GRID_SIZES_KIB[cell / GRID_CYCLE_TIMES_NS.len()];
        let ct_ns = GRID_CYCLE_TIMES_NS[cell % GRID_CYCLE_TIMES_NS.len()];
        let body = grid_body(size_kib, ct_ns, scale);

        match rng.gen_range(0u32..10) {
            // 0–3: well-formed simulate (the bulk of the traffic).
            0..=3 => {
                let (status, resp) = roundtrip(addr, "POST", "/v1/simulate", &body)
                    .map_err(|e| format!("simulate round {round}: {e}"))?;
                match status {
                    200 => {
                        report.ok += 1;
                        if let Some(k) = extract_key(&resp) {
                            if !keys.contains(&k) {
                                keys.push(k);
                            }
                        }
                    }
                    503 => report.shed += 1,
                    s if is_injected_panic(s, &resp) => report.panicked += 1,
                    other => {
                        return Err(format!(
                            "simulate round {round}: well-formed request answered {other}: {resp}"
                        ))
                    }
                }
            }
            // 4: well-formed replay of a key we hold.
            4 => {
                let Some(k) = keys.get(rng.gen_range(0usize..keys.len().max(1))) else {
                    continue;
                };
                let rbody = format!(r#"{{"key": "{k}", "cycle_times_ns": [{ct_ns}]}}"#);
                let (status, resp) = roundtrip(addr, "POST", "/v1/replay", &rbody)
                    .map_err(|e| format!("replay round {round}: {e}"))?;
                match status {
                    200 => report.ok += 1,
                    503 => report.shed += 1,
                    // The key may have been evicted under a tight budget.
                    404 => report.rejected += 1,
                    s if is_injected_panic(s, &resp) => report.panicked += 1,
                    other => {
                        return Err(format!(
                            "replay round {round}: well-formed replay answered {other}: {resp}"
                        ))
                    }
                }
            }
            // 5: health/stats probes.
            5 => {
                let path = if rng.gen_bool(0.5) { "/healthz" } else { "/v1/stats" };
                let (status, resp) = roundtrip(addr, "GET", path, "")
                    .map_err(|e| format!("probe round {round}: {e}"))?;
                if is_injected_panic(status, &resp) {
                    report.panicked += 1;
                } else if status != 200 {
                    return Err(format!("probe round {round}: {path} answered {status}: {resp}"));
                } else {
                    report.ok += 1;
                }
            }
            // 6: half-written head, then hang up.
            6 => {
                report.faulted += 1;
                if let Ok(mut s) = dial(addr) {
                    let head = format!("POST /v1/simulate HTTP/1.1\r\nContent-Length: {}\r\n", body.len());
                    let cut = rng.gen_range(1usize..head.len());
                    let _ = s.write_all(head[..cut].as_bytes());
                    // Drop: the server must time the torso out or reap the
                    // closed socket, never park a worker.
                }
            }
            // 7: full head, mid-body disconnect.
            7 => {
                report.faulted += 1;
                if let Ok(mut s) = dial(addr) {
                    let head = format!(
                        "POST /v1/simulate HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                        body.len()
                    );
                    let cut = rng.gen_range(0usize..body.len());
                    let _ = s.write_all(head.as_bytes());
                    let _ = s.write_all(body[..cut].as_bytes());
                }
            }
            // 8: torn read — send a valid request, read a few bytes of the
            // response, vanish. The server's write must not wedge.
            8 => {
                report.faulted += 1;
                if let Ok(mut s) = dial(addr) {
                    if send_request(&mut s, "GET", "/v1/stats", "").is_ok() {
                        let mut tiny = [0u8; 3];
                        let _ = s.read(&mut tiny);
                    }
                }
            }
            // 9: malformed on purpose — garbage bytes or an oversized
            // Content-Length claim. Expect the proper 4xx (or a drop).
            _ => {
                if rng.gen_bool(0.5) {
                    let mut garbage = vec![0u8; rng.gen_range(1usize..512)];
                    rng.fill(&mut garbage);
                    report.faulted += 1;
                    if let Ok(mut s) = dial(addr) {
                        let _ = s.write_all(&garbage);
                        let _ = s.write_all(b"\r\n\r\n");
                        // Any answer (400/431) or a close is acceptable for
                        // arbitrary bytes; never a hang (read timeout guards).
                        let _ = read_response(&mut s);
                    }
                } else {
                    let mut s = dial(addr).map_err(|e| format!("oversize round {round}: {e}"))?;
                    let head = "POST /v1/simulate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
                    if s.write_all(head.as_bytes()).is_ok() {
                        match read_response(&mut s) {
                            Ok((413, _)) => report.rejected += 1,
                            Ok((other, resp)) => {
                                return Err(format!(
                                    "oversize round {round}: expected 413, got {other}: {resp}"
                                ))
                            }
                            // The server may also just drop us.
                            Err(_) => report.faulted += 1,
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plans_always_proceed() {
        let plan = FaultPlan::inert();
        for _ in 0..100 {
            assert_eq!(plan.decide("serve.handle"), FaultAction::Proceed);
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn panic_once_fires_exactly_once() {
        let plan = FaultPlan::seeded(7).panic_once("serve.handle");
        assert_eq!(plan.decide("serve.handle"), FaultAction::Panic);
        for _ in 0..50 {
            assert_eq!(plan.decide("serve.handle"), FaultAction::Proceed);
        }
        assert_eq!(plan.injected(), 1);
        // Unarmed points are untouched.
        assert_eq!(plan.decide("serve.record"), FaultAction::Proceed);
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<FaultAction> {
            let plan = FaultPlan::seeded(seed).arm_delay(
                "p",
                0.5,
                Duration::from_millis(2),
                None,
            );
            (0..64).map(|_| plan.decide("p")).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds must differ");
        let mixed = run(42)
            .iter()
            .any(|a| matches!(a, FaultAction::Delay(_)))
            && run(42).iter().any(|a| *a == FaultAction::Proceed);
        assert!(mixed, "p=0.5 over 64 draws must mix actions");
    }

    #[test]
    fn inject_panics_with_a_recognizable_message() {
        let plan = FaultPlan::seeded(1).panic_once("boom");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.inject("boom")))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault panic"), "{msg}");
        // The plan survives its own panic (no poisoned lock).
        assert_eq!(plan.decide("boom"), FaultAction::Proceed);
    }

    #[test]
    fn budgets_cap_total_injections() {
        let plan = FaultPlan::seeded(3).arm_delay("p", 1.0, Duration::ZERO, Some(3));
        let delays = (0..10)
            .filter(|_| matches!(plan.decide("p"), FaultAction::Delay(_)))
            .count();
        assert_eq!(delays, 3);
    }

    #[test]
    fn key_extraction_is_tolerant() {
        assert_eq!(
            extract_key(r#"{"key": "00ff00ff00ff00ff", "cached": true}"#).as_deref(),
            Some("00ff00ff00ff00ff")
        );
        assert_eq!(extract_key("{}"), None);
    }
}
