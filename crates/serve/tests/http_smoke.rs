//! End-to-end exercise of the HTTP server over real sockets: simulate,
//! replay (bit-identical to a direct `Simulator::run`), stats, error
//! paths, concurrent clients coalescing on one recording, and shutdown.

use cachetime::{Simulator, SystemConfig};
use cachetime_serve::client::HttpClient;
use cachetime_serve::{api, serve, ServerConfig};
use cachetime_trace::catalog;
use cachetime_types::Json;
use std::sync::{Arc, Barrier};

fn start() -> (cachetime_serve::ServerHandle, String) {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

#[test]
fn full_request_cycle_over_real_sockets() {
    let (handle, addr) = start();
    let mut client = HttpClient::connect(&addr).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Json::parse(&body).unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Simulate: first call records, second is served from the store.
    let sim_body = r#"{"trace": {"name": "mu3", "scale": 0.005}}"#;
    let (status, body) = client.post("/v1/simulate", sim_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let first = Json::parse(&body).unwrap();
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let key = first.get("key").and_then(Json::as_str).unwrap().to_string();

    let (_, body) = client.post("/v1/simulate", sim_body).unwrap();
    let second = Json::parse(&body).unwrap();
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("result"), first.get("result"));

    // Bit-identity: the served result equals a direct in-process
    // simulation of the same configuration and workload.
    let config = SystemConfig::paper_default().unwrap();
    let direct = Simulator::new(&config).run(&catalog::mu3(0.005).generate());
    assert_eq!(
        first.get("result"),
        Some(&api::sim_result_to_json(&direct)),
        "server response must be bit-identical to Simulator::run"
    );

    // Replay over a cycle-time axis; the 40 ns point reproduces simulate.
    let replay_body = format!(r#"{{"key": "{key}", "cycle_times_ns": [40, 20, 80]}}"#);
    let (status, body) = client.post("/v1/replay", &replay_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let replay = Json::parse(&body).unwrap();
    let results = replay.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(Some(&results[0]), first.get("result"));

    // Stats reflect the traffic so far.
    let (status, body) = client.get("/v1/stats").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(&body).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(store.get("misses").and_then(Json::as_u64), Some(1));
    assert!(store.get("hits").and_then(Json::as_u64).unwrap() >= 2);
    assert_eq!(store.get("entries").and_then(Json::as_u64), Some(1));
    let latency = stats.get("latency").unwrap();
    assert_eq!(
        latency.get("simulate").unwrap().get("count").and_then(Json::as_u64),
        Some(2)
    );

    // Error paths stay JSON.
    let (status, body) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    assert!(Json::parse(&body).unwrap().get("error").is_some());
    let (status, _) = client.post("/v1/simulate", "{not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .post("/v1/replay", r#"{"key": "ffffffffffffffff", "cycle_times_ns": [40]}"#)
        .unwrap();
    assert_eq!(status, 404, "unknown keys are a 404, not a 500");

    // Shutdown: acknowledged, then every thread exits.
    let (status, _) = client.post("/v1/shutdown", "").unwrap();
    assert_eq!(status, 200);
    handle.join();
}

#[test]
fn concurrent_clients_share_one_recording() {
    let (handle, addr) = start();
    const CLIENTS: usize = 4;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).unwrap();
                barrier.wait();
                let (status, body) = client
                    .post("/v1/simulate", r#"{"trace": {"name": "savec", "scale": 0.004}}"#)
                    .unwrap();
                assert_eq!(status, 200, "{body}");
                Json::parse(&body).unwrap().get("result").unwrap().to_string()
            })
        })
        .collect();
    let results: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "all clients must see the identical result");
    }

    let mut client = HttpClient::connect(&addr).unwrap();
    let (_, body) = client.get("/v1/stats").unwrap();
    let stats = Json::parse(&body).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(
        store.get("misses").and_then(Json::as_u64),
        Some(1),
        "one recording total across {CLIENTS} concurrent clients"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn replay_honors_a_custom_timing_base() {
    let (handle, addr) = start();
    let mut client = HttpClient::connect(&addr).unwrap();
    let (_, body) = client
        .post("/v1/simulate", r#"{"trace": {"name": "mu3", "scale": 0.004}}"#)
        .unwrap();
    let key = Json::parse(&body)
        .unwrap()
        .get("key")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Same axis point, two different memory speeds: results must differ.
    let slow = format!(
        r#"{{"key": "{key}", "cycle_times_ns": [40], "timing": {{"memory": {{"read_ns": 1200}}}}}}"#
    );
    let fast = format!(
        r#"{{"key": "{key}", "cycle_times_ns": [40], "timing": {{"memory": {{"read_ns": 100}}}}}}"#
    );
    let (status, slow_body) = client.post("/v1/replay", &slow).unwrap();
    assert_eq!(status, 200, "{slow_body}");
    let (status, fast_body) = client.post("/v1/replay", &fast).unwrap();
    assert_eq!(status, 200, "{fast_body}");
    let cycles = |body: &str| {
        Json::parse(body).unwrap().get("results").unwrap().as_array().unwrap()[0]
            .get("cycles")
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert!(
        cycles(&slow_body) > cycles(&fast_body),
        "slower memory must cost cycles"
    );

    handle.shutdown();
    handle.join();
}
