//! The two-phase engine: a behavioral pass that records an [`EventTrace`],
//! and a timing replay that reprices it under any clock/memory setting.
//!
//! The paper's methodology holds a cache *organization* fixed and
//! re-evaluates it across cycle times and memory speeds (the §3 speed–size
//! grid crosses 11 sizes with 16 cycle times; the §5 grids cross block
//! sizes with memory latencies). Direct simulation re-runs the whole trace
//! for every grid cell even though the cache *behavior* — hits, misses,
//! victims, TLB walks — is identical along the whole timing axis. The
//! two-phase pipeline factors that redundancy out:
//!
//! * **Phase A** ([`BehavioralSim`]): run the trace once per organization
//!   through the first-level caches and MMU only — no clock, no memory —
//!   and emit a compact [`EventTrace`]. Runs of all-hit couplets collapse
//!   into counters, so the trace length is proportional to the *miss and
//!   store-downstream traffic*, not the reference count.
//! * **Phase B** ([`replay`]): walk the events under a concrete
//!   [`SystemConfig`], driving the exact same downstream hierarchy
//!   (write buffers, mid-level caches, main memory) the direct engine
//!   uses. The result is bit-identical to [`Simulator::run`] — asserted
//!   in-tree by the equivalence and property tests.
//!
//! ```
//! use cachetime::{replay, simulate, BehavioralSim, SystemConfig};
//! use cachetime_trace::catalog;
//! use cachetime_types::CycleTime;
//!
//! let base = SystemConfig::paper_default()?;
//! let trace = catalog::savec(0.01).generate();
//! let events = BehavioralSim::new(&base.organization()).record(&trace);
//! for ct in [20u32, 40, 80] {
//!     let config = SystemConfig::builder()
//!         .cycle_time(CycleTime::from_ns(ct)?)
//!         .build()?;
//!     let repriced = replay(&events, &config).expect("same organization");
//!     assert_eq!(repriced, simulate(&config, &trace));
//! }
//! # Ok::<(), cachetime_types::ConfigError>(())
//! ```

use crate::hierarchy::Downstream;
use crate::result::{CoupletHistogram, SimResult};
use crate::system::{FillPolicy, OrgConfig, SystemConfig};
use cachetime_cache::{Cache, CacheStats, ReadOutcome, WriteOutcome};
use cachetime_mmu::{Mmu, MmuStats};
use cachetime_trace::Trace;
use cachetime_types::{
    AccessEvent, ConfigError, CoupletClass, Cycles, EventOp, MemRef, RefEvent, VictimBlock,
};

/// A recorded behavioral pass: the timing-free events of one
/// `(organization, trace)` pairing, plus the behavioral statistics that no
/// replay can change (first-level cache and MMU counters, reference and
/// couplet counts).
///
/// Valid for repricing under any timing half — cycle time, memory
/// parameters, write buffers, mid-level caches, hit costs, issue and fill
/// policies — because nothing above the write buffers depends on the
/// clock. Produced by [`BehavioralSim::record`], consumed by [`replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    org: OrgConfig,
    ops: Vec<EventOp>,
    /// References in the measured (post-warm-start) window.
    refs: u64,
    /// Total couplets over the whole trace.
    couplets: u64,
    l1i: CacheStats,
    l1d: CacheStats,
    mmu: Option<MmuStats>,
}

impl EventTrace {
    /// The organization this trace was recorded under. [`replay`] rejects
    /// configurations whose organization half differs.
    pub fn organization(&self) -> &OrgConfig {
        &self.org
    }

    /// The recorded event stream.
    pub fn ops(&self) -> &[EventOp] {
        &self.ops
    }

    /// References in the measured window.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Total couplets over the whole trace (warm-up included).
    pub fn couplets(&self) -> u64 {
        self.couplets
    }

    /// First-level instruction-cache statistics of the measured window.
    pub fn l1i_stats(&self) -> &CacheStats {
        &self.l1i
    }

    /// First-level data-cache statistics of the measured window.
    pub fn l1d_stats(&self) -> &CacheStats {
        &self.l1d
    }

    /// Approximate heap-plus-inline size of this trace in bytes.
    ///
    /// Counts the op vector's capacity plus the fixed header — the only
    /// allocations of consequence — so a byte-budgeted store (the
    /// simulation server's LRU) can account for what eviction would
    /// actually reclaim.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.ops.capacity() * std::mem::size_of::<EventOp>()
    }

    /// The compression the run-length encoding achieved: recorded ops per
    /// couplet (1.0 = nothing collapsed; paper-like hit ratios give a few
    /// percent).
    pub fn ops_per_couplet(&self) -> f64 {
        if self.couplets == 0 {
            0.0
        } else {
            self.ops.len() as f64 / self.couplets as f64
        }
    }

    /// MMU statistics of the measured window, if the organization has a
    /// translation layer.
    pub fn mmu_stats(&self) -> Option<&MmuStats> {
        self.mmu.as_ref()
    }

    /// Reassembles a trace from its decoded parts ([`crate::codec`] only).
    ///
    /// Callers must provide parts that came out of `encode`; the codec's
    /// round-trip tests pin that the result is bit-identical to the
    /// original recording.
    pub(crate) fn from_raw_parts(
        org: OrgConfig,
        ops: Vec<EventOp>,
        refs: u64,
        couplets: u64,
        l1i: CacheStats,
        l1d: CacheStats,
        mmu: Option<MmuStats>,
    ) -> Self {
        EventTrace {
            org,
            ops,
            refs,
            couplets,
            l1i,
            l1d,
            mmu,
        }
    }
}

/// Phase A: the timing-free behavioral simulator.
///
/// Runs the first-level caches and the (optional) MMU over a trace in
/// couplet order — the same state machines, touched in the same order, as
/// the direct engine — and records what happened instead of when.
#[derive(Debug, Clone)]
pub struct BehavioralSim {
    org: OrgConfig,
    l1i: Cache,
    l1d: Cache,
    mmu: Option<Mmu>,
}

impl BehavioralSim {
    /// Builds a cold behavioral machine for one organization.
    pub fn new(org: &OrgConfig) -> Self {
        BehavioralSim {
            org: *org,
            l1i: Cache::new(*org.l1i()),
            l1d: Cache::new(*org.l1d()),
            mmu: org.translation().map(|t| Mmu::new(*t)),
        }
    }

    /// Records the behavioral events of `trace` from power-on state.
    ///
    /// The machine is reset first, so repeated `record` calls are
    /// independent.
    pub fn record(&mut self, trace: &Trace) -> EventTrace {
        self.record_refs(trace.refs().iter().copied(), trace.warm_start())
    }

    /// Streaming variant of [`record`](Self::record): consumes references
    /// from an iterator. `warm_start` is the index of the first measured
    /// reference.
    pub fn record_refs(
        &mut self,
        refs: impl IntoIterator<Item = MemRef>,
        warm_start: usize,
    ) -> EventTrace {
        let obs = cachetime_obs::global();
        let mut span = obs.span("core_record");
        *self = BehavioralSim::new(&self.org);
        let split = self.org.is_split();
        let mut refs = refs.into_iter().peekable();
        // Hit runs collapse most couplets, so ops land well under one per
        // four references on realistic traces; start there to keep the
        // push path off the reallocation slow path.
        let mut ops: Vec<EventOp> = Vec::with_capacity(refs.size_hint().0 / 4);

        let mut i = 0usize;
        let mut couplets = 0u64;
        let mut warmed = warm_start == 0;
        // The open hit run accumulates in a register-resident array and is
        // flushed into `ops` only when a non-trivial couplet (or the warm
        // boundary) ends the stretch — all-hit couplets never touch the
        // ops vector at all.
        let mut pending = [0u32; CoupletClass::COUNT];
        // This loop must mirror `Simulator::run_refs` exactly: same warm
        // check, same pairing rule, same per-couplet access order.
        while let Some(a) = refs.next() {
            if !warmed && i >= warm_start {
                warmed = true;
                Self::flush_hits(&mut ops, &mut pending);
                ops.push(EventOp::WarmBoundary);
                self.l1i.reset_stats();
                self.l1d.reset_stats();
                if let Some(mmu) = &mut self.mmu {
                    mmu.reset_stats();
                }
            }
            let pairable = split
                && a.kind == cachetime_types::AccessKind::IFetch
                && refs
                    .peek()
                    .is_some_and(|d| d.kind.is_data() && d.pid == a.pid);
            if pairable {
                let d = refs.next().expect("peeked");
                self.record_couplet(&mut ops, &mut pending, Some(a), Some(d));
                i += 2;
            } else if a.kind.is_data() {
                self.record_couplet(&mut ops, &mut pending, None, Some(a));
                i += 1;
            } else {
                self.record_couplet(&mut ops, &mut pending, Some(a), None);
                i += 1;
            }
            couplets += 1;
        }
        Self::flush_hits(&mut ops, &mut pending);

        // Phase accounting: the span's duration histogram plus raw
        // totals give events/sec without touching the record hot loop
        // (one lookup + a few atomic adds per *call*, not per ref).
        span.set_work(i as u64);
        obs.counter("cachetime_record_refs_total", &[]).add(i as u64);
        obs.counter("cachetime_record_ops_total", &[]).add(ops.len() as u64);

        EventTrace {
            org: self.org,
            ops,
            refs: (i - warm_start.min(i)) as u64,
            couplets,
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            mmu: self.mmu.as_ref().map(|m| *m.stats()),
        }
    }

    /// Closes the open hit run, if any, by appending it to `ops`.
    #[inline]
    fn flush_hits(ops: &mut Vec<EventOp>, pending: &mut [u32; CoupletClass::COUNT]) {
        if pending.iter().any(|&c| c != 0) {
            ops.push(EventOp::HitRun { counts: *pending });
            *pending = [0u32; CoupletClass::COUNT];
        }
    }

    /// Runs one couplet through the behavioral state machines and appends
    /// the resulting op (extending the open hit run where possible).
    fn record_couplet(
        &mut self,
        ops: &mut Vec<EventOp>,
        pending: &mut [u32; CoupletClass::COUNT],
        iref: Option<MemRef>,
        dref: Option<MemRef>,
    ) {
        let ie = iref.map(|r| {
            let (r, walk_cycles) = self.translate(r);
            let access = if self.org.is_split() {
                Self::read_event(&mut self.l1i, r)
            } else {
                Self::read_event(&mut self.l1d, r)
            };
            RefEvent {
                addr: r.addr,
                pid: r.pid,
                walk_cycles,
                access,
            }
        });
        let de = dref.map(|r| {
            let (r, walk_cycles) = self.translate(r);
            let access = if r.kind == cachetime_types::AccessKind::Store {
                Self::write_event(&mut self.l1d, r)
            } else {
                Self::read_event(&mut self.l1d, r)
            };
            RefEvent {
                addr: r.addr,
                pid: r.pid,
                walk_cycles,
                access,
            }
        });

        match trivial_class(ie.as_ref(), de.as_ref()) {
            Some(class) => {
                let i = class.index();
                if pending[i] == u32::MAX {
                    Self::flush_hits(ops, pending);
                }
                pending[i] += 1;
            }
            None => {
                Self::flush_hits(ops, pending);
                ops.push(EventOp::Couplet {
                    iref: ie,
                    dref: de,
                });
            }
        }
    }

    /// MMU front end: identical to the direct engine's.
    fn translate(&mut self, r: MemRef) -> (MemRef, u64) {
        match &mut self.mmu {
            None => (r, 0),
            Some(mmu) => {
                let (phys, hit) = mmu.translate(r.addr, r.pid);
                let penalty = if hit { 0 } else { mmu.miss_penalty() };
                (MemRef::new(phys, r.kind, r.pid), penalty)
            }
        }
    }

    fn read_event(cache: &mut Cache, r: MemRef) -> AccessEvent {
        let fetch_words = cache.config().fetch().words();
        let block_words = cache.config().block().words();
        match cache.read(r.addr, r.pid) {
            ReadOutcome::Hit => AccessEvent::ReadHit,
            ReadOutcome::SlowHit => AccessEvent::ReadSlowHit,
            ReadOutcome::VictimHit => AccessEvent::ReadVictimHit,
            ReadOutcome::Miss { fill_words, victim } => AccessEvent::ReadMiss {
                fetch_start: cachetime_types::WordAddr::new(
                    r.addr.value() & !(fetch_words as u64 - 1),
                ),
                fill_words,
                victim: victim.map(|ev| VictimBlock {
                    addr: ev.addr.first_word(block_words),
                    words: ev.words,
                }),
            },
        }
    }

    fn write_event(cache: &mut Cache, r: MemRef) -> AccessEvent {
        let block_words = cache.config().block().words();
        match cache.write(r.addr, r.pid) {
            WriteOutcome::Hit { through } => AccessEvent::WriteHit { through },
            WriteOutcome::VictimHit { through } => AccessEvent::WriteVictimHit { through },
            WriteOutcome::MissNoAllocate => AccessEvent::WriteMissAround,
            WriteOutcome::MissAllocate {
                fill_words,
                victim,
                through,
            } => AccessEvent::WriteMissAllocate {
                fetch_start: cachetime_types::WordAddr::new(
                    r.addr.value() & !(fill_words as u64 - 1),
                ),
                fill_words,
                victim: victim.map(|ev| VictimBlock {
                    addr: ev.addr.first_word(block_words),
                    words: ev.words,
                }),
                through,
            },
        }
    }
}

/// Classifies a couplet as repriceable-in-O(1): every present half must be
/// a plain hit (no walk, nothing downstream). Returns its shape, or `None`
/// if the couplet must be replayed event by event.
fn trivial_class(ie: Option<&RefEvent>, de: Option<&RefEvent>) -> Option<CoupletClass> {
    if let Some(e) = ie {
        if e.walk_cycles != 0 || !matches!(e.access, AccessEvent::ReadHit) {
            return None;
        }
    }
    match de {
        None => ie.map(|_| CoupletClass::Ifetch),
        Some(e) => {
            if e.walk_cycles != 0 {
                return None;
            }
            match e.access {
                AccessEvent::ReadHit => Some(if ie.is_some() {
                    CoupletClass::IfetchLoad
                } else {
                    CoupletClass::Load
                }),
                AccessEvent::WriteHit { through: false } => Some(if ie.is_some() {
                    CoupletClass::IfetchStore
                } else {
                    CoupletClass::Store
                }),
                _ => None,
            }
        }
    }
}

/// Phase B: reprices an [`EventTrace`] under `config`'s timing half.
///
/// The organization halves must match — the events were recorded by those
/// exact cache state machines. Everything in the timing half is free to
/// differ from whatever the trace was recorded alongside: cycle time,
/// memory parameters, write-buffer depths, mid-level caches, hit costs,
/// dual issue, and fill policy.
///
/// # Errors
///
/// [`ConfigError::Inconsistent`] if `config.organization()` differs from
/// [`EventTrace::organization`].
pub fn replay(events: &EventTrace, config: &SystemConfig) -> Result<SimResult, ConfigError> {
    let mut results = replay_many(events, std::slice::from_ref(config))?;
    Ok(results.pop().expect("one result per config"))
}

/// Reprices an [`EventTrace`] under several timing settings in one walk of
/// the event stream.
///
/// Equivalent to calling [`replay`] once per configuration, but the ops —
/// the bulk of the working set for a long trace — stream through the
/// cache hierarchy once instead of once per timing point, which is where
/// most of a repricing sweep's wall time goes. Each configuration gets its
/// own independent downstream machine, so results are bit-identical to
/// the one-at-a-time path.
///
/// # Errors
///
/// [`ConfigError::Inconsistent`] if any configuration's organization half
/// differs from [`EventTrace::organization`].
pub fn replay_many(
    events: &EventTrace,
    configs: &[SystemConfig],
) -> Result<Vec<SimResult>, ConfigError> {
    for config in configs {
        if config.organization() != events.org {
            return Err(ConfigError::Inconsistent {
                what: "replay configuration's organization differs from the recorded event trace",
            });
        }
    }
    let obs = cachetime_obs::global();
    let mut span = obs.span("core_replay");
    span.set_work(events.refs * configs.len() as u64);
    obs.counter("cachetime_replay_refs_total", &[])
        .add(events.refs * configs.len() as u64);
    obs.counter("cachetime_replay_configs_total", &[])
        .add(configs.len() as u64);
    let mut rs: Vec<Replayer> = configs.iter().map(Replayer::new).collect();
    // On the sweeps this call exists for, only the *memory* quantization
    // varies between configs — cache hits cost processor cycles, so every
    // replayer prices a hit run identically. Resolve the per-class costs
    // and histogram buckets once up front and reprice each run with one
    // pass over the counts instead of one per replayer.
    let shared_hits = rs.iter().all(|r| r.hit_costs == rs[0].hit_costs);
    let hit_costs = rs.first().map(|r| r.hit_costs).unwrap_or_default();
    let hit_buckets = hit_costs.map(CoupletHistogram::bucket_of);
    for op in &events.ops {
        match op {
            EventOp::HitRun { counts } => {
                if shared_hits {
                    let mut d_now = 0u64;
                    let mut n_total = 0u64;
                    // At most `COUNT` distinct (bucket, count) pairs; with
                    // 1–2-cycle hits usually just one.
                    let mut pairs = [(0usize, 0u64); CoupletClass::COUNT];
                    let mut np = 0;
                    for i in 0..CoupletClass::COUNT {
                        let n = counts[i] as u64;
                        if n == 0 {
                            continue;
                        }
                        d_now += hit_costs[i] * n;
                        n_total += n;
                        match pairs[..np].iter_mut().find(|p| p.0 == hit_buckets[i]) {
                            Some(p) => p.1 += n,
                            None => {
                                pairs[np] = (hit_buckets[i], n);
                                np += 1;
                            }
                        }
                    }
                    for r in &mut rs {
                        r.now += d_now;
                        r.couplets += n_total;
                        for &(b, n) in &pairs[..np] {
                            r.latency.add_to_bucket(b, n);
                        }
                    }
                } else {
                    for r in &mut rs {
                        r.step_hit_run(counts);
                    }
                }
            }
            EventOp::Couplet { iref, dref } => {
                let (i, d) = (iref.as_ref(), dref.as_ref());
                // Recorded couplets are overwhelmingly a lone, walk-free
                // read miss (typically ~90%); decode that shape once here
                // instead of once per replayer.
                let lone = match (i, d) {
                    (Some(e), None) | (None, Some(e)) => Some(e),
                    _ => None,
                };
                match lone {
                    Some(e) if e.walk_cycles == 0 => match e.access {
                        AccessEvent::ReadMiss {
                            fetch_start,
                            fill_words,
                            victim,
                        } => {
                            let victim = victim.map(|v| (v.addr, v.words));
                            let offset = (e.addr.value() - fetch_start.value()) as u32;
                            for r in &mut rs {
                                r.step_lone_read_miss(
                                    e.pid,
                                    fetch_start,
                                    fill_words,
                                    victim,
                                    offset,
                                );
                            }
                        }
                        _ => {
                            for r in &mut rs {
                                r.step_couplet(i, d);
                            }
                        }
                    },
                    _ => {
                        for r in &mut rs {
                            r.step_couplet(i, d);
                        }
                    }
                }
            }
            EventOp::WarmBoundary => {
                for r in &mut rs {
                    r.warm_reset();
                }
            }
        }
    }
    Ok(rs
        .iter()
        .zip(configs)
        .map(|(r, config)| r.result(events, config))
        .collect())
}

/// Convenience: Phase A + Phase B in one call. Equivalent to
/// [`simulate`](crate::simulate) but through the two-phase pipeline; the
/// payoff comes from calling [`BehavioralSim::record`] once and
/// [`replay`] many times instead.
pub fn simulate_two_phase(config: &SystemConfig, trace: &Trace) -> SimResult {
    let events = BehavioralSim::new(&config.organization()).record(trace);
    replay(&events, config).expect("organization matches by construction")
}

/// The replay-side timing state: the clock and everything below L1.
///
/// The timing parameters are copied out of the [`SystemConfig`] once at
/// construction — replay visits tens of ops per couplet-equivalent of
/// work, so the hot loop should touch nothing but local state.
struct Replayer {
    down: Downstream,
    now: u64,
    couplets: u64,
    warm_cycle: u64,
    warm_couplets: u64,
    stall_cycles: u64,
    latency: CoupletHistogram,
    read_hit: u64,
    write_hit: u64,
    way_slow_hit: u64,
    victim_swap: u64,
    dual_issue: bool,
    fill_policy: FillPolicy,
    /// Cycles per all-hit couplet, indexed by [`CoupletClass::index`].
    hit_costs: [u64; CoupletClass::COUNT],
}

impl Replayer {
    fn new(config: &SystemConfig) -> Self {
        let rh = config.read_hit_cycles();
        let wh = config.write_hit_cycles();
        let dual = config.dual_issue();
        let mut hit_costs = [0u64; CoupletClass::COUNT];
        for class in CoupletClass::ALL {
            hit_costs[class.index()] = match class {
                CoupletClass::Ifetch | CoupletClass::Load => rh,
                CoupletClass::Store => wh,
                CoupletClass::IfetchLoad => {
                    if dual {
                        rh
                    } else {
                        rh + rh
                    }
                }
                CoupletClass::IfetchStore => {
                    if dual {
                        rh.max(wh)
                    } else {
                        rh + wh
                    }
                }
            };
        }
        Replayer {
            down: Downstream::new(config),
            now: 0,
            couplets: 0,
            warm_cycle: 0,
            warm_couplets: 0,
            stall_cycles: 0,
            latency: CoupletHistogram::default(),
            read_hit: rh,
            write_hit: wh,
            way_slow_hit: config.way_slow_hit_cycles(),
            victim_swap: config.victim_swap_cycles(),
            dual_issue: dual,
            fill_policy: config.fill_policy(),
            hit_costs,
        }
    }

    /// Assembles the [`SimResult`] of a finished replay.
    fn result(&self, events: &EventTrace, config: &SystemConfig) -> SimResult {
        SimResult {
            cycle_time: config.cycle_time(),
            cycles: Cycles(self.now - self.warm_cycle),
            refs: events.refs,
            couplets: self.couplets - self.warm_couplets,
            l1i: events.l1i,
            l1d: events.l1d,
            l2: self.down.l2_stats(),
            l3: self.down.l3_stats(),
            mem: *self.down.mem_stats(),
            mmu: events.mmu,
            latency: self.latency,
            stall_cycles: Cycles(self.stall_cycles),
        }
    }

    /// The warm-start boundary: mirror of the direct engine's
    /// `reset_stats` (the behavioral counters were reset in Phase A).
    fn warm_reset(&mut self) {
        self.warm_cycle = self.now;
        self.warm_couplets = self.couplets;
        self.down.reset_stats();
        self.latency = CoupletHistogram::default();
        self.stall_cycles = 0;
    }

    /// Reprices a stretch of all-hit couplets in O(classes). Hit-only
    /// couplets never touch downstream state and complete in exactly their
    /// ideal time, so they advance the clock linearly with zero stall — in
    /// any order, which is why per-class counts suffice.
    #[inline]
    fn step_hit_run(&mut self, counts: &[u32; CoupletClass::COUNT]) {
        // Branchless on purpose: absent classes contribute n = 0 to the
        // histogram, clock, and couplet count, and the sparsity pattern of
        // `counts` is unpredictable enough that testing for zero costs
        // more than the five fused multiply-adds.
        for (i, &count) in counts.iter().enumerate() {
            let cost = self.hit_costs[i];
            let n = count as u64;
            self.latency.record_n(cost, n);
            self.now += cost * n;
            self.couplets += n;
        }
    }

    /// [`step_couplet`](Self::step_couplet) specialized for the dominant
    /// couplet shape: a single half, no TLB walk, read miss. Same
    /// arithmetic — whichever side the half was on, its issue time is
    /// `now` and its ideal time is one read hit — but the event is
    /// decoded by the caller, once for all replayers.
    #[inline]
    fn step_lone_read_miss(
        &mut self,
        pid: cachetime_types::Pid,
        fetch_start: cachetime_types::WordAddr,
        fill_words: u32,
        victim: Option<(cachetime_types::WordAddr, u32)>,
        offset: u32,
    ) {
        let now = self.now;
        let grant = self.down.fill_l1(now + 1, pid, fetch_start, fill_words, victim);
        let completion = match self.fill_policy {
            FillPolicy::WaitWholeBlock => grant.done,
            FillPolicy::EarlyContinuation => {
                grant.ready + self.down.upstream_transfer_cycles(offset + 1)
            }
            FillPolicy::LoadForward => grant.ready + self.down.upstream_transfer_cycles(1),
        };
        let done = completion.clamp(now + 1, grant.done);
        self.latency.record(done - now);
        self.stall_cycles += (done - now).saturating_sub(self.read_hit);
        self.now = done;
        self.couplets += 1;
    }

    /// Reprices one recorded couplet: the timing mirror of the direct
    /// engine's `step_couplet`, with cache outcomes read from the events
    /// instead of the cache.
    fn step_couplet(&mut self, iref: Option<&RefEvent>, dref: Option<&RefEvent>) {
        let now = self.now;
        let mut done = now;
        let mut ideal = 0u64;
        if let Some(e) = iref {
            ideal = ideal.max(self.read_hit);
            done = done.max(self.complete_read(e, now + e.walk_cycles));
        }
        if let Some(e) = dref {
            let issue = if self.dual_issue { now } else { done };
            let (c, this_ideal) = if e.access.is_write() {
                (self.complete_write(e, issue + e.walk_cycles), self.write_hit)
            } else {
                (self.complete_read(e, issue + e.walk_cycles), self.read_hit)
            };
            ideal = if self.dual_issue {
                ideal.max(this_ideal)
            } else {
                ideal + this_ideal
            };
            done = done.max(c);
        }
        debug_assert!(done > now, "a couplet must consume at least one cycle");
        self.latency.record(done - now);
        self.stall_cycles += (done - now).saturating_sub(ideal);
        self.now = done;
        self.couplets += 1;
    }

    /// Timing of a recorded load/ifetch; returns its completion cycle.
    fn complete_read(&mut self, e: &RefEvent, now: u64) -> u64 {
        match e.access {
            AccessEvent::ReadHit => now + self.read_hit,
            AccessEvent::ReadSlowHit => now + self.read_hit + self.way_slow_hit,
            AccessEvent::ReadVictimHit => now + self.read_hit + self.victim_swap,
            AccessEvent::ReadMiss {
                fetch_start,
                fill_words,
                victim,
            } => {
                let victim = victim.map(|v| (v.addr, v.words));
                // The miss is detected during the probe cycle; the fill
                // request goes downstream the cycle after.
                let grant = self
                    .down
                    .fill_l1(now + 1, e.pid, fetch_start, fill_words, victim);
                let completion = match self.fill_policy {
                    FillPolicy::WaitWholeBlock => grant.done,
                    FillPolicy::EarlyContinuation => {
                        let offset = (e.addr.value() - fetch_start.value()) as u32;
                        grant.ready + self.down.upstream_transfer_cycles(offset + 1)
                    }
                    FillPolicy::LoadForward => {
                        grant.ready + self.down.upstream_transfer_cycles(1)
                    }
                };
                completion.clamp(now + 1, grant.done)
            }
            _ => unreachable!("read completion on a write event"),
        }
    }

    /// Timing of a recorded store; returns its completion cycle.
    fn complete_write(&mut self, e: &RefEvent, now: u64) -> u64 {
        let whc = self.write_hit;
        match e.access {
            AccessEvent::WriteHit { through } => {
                let mut done = now + whc;
                if through {
                    let accepted = self.down.write_word_down(now + 1, e.pid, e.addr);
                    done = done.max(accepted + 1);
                }
                done
            }
            AccessEvent::WriteVictimHit { through } => {
                let mut done = now + whc + self.victim_swap;
                if through {
                    let accepted = self.down.write_word_down(now + 1, e.pid, e.addr);
                    done = done.max(accepted + 1);
                }
                done
            }
            AccessEvent::WriteMissAround => {
                let accepted = self.down.write_word_down(now + 1, e.pid, e.addr);
                (now + whc).max(accepted + 1)
            }
            AccessEvent::WriteMissAllocate {
                fetch_start,
                fill_words,
                victim,
                through,
            } => {
                let victim = victim.map(|v| (v.addr, v.words));
                let filled = self
                    .down
                    .fill_l1(now + 1, e.pid, fetch_start, fill_words, victim)
                    .done;
                let mut done = filled + 1; // the write itself
                if through {
                    let accepted = self.down.write_word_down(now + 1, e.pid, e.addr);
                    done = done.max(accepted + 1);
                }
                done
            }
            _ => unreachable!("write completion on a read event"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime_types::{Pid, WordAddr};

    fn trace_of(refs: Vec<MemRef>) -> Trace {
        Trace::new("t", refs, 0)
    }

    #[test]
    fn hit_runs_collapse() {
        let config = SystemConfig::paper_default().unwrap();
        let a = WordAddr::new(0x100);
        let refs: Vec<MemRef> = std::iter::once(MemRef::load(a, Pid(1)))
            .chain((0..1000).map(|_| MemRef::load(a, Pid(1))))
            .collect();
        let events = BehavioralSim::new(&config.organization()).record(&trace_of(refs));
        // One miss couplet + one run of 1000 hits.
        assert_eq!(events.ops().len(), 2);
        assert_eq!(events.couplets(), 1001);
        assert!(events.ops_per_couplet() < 0.01);
    }

    #[test]
    fn replay_rejects_a_different_organization() {
        let config = SystemConfig::paper_default().unwrap();
        let events = BehavioralSim::new(&config.organization())
            .record(&trace_of(vec![MemRef::load(WordAddr::new(0), Pid(1))]));
        let other_l1 = cachetime_cache::CacheConfig::builder(
            cachetime_types::CacheSize::from_kib(16).unwrap(),
        )
        .build()
        .unwrap();
        let other = SystemConfig::builder().l1_both(other_l1).build().unwrap();
        assert!(replay(&events, &other).is_err());
        assert!(replay(&events, &config).is_ok());
    }

    #[test]
    fn two_phase_matches_direct_on_a_smoke_trace() {
        let config = SystemConfig::paper_default().unwrap();
        let a = WordAddr::new(0x100);
        let conflict = WordAddr::new(0x40000);
        let refs = vec![
            MemRef::load(a, Pid(1)),
            MemRef::store(a, Pid(1)),
            MemRef::load(conflict, Pid(1)),
            MemRef::ifetch(WordAddr::new(0x2000), Pid(1)),
            MemRef::load(a, Pid(1)),
            MemRef::store(WordAddr::new(0x9999), Pid(2)),
        ];
        let t = Trace::new("t", refs, 2);
        let direct = crate::Simulator::new(&config).run(&t);
        assert_eq!(simulate_two_phase(&config, &t), direct);
    }

    #[test]
    fn one_behavioral_pass_reprices_the_whole_cycle_time_axis() {
        let base = SystemConfig::paper_default().unwrap();
        let refs: Vec<MemRef> = (0..400)
            .map(|i| match i % 3 {
                0 => MemRef::ifetch(WordAddr::new(i * 7 % 256), Pid(1)),
                1 => MemRef::load(WordAddr::new(i * 13 % 512), Pid(1)),
                _ => MemRef::store(WordAddr::new(i * 11 % 128), Pid(2)),
            })
            .collect();
        let t = Trace::new("t", refs, 50);
        let events = BehavioralSim::new(&base.organization()).record(&t);
        for ct in [20u32, 36, 56, 80] {
            let config = SystemConfig::builder()
                .cycle_time(cachetime_types::CycleTime::from_ns(ct).unwrap())
                .build()
                .unwrap();
            let direct = crate::Simulator::new(&config).run(&t);
            let repriced = replay(&events, &config).unwrap();
            assert_eq!(repriced, direct, "cycle time {ct}ns");
        }
    }

    #[test]
    fn empty_trace_replays_to_an_empty_result() {
        let config = SystemConfig::paper_default().unwrap();
        let events = BehavioralSim::new(&config.organization()).record_refs(std::iter::empty(), 0);
        let r = replay(&events, &config).unwrap();
        assert_eq!(r.refs, 0);
        assert_eq!(r.cycles.0, 0);
        assert_eq!(r.couplets, 0);
    }
}
