//! Deterministic segment-store behavior: spill/load round trips, restart
//! recovery, budget eviction, stale-temp cleanup, and injected faults.

use cachetime::{keyed, SystemConfig};
use cachetime_disk::{
    segment, AdoptOutcome, DiskConfig, DiskFault, DiskMetrics, DiskOp, SegmentStore, SpillResult,
};
use cachetime_trace::catalog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty scratch directory unique to this process and call.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cachetime-disk-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_trace(scale_ix: u64) -> (u64, cachetime::EventTrace) {
    let org = SystemConfig::paper_default().unwrap().organization();
    let workload = catalog::mu3(0.005 + scale_ix as f64 * 0.001);
    keyed::record(&org, &workload)
}

fn open(root: PathBuf, budget: u64) -> SegmentStore {
    SegmentStore::open(DiskConfig {
        root,
        budget_bytes: budget,
        quarantine_cap_bytes: 0,
    })
    .expect("open store")
}

#[test]
fn spill_load_round_trip() {
    let root = scratch("round-trip");
    let store = open(root.clone(), 0);
    let (key, trace) = sample_trace(0);
    assert_eq!(store.store(key, &trace).unwrap(), SpillResult::Written);
    assert_eq!(
        store.store(key, &trace).unwrap(),
        SpillResult::AlreadyPresent
    );
    assert!(store.contains(key));
    assert_eq!(store.segments(), 1);
    let back = store.load(key).expect("load");
    assert_eq!(back, trace);
    assert_eq!(store.metrics().spills(), 1);
    assert_eq!(store.metrics().loads(), 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_recovers_everything_written() {
    let root = scratch("restart");
    let mut written = Vec::new();
    {
        let store = open(root.clone(), 0);
        for i in 0..3 {
            let (key, trace) = sample_trace(i);
            store.store(key, &trace).unwrap();
            written.push((key, trace));
        }
    }
    // A new store on the same directory starts cold, then scans warm.
    let store = open(root.clone(), 0);
    assert_eq!(store.segments(), 0);
    let mut recovered = Vec::new();
    let report = store.scan(|key, trace| recovered.push((key, trace))).unwrap();
    assert_eq!(report.recovered, 3);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.stale_tmp, 0);
    recovered.sort_by_key(|(k, _)| *k);
    written.sort_by_key(|(k, _)| *k);
    assert_eq!(recovered, written, "recovery must be bit-identical");
    assert_eq!(store.segments(), 3);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scan_removes_stale_temp_files() {
    let root = scratch("stale-tmp");
    let store = open(root.clone(), 0);
    let (key, trace) = sample_trace(0);
    store.store(key, &trace).unwrap();
    std::fs::write(root.join("0123456789abcdef.tmp-1-0"), b"half a segment").unwrap();
    let report = store.scan(|_, _| {}).unwrap();
    assert_eq!(report.recovered, 1);
    assert_eq!(report.stale_tmp, 1);
    assert!(!root.join("0123456789abcdef.tmp-1-0").exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn budget_evicts_oldest_first() {
    let root = scratch("budget");
    let unbounded = open(root.clone(), 0);
    let (k0, t0) = sample_trace(0);
    unbounded.store(k0, &t0).unwrap();
    let one_len = unbounded.bytes();
    drop(unbounded);

    // Budget for two segments of this size; spill three.
    let store = open(root.clone(), one_len * 2 + one_len / 2);
    store.scan(|_, _| {}).unwrap();
    let (k1, t1) = sample_trace(1);
    let (k2, t2) = sample_trace(2);
    // Push mtimes apart: coarse filesystems timestamp at second granularity.
    std::thread::sleep(std::time::Duration::from_millis(1100));
    store.store(k1, &t1).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(1100));
    store.store(k2, &t2).unwrap();
    assert!(
        !store.contains(k0) && store.contains(k1) && store.contains(k2),
        "oldest (k0) must be the victim"
    );
    assert_eq!(store.metrics().evicted(), 1);
    assert!(store.load(k0).is_none());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_write_fault_leaves_a_quarantinable_crash_image() {
    let root = scratch("torn-write");
    let (key, trace) = sample_trace(0);
    let store = open(root.clone(), 0).with_fault_hook(Arc::new(|op, _, _| match op {
        DiskOp::Write => DiskFault::Torn { keep: 20 },
        DiskOp::Read => DiskFault::None,
    }));
    assert_eq!(store.store(key, &trace).unwrap(), SpillResult::Corrupted);
    assert!(!store.contains(key), "a corrupted spill must not be indexed");
    assert_eq!(store.metrics().spill_errors(), 1);
    drop(store);

    // Recovery quarantines the torn file instead of crashing.
    let store = open(root.clone(), 0);
    let report = store.scan(|_, _| panic!("nothing valid to recover")).unwrap();
    assert_eq!(report.recovered, 0);
    assert_eq!(report.quarantined, 1);
    assert!(root.join("quarantine").join(format!("{key:016x}.seg")).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn read_fault_quarantines_and_misses() {
    let root = scratch("read-fault");
    let (key, trace) = sample_trace(0);
    {
        let store = open(root.clone(), 0);
        store.store(key, &trace).unwrap();
    }
    let store = open(root.clone(), 0).with_fault_hook(Arc::new(|op, _, _| match op {
        DiskOp::Write => DiskFault::None,
        DiskOp::Read => DiskFault::BitFlip { offset: 100 },
    }));
    store.scan(|_, _| {}).unwrap();
    assert!(store.load(key).is_none(), "corrupt read must be a miss");
    assert_eq!(store.metrics().load_errors(), 1);
    assert!(!store.contains(key), "the poisoned segment must be deindexed");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_error_fails_the_spill_without_a_file() {
    let root = scratch("io-error");
    let (key, trace) = sample_trace(0);
    let store = open(root.clone(), 0).with_fault_hook(Arc::new(|_, _, _| DiskFault::Error));
    assert!(store.store(key, &trace).is_err());
    assert!(!store.contains(key));
    assert_eq!(store.metrics().spill_errors(), 1);
    assert!(!root.join(format!("{key:016x}.seg")).exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sealed_bytes_round_trip_through_adoption() {
    // Peer handoff in miniature: read the raw container off one store,
    // adopt it on another, and the trace comes back bit-identical.
    let donor_root = scratch("handoff-donor");
    let taker_root = scratch("handoff-taker");
    let donor = open(donor_root.clone(), 0);
    let taker = open(taker_root.clone(), 0);
    let (key, trace) = sample_trace(0);
    donor.store(key, &trace).unwrap();

    let sealed = donor.read_sealed(key).expect("sealed bytes");
    assert_eq!(donor.keys(), vec![key]);
    match taker.adopt(key, &sealed).unwrap() {
        AdoptOutcome::Installed(t) => assert_eq!(t, trace, "adoption must be bit-identical"),
        other => panic!("expected Installed, got {other:?}"),
    }
    assert!(taker.contains(key));
    assert_eq!(taker.metrics().adopted(), 1);
    assert!(matches!(
        taker.adopt(key, &sealed).unwrap(),
        AdoptOutcome::AlreadyPresent
    ));
    assert_eq!(taker.load(key).unwrap(), trace);

    // Handoff drop: the donor no longer owns the key.
    assert!(donor.remove(key));
    assert!(!donor.contains(key));
    assert!(!donor_root.join(format!("{key:016x}.seg")).exists());
    assert_eq!(donor.metrics().dropped(), 1);
    assert!(!donor.remove(key), "second remove is a no-op");

    let _ = std::fs::remove_dir_all(&donor_root);
    let _ = std::fs::remove_dir_all(&taker_root);
}

#[test]
fn corrupt_adoption_is_rejected_and_quarantined() {
    let root = scratch("adopt-reject");
    let store = open(root.clone(), 0);
    let (key, trace) = sample_trace(0);
    let sealed = segment::seal(key, &cachetime::codec::encode(&trace));

    // A flipped payload bit, a truncated container, and bytes sealed for
    // a different key must all be rejected without touching the index.
    let mut flipped = sealed.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    assert!(matches!(store.adopt(key, &flipped).unwrap(), AdoptOutcome::Rejected));
    assert!(matches!(
        store.adopt(key, &sealed[..sealed.len() / 2]).unwrap(),
        AdoptOutcome::Rejected
    ));
    assert!(matches!(store.adopt(key ^ 1, &sealed).unwrap(), AdoptOutcome::Rejected));
    assert!(!store.contains(key) && !store.contains(key ^ 1));
    assert_eq!(store.segments(), 0);
    assert_eq!(store.metrics().quarantined(), 3);
    assert_eq!(store.metrics().quarantine_files(), 3);
    assert!(store.metrics().quarantine_bytes() > 0);
    assert!(
        root.join("quarantine").join(format!("{key:016x}.peer")).exists(),
        "rejected transfer bytes are kept as evidence"
    );

    // The same store still adopts the intact bytes afterwards.
    assert!(matches!(store.adopt(key, &sealed).unwrap(), AdoptOutcome::Installed(_)));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quarantine_is_bounded_by_its_byte_cap() {
    let root = scratch("quarantine-cap");
    let (key, trace) = sample_trace(0);
    let sealed = segment::seal(key, &cachetime::codec::encode(&trace));
    let mut bad = sealed.clone();
    bad[20] ^= 1;

    // Cap small enough for roughly two corpses of this size.
    let store = SegmentStore::open(DiskConfig {
        root: root.clone(),
        budget_bytes: 0,
        quarantine_cap_bytes: sealed.len() as u64 * 2 + sealed.len() as u64 / 2,
    })
    .expect("open store");
    for _ in 0..5 {
        assert!(matches!(store.adopt(key, &bad).unwrap(), AdoptOutcome::Rejected));
    }
    assert_eq!(store.metrics().quarantined(), 5);
    assert!(store.metrics().quarantine_evicted() >= 3, "oldest corpses evicted over the cap");
    assert!(store.metrics().quarantine_files() <= 2);
    assert!(store.metrics().quarantine_bytes() as u64 <= sealed.len() as u64 * 2 + sealed.len() as u64 / 2);
    let survivors = std::fs::read_dir(root.join("quarantine")).unwrap().count();
    assert!(survivors <= 2, "{survivors} files survived a two-file cap");

    // Reopening re-measures the directory rather than trusting gauges.
    drop(store);
    let reopened = open(root.clone(), 0);
    assert_eq!(reopened.metrics().quarantine_files() as usize, survivors);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn metrics_registry_names_are_wired() {
    let registry = cachetime_obs::Registry::new();
    let root = scratch("registry");
    let store = SegmentStore::open_with_metrics(
        DiskConfig {
            root: root.clone(),
            budget_bytes: 0,
            quarantine_cap_bytes: 0,
        },
        DiskMetrics::in_registry(&registry),
    )
    .unwrap();
    let (key, trace) = sample_trace(0);
    store.store(key, &trace).unwrap();
    store.load(key).unwrap();
    let text = registry.render_prometheus();
    for family in [
        "cachetime_disk_spills_total",
        "cachetime_disk_spill_bytes_total",
        "cachetime_disk_loads_total",
        "cachetime_disk_segments",
        "cachetime_disk_bytes",
        "cachetime_disk_adopted_total",
        "cachetime_disk_dropped_total",
        "cachetime_disk_quarantine_files",
        "cachetime_disk_quarantine_bytes",
        "cachetime_disk_quarantine_evicted_total",
    ] {
        assert!(text.contains(family), "missing family {family}");
    }
    let _ = std::fs::remove_dir_all(&root);
}
