//! Property tests for the per-connection state machine the event loop
//! drives ([`cachetime_serve::conn`]).
//!
//! The transport here is a scripted fake socket: reads deliver the byte
//! stream of real pipelined requests chopped at arbitrary points, with
//! `WouldBlock` yields (spurious wakeups), mid-request EOFs, and hard
//! errors spliced in; writes accept a few bytes at a time, yield, or fail.
//! Whatever the script does, the machine must
//!
//! * never panic,
//! * never double-answer (at most one response per parsed request, bytes
//!   written in order, uncorrupted),
//! * and either complete cleanly or end `Closed` — no livelock, no limbo
//!   state.
//!
//! On the hermetic testkit runner (`TESTKIT_SEED=… cargo test` reproduces
//! any failure).

use cachetime_serve::conn::{Connection, ReadEvent, WriteEvent};
use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, SplitMix64};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

// ---------------------------------------------------------------- fake I/O

#[derive(Debug, Clone)]
enum ReadStep {
    /// Deliver these bytes (possibly across several `read` calls).
    Chunk(Vec<u8>),
    /// One `WouldBlock` — the spurious-wakeup / slow-sender case.
    Yield,
    /// EOF from here on.
    Eof,
    /// A hard transport error.
    Broken,
}

#[derive(Debug, Clone)]
enum WriteStep {
    /// Accept at most this many bytes (≥ 1).
    Accept(usize),
    /// One `WouldBlock` — backpressure.
    Yield,
    /// A hard transport error.
    Broken,
}

#[derive(Debug)]
struct FakeSock {
    reads: VecDeque<ReadStep>,
    writes: VecDeque<WriteStep>,
    written: Vec<u8>,
}

impl FakeSock {
    fn new(reads: Vec<ReadStep>, writes: Vec<WriteStep>) -> Self {
        FakeSock {
            reads: reads.into(),
            writes: writes.into(),
            written: Vec::new(),
        }
    }

    /// Whether the read script can still produce bytes (idle `WouldBlock`
    /// after exhaustion does not count — that's a parked keep-alive peer).
    fn reads_pending(&self) -> bool {
        self.reads
            .iter()
            .any(|s| matches!(s, ReadStep::Chunk(_) | ReadStep::Eof | ReadStep::Broken))
    }
}

impl Read for FakeSock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.front_mut() {
            // Script exhausted: the peer is idle, not gone.
            None => Err(io::ErrorKind::WouldBlock.into()),
            Some(ReadStep::Chunk(data)) => {
                let n = buf.len().min(data.len());
                buf[..n].copy_from_slice(&data[..n]);
                data.drain(..n);
                if data.is_empty() {
                    self.reads.pop_front();
                }
                Ok(n)
            }
            Some(ReadStep::Yield) => {
                self.reads.pop_front();
                Err(io::ErrorKind::WouldBlock.into())
            }
            Some(ReadStep::Eof) => Ok(0),
            Some(ReadStep::Broken) => Err(io::ErrorKind::ConnectionReset.into()),
        }
    }
}

impl Write for FakeSock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.writes.pop_front() {
            // Script exhausted: unlimited capacity from here on.
            None => {
                self.written.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(WriteStep::Accept(cap)) => {
                let n = buf.len().min(cap.max(1));
                self.written.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            Some(WriteStep::Yield) => Err(io::ErrorKind::WouldBlock.into()),
            Some(WriteStep::Broken) => Err(io::ErrorKind::BrokenPipe.into()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ------------------------------------------------------------------- plans

/// One request the plan will send, plus how the driver answers it.
#[derive(Debug, Clone)]
struct ReqSpec {
    path: String,
    body: Vec<u8>,
    /// Send `X-Deadline-Ms: 0`, making the request dead on arrival.
    doa: bool,
    /// `Connection: close` — the response closes the connection.
    close: bool,
}

impl ReqSpec {
    fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!("POST {} HTTP/1.1\r\nContent-Length: {}\r\n", self.path, self.body.len());
        if self.doa {
            head.push_str("X-Deadline-Ms: 0\r\n");
        }
        if self.close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// A full scenario: requests, how their byte stream is chopped and
/// terminated, and how the write side behaves.
#[derive(Debug, Clone)]
struct Plan {
    specs: Vec<ReqSpec>,
    reads: Vec<ReadStep>,
    writes: Vec<WriteStep>,
    /// True when the script delivers every byte, never errors, and the
    /// write side never breaks — completion must then be total.
    clean: bool,
}

fn gen_plan(rng: &mut SplitMix64) -> Plan {
    let clean = rng.gen_bool(0.4);
    let n_reqs = rng.gen_range(1usize..5);
    let specs: Vec<ReqSpec> = (0..n_reqs)
        .map(|i| {
            let body_len = rng.gen_range(0usize..80);
            let mut body = vec![0u8; body_len];
            for b in &mut body {
                *b = rng.gen_range(0x20u64..0x7f) as u8;
            }
            ReqSpec {
                path: format!("/req/{i}"),
                body,
                doa: !clean && rng.gen_bool(0.15),
                close: if clean { false } else { rng.gen_bool(0.2) },
            }
        })
        .collect();

    // Flatten every request into one stream, then chop it.
    let stream: Vec<u8> = specs.iter().flat_map(|s| s.to_bytes()).collect();
    let mut reads = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        if rng.gen_bool(0.3) {
            reads.push(ReadStep::Yield);
        }
        let take = rng.gen_range(1usize..64).min(stream.len() - pos);
        reads.push(ReadStep::Chunk(stream[pos..pos + take].to_vec()));
        pos += take;
    }
    if !clean {
        // Truncate at a random step and/or end with EOF or an error —
        // mid-request cuts included.
        if rng.gen_bool(0.5) {
            let cut = rng.gen_range(0u64..(reads.len() as u64 + 1)) as usize;
            reads.truncate(cut);
        }
        match rng.gen_range(0u32..3) {
            0 => reads.push(ReadStep::Eof),
            1 => reads.push(ReadStep::Broken),
            _ => {}
        }
    }

    let n_writes = rng.gen_range(0usize..24);
    let writes: Vec<WriteStep> = (0..n_writes)
        .map(|_| match rng.gen_range(0u32..8) {
            0 if !clean => WriteStep::Broken,
            1 | 2 => WriteStep::Yield,
            _ => WriteStep::Accept(rng.gen_range(1usize..9)),
        })
        .collect();

    Plan {
        specs,
        reads,
        writes,
        clean,
    }
}

// ------------------------------------------------------------------ driver

/// How far `drive` got.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// Connection closed (disconnect, error, or `Connection: close`).
    Closed,
    /// Script exhausted with the connection parked in a live state.
    Parked,
}

/// A tiny deterministic event loop: pumps the machine like `http.rs` does,
/// answering every parsed request immediately. Also pokes the machine with
/// out-of-state calls each iteration — spurious readiness events must be
/// inert. Returns the outcome plus everything that was parsed and queued.
fn drive(
    conn: &mut Connection<FakeSock>,
    expected: &[ReqSpec],
) -> Result<(Outcome, Vec<(String, Vec<u8>)>, Vec<Vec<u8>>), String> {
    let mut seen: Vec<(String, Vec<u8>)> = Vec::new();
    let mut queued: Vec<Vec<u8>> = Vec::new();
    for _step in 0..100_000 {
        if conn.is_closed() {
            return Ok((Outcome::Closed, seen, queued));
        }
        if conn.is_writing() {
            // Spurious read-readiness while writing must be a no-op.
            if !matches!(conn.on_readable(), ReadEvent::NotReading) {
                return Err("on_readable while Writing must be NotReading".into());
            }
            match conn.on_writable(Instant::now()) {
                WriteEvent::Flushed { .. } => {}
                WriteEvent::NeedWritable => {} // script advances per call
                WriteEvent::Delayed(_) => {
                    return Err("no response was delayed in this suite".into())
                }
                WriteEvent::Disconnected => return Ok((Outcome::Closed, seen, queued)),
                WriteEvent::NotWriting => return Err("is_writing lied".into()),
            }
            continue;
        }
        // Reading. Spurious write-readiness must be a no-op.
        if !matches!(conn.on_writable(Instant::now()), WriteEvent::NotWriting) {
            return Err("on_writable while Reading must be NotWriting".into());
        }
        match conn.on_readable() {
            ReadEvent::Request(req) => {
                // Exercise the Dispatched parking state the real loop uses
                // while a handler owns the request.
                if !conn.is_dispatched() {
                    return Err("a parsed request must leave the machine Dispatched".into());
                }
                if !matches!(conn.on_readable(), ReadEvent::NotReading) {
                    return Err("on_readable while Dispatched must be NotReading".into());
                }
                seen.push((req.path.clone(), req.body.clone()));
                let resp = format!("RESP {} to {}\r\n", seen.len(), req.path).into_bytes();
                conn.begin_response(resp.clone(), req.keep_alive, None);
                queued.push(resp);
            }
            ReadEvent::NeedMore => {
                if !conn.transport().reads_pending() {
                    return Ok((Outcome::Parked, seen, queued));
                }
            }
            ReadEvent::Bad(e) => {
                // Plans only send well-formed requests, so the parser may
                // only reject what a mid-request cut left behind — and
                // this suite's driver closes without answering.
                let _ = e;
                conn.close();
            }
            ReadEvent::Doa => {
                let resp = b"RESP 408\r\n".to_vec();
                conn.begin_response(resp.clone(), false, None);
                queued.push(resp);
            }
            ReadEvent::Disconnected => return Ok((Outcome::Closed, seen, queued)),
            ReadEvent::NotReading => return Err("is_reading lied".into()),
        }
    }
    Err(format!(
        "no progress after 100k steps: {} specs, {} seen",
        expected.len(),
        seen.len()
    ))
}

// -------------------------------------------------------------- properties

#[test]
fn scripted_partial_io_never_panics_never_double_answers() {
    check(
        "conn_partial_io",
        gen_plan,
        shrink::none,
        |plan: &Plan| {
            let sock = FakeSock::new(plan.reads.clone(), plan.writes.clone());
            let mut conn = Connection::new(sock);
            let driven = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drive(&mut conn, &plan.specs)
            }))
            .map_err(|_| "state machine panicked".to_string())?;
            let (outcome, seen, queued) = driven?;

            // Requests parse in order, byte-exact: what was seen is a
            // prefix of what was sent (cuts lose the tail, never reorder).
            prop_assert!(seen.len() <= plan.specs.len(), "more requests than sent");
            for (got, want) in seen.iter().zip(&plan.specs) {
                prop_assert_eq!(&got.0, &want.path);
                prop_assert_eq!(&got.1, &want.body);
            }

            // Never double-answer, never corrupt: the bytes on the wire
            // are exactly the queued responses in order, cut off at most
            // once mid-response (write error / close).
            let full: Vec<u8> = queued.iter().flatten().copied().collect();
            let written = &conn.transport().written;
            prop_assert!(
                written.len() <= full.len() && written[..] == full[..written.len()],
                "wire bytes must be a prefix of the queued responses"
            );

            // A clean plan (all bytes delivered, nothing broken, all
            // keep-alive) must complete totally: every request answered,
            // every response byte flushed, machine parked idle.
            if plan.clean {
                prop_assert_eq!(outcome, Outcome::Parked, "clean plans end parked");
                prop_assert_eq!(seen.len(), plan.specs.len(), "clean plans see every request");
                prop_assert_eq!(written.len(), full.len(), "clean plans flush every byte");
                prop_assert!(conn.is_reading(), "clean plans park in Reading");
                prop_assert!(conn.started().is_none(), "no partial request may linger");
            }
            Ok(())
        },
    );
}

#[test]
fn a_doa_request_is_answered_408_and_closed() {
    let spec = ReqSpec {
        path: "/late".into(),
        body: b"xx".to_vec(),
        doa: true,
        close: false,
    };
    let sock = FakeSock::new(vec![ReadStep::Chunk(spec.to_bytes())], Vec::new());
    let mut conn = Connection::new(sock);
    let (outcome, seen, queued) = drive(&mut conn, &[spec]).unwrap();
    assert_eq!(outcome, Outcome::Closed);
    assert!(seen.is_empty(), "a DOA request must not be dispatched");
    assert_eq!(queued, vec![b"RESP 408\r\n".to_vec()]);
    assert_eq!(conn.transport().written, b"RESP 408\r\n");
}

#[test]
fn begin_response_while_writing_is_a_loud_bug() {
    let sock = FakeSock::new(Vec::new(), vec![WriteStep::Yield]);
    let mut conn = Connection::new(sock);
    conn.begin_response(b"first".to_vec(), true, None);
    assert!(matches!(conn.on_writable(Instant::now()), WriteEvent::NeedWritable));
    let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        conn.begin_response(b"second".to_vec(), true, None);
    }));
    assert!(
        second.is_err(),
        "double answer must panic at the source, not corrupt the wire"
    );
}
