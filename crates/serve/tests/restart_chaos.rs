//! Restart-warm under disk chaos — the durability contract end to end.
//!
//! A server records a grid of pairings with `disk.write` faults armed, so
//! some spills land as torn or bit-flipped crash images under their final
//! segment names. The server is then "killed" (dropped; spills are
//! synchronous, so an abrupt drop loses nothing a real SIGKILL wouldn't)
//! and rebuilt on the same data directory. Recovery must:
//!
//! * seed every intact segment back into the in-memory store — zero
//!   re-recordings for those keys,
//! * quarantine every corrupt file (never crash, never serve garbage),
//! * replay recovered keys bit-identically to a direct `Simulator::run`.

use cachetime::{Simulator, SystemConfig};
use cachetime_disk::{DiskConfig, SegmentStore};
use cachetime_serve::fault::FaultPlan;
use cachetime_serve::{api, App, Request};
use cachetime_trace::catalog;
use cachetime_types::Json;

fn scratch() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cachetime-restart-chaos-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_disk(root: &std::path::Path) -> SegmentStore {
    SegmentStore::open(DiskConfig {
        root: root.to_path_buf(),
        budget_bytes: 0,
        quarantine_cap_bytes: 0,
    })
    .expect("open segment store")
}

fn post(app: &App, path: &str, body: &str) -> (u16, Json) {
    let resp = app.handle(&Request {
        method: "POST".into(),
        path: path.into(),
        query: None,
        body: body.as_bytes().to_vec(),
        keep_alive: true,
        deadline_ms: None,
    });
    let v = Json::parse(&resp.body_text()).unwrap_or(Json::Null);
    (resp.status, v)
}

fn sim_body(scale: f64) -> String {
    format!(r#"{{"trace": {{"name": "mu3", "scale": {scale}}}}}"#)
}

#[test]
fn restart_recovers_intact_segments_and_quarantines_torn_ones() {
    let root = scratch();
    let scales: Vec<f64> = (0..10).map(|i| 0.004 + i as f64 * 0.001).collect();

    // ---- Life 1: record with write faults armed. Only torn/bit-flip
    // faults (no injected I/O errors): every fault leaves a crash image
    // on disk for recovery to find.
    let faults = FaultPlan::seeded(0xD15C_CA05).arm_disk("disk.write", 0.3, 0.2, None);
    let app = App::new(usize::MAX)
        .with_faults(faults)
        .with_disk(open_disk(&root));
    for &scale in &scales {
        let (status, v) = post(&app, "/v1/simulate", &sim_body(scale));
        assert_eq!(status, 200, "recording must survive spill faults");
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
    }
    let disk = app.disk().expect("disk attached");
    let intact = disk.metrics().spills();
    let corrupted = disk.metrics().spill_errors();
    assert_eq!(intact + corrupted, scales.len() as u64);
    assert!(intact > 0, "seed must let some spills through");
    assert!(corrupted > 0, "seed must corrupt some spills");
    drop(app); // SIGKILL: no shutdown path runs.

    // ---- Life 2: same directory, no faults.
    let app = App::new(usize::MAX).with_disk(open_disk(&root));
    let report = app.recover_from_disk().expect("scan");
    assert_eq!(report.recovered, intact, "every intact segment comes back");
    assert_eq!(report.quarantined, corrupted, "every crash image quarantined");
    assert!(root.join("quarantine").is_dir());

    // Every pairing answers; recovered ones without re-recording.
    let config = SystemConfig::paper_default().unwrap();
    let mut served_warm = 0u64;
    for &scale in &scales {
        let (status, v) = post(&app, "/v1/simulate", &sim_body(scale));
        assert_eq!(status, 200);
        if v.get("cached").and_then(Json::as_bool) == Some(true) {
            served_warm += 1;
            // Bit-identity: the recovered trace replays exactly what a
            // fresh in-process simulation computes.
            let direct = Simulator::new(&config).run(&catalog::mu3(scale).generate());
            assert_eq!(
                v.get("result"),
                Some(&api::sim_result_to_json(&direct)),
                "recovered replay must be bit-identical to Simulator::run (scale {scale})"
            );
        }
    }
    assert_eq!(
        served_warm, intact,
        "exactly the recovered keys must serve warm (zero re-recordings)"
    );
    assert_eq!(
        app.store.stats().misses,
        scales.len() as u64 - intact,
        "only quarantined keys may re-record after restart"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_after_clean_run_rerecords_nothing() {
    let root = scratch().with_extension("clean");
    let _ = std::fs::remove_dir_all(&root);
    let scales = [0.004, 0.005, 0.006];

    let app = App::new(usize::MAX).with_disk(open_disk(&root));
    for &scale in &scales {
        let (status, _) = post(&app, "/v1/simulate", &sim_body(scale));
        assert_eq!(status, 200);
    }
    drop(app);

    let app = App::new(usize::MAX).with_disk(open_disk(&root));
    let report = app.recover_from_disk().expect("scan");
    assert_eq!(report.recovered, scales.len() as u64);
    assert_eq!(report.quarantined, 0);
    for &scale in &scales {
        let (status, v) = post(&app, "/v1/simulate", &sim_body(scale));
        assert_eq!(status, 200);
        assert_eq!(
            v.get("cached").and_then(Json::as_bool),
            Some(true),
            "a clean restart must serve every key warm"
        );
    }
    assert_eq!(app.store.stats().misses, 0, "zero re-recordings");
    let _ = std::fs::remove_dir_all(&root);
}
