//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! These are *model* ablations, not speed ablations: each bench prints the
//! execution-time impact of toggling one modeling decision (write-buffer
//! depth, read priority, coalescing, replacement policy, dual-issue
//! couplets, early continuation) and then measures the run so regressions
//! in either direction show up.

use cachetime::{Simulator, SystemConfig};
use cachetime_bench::traces;
use cachetime_cache::{CacheConfig, ReplacementPolicy};
use cachetime_mem::MemoryConfig;
use cachetime_types::{Assoc, CacheSize};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Mean ns/ref of a configuration over the first two bench traces.
fn mean_time(config: &SystemConfig) -> f64 {
    let mut sim = Simulator::new(config);
    let mut total = 0.0;
    let mut n = 0.0;
    for t in traces().traces().iter().take(2) {
        total += sim.run(t).time_per_ref_ns();
        n += 1.0;
    }
    total / n
}

fn report(label: &str, base: f64, variant: f64) {
    println!(
        "{label}: {base:.2} -> {variant:.2} ns/ref ({:+.1}%)",
        100.0 * (variant / base - 1.0)
    );
}

fn small_cache_config(mutate: impl FnOnce(&mut cachetime::SystemConfigBuilder)) -> SystemConfig {
    let l1 = CacheConfig::builder(CacheSize::from_kib(8).expect("pow2"))
        .build()
        .expect("valid cache");
    let mut b = SystemConfig::builder();
    b.l1_both(l1);
    mutate(&mut b);
    b.build().expect("valid system")
}

fn bench_write_buffer_depth(c: &mut Criterion) {
    let base = mean_time(&small_cache_config(|_| {}));
    for depth in [0u32, 1, 4, 16] {
        let config = small_cache_config(|b| {
            b.memory(
                MemoryConfig::builder()
                    .wb_depth(depth)
                    .build()
                    .expect("valid memory"),
            );
        });
        report(&format!("wb depth {depth}"), base, mean_time(&config));
    }
    c.bench_function("ablation/wb_depth_0", |b| {
        let config = small_cache_config(|bld| {
            bld.memory(MemoryConfig::builder().wb_depth(0).build().expect("valid"));
        });
        let mut sim = Simulator::new(&config);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

fn bench_read_priority(c: &mut Criterion) {
    let base = mean_time(&small_cache_config(|_| {}));
    let fifo = small_cache_config(|b| {
        b.memory(
            MemoryConfig::builder()
                .read_priority(false)
                .build()
                .expect("valid memory"),
        );
    });
    report("FIFO drain (no read priority)", base, mean_time(&fifo));
    c.bench_function("ablation/no_read_priority", |b| {
        let mut sim = Simulator::new(&fifo);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

fn bench_coalescing(c: &mut Criterion) {
    let base = mean_time(&small_cache_config(|_| {}));
    let no_coalesce = small_cache_config(|b| {
        b.memory(
            MemoryConfig::builder()
                .wb_coalesce(false)
                .build()
                .expect("valid memory"),
        );
    });
    report("no write coalescing", base, mean_time(&no_coalesce));
    c.bench_function("ablation/no_coalescing", |b| {
        let mut sim = Simulator::new(&no_coalesce);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

fn bench_replacement(c: &mut Criterion) {
    // The paper uses random replacement for its associativity study; LRU
    // is the common alternative.
    let mk = |policy| {
        let l1 = CacheConfig::builder(CacheSize::from_kib(8).expect("pow2"))
            .assoc(Assoc::new(2).expect("pow2"))
            .replacement(policy)
            .build()
            .expect("valid cache");
        SystemConfig::builder()
            .l1_both(l1)
            .build()
            .expect("valid system")
    };
    let random = mean_time(&mk(ReplacementPolicy::Random));
    for (name, policy) in [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("tree-PLRU", ReplacementPolicy::TreePlru),
    ] {
        report(&format!("{name} vs random"), random, mean_time(&mk(policy)));
    }
    c.bench_function("ablation/lru_replacement", |b| {
        let config = mk(ReplacementPolicy::Lru);
        let mut sim = Simulator::new(&config);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

fn bench_unified_vs_split(c: &mut Criterion) {
    // Same total storage: split 8+8KB vs unified 16KB. The couplet CPU
    // cannot dual-issue against a unified cache.
    let split = small_cache_config(|_| {});
    let unified = {
        let l1 = CacheConfig::builder(CacheSize::from_kib(16).expect("pow2"))
            .build()
            .expect("valid cache");
        SystemConfig::builder()
            .l1_both(l1)
            .unified(true)
            .build()
            .expect("valid system")
    };
    report(
        "unified vs split (equal total)",
        mean_time(&split),
        mean_time(&unified),
    );
    c.bench_function("ablation/unified", |b| {
        let mut sim = Simulator::new(&unified);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

fn bench_single_issue(c: &mut Criterion) {
    let base = mean_time(&small_cache_config(|_| {}));
    let single = small_cache_config(|b| {
        b.dual_issue(false);
    });
    report("single-issue CPU", base, mean_time(&single));
    c.bench_function("ablation/single_issue", |b| {
        let mut sim = Simulator::new(&single);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

fn bench_early_continuation(c: &mut Criterion) {
    let base = mean_time(&small_cache_config(|_| {}));
    let ec = small_cache_config(|b| {
        b.early_continuation(true);
    });
    report("early continuation", base, mean_time(&ec));
    c.bench_function("ablation/early_continuation", |b| {
        let mut sim = Simulator::new(&ec);
        b.iter(|| black_box(sim.run(&traces().traces()[0])));
    });
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_write_buffer_depth, bench_read_priority, bench_coalescing,
        bench_replacement, bench_unified_vs_split, bench_single_issue,
        bench_early_continuation
}
criterion_main!(ablation);
