//! Geometric means — "numerical results in this paper are the geometric
//! mean of warm start runs for all eight traces".

/// Computes the geometric mean of strictly positive values.
///
/// Uses the log-sum formulation to avoid overflow on long products.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value — both
/// indicate a broken experiment upstream, not a recoverable condition.
///
/// # Examples
///
/// ```
/// use cachetime_analysis::geometric_mean;
///
/// assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// assert!((geometric_mean(&[8.0]) - 8.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of no values");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Geometric mean of `values[i] / baselines[i]` — the normalized form used
/// when traces of different lengths are combined (each trace's execution
/// time is meaningful only relative to its own reference count).
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain
/// non-positive entries.
pub fn geometric_mean_normalized(values: &[f64], baselines: &[f64]) -> f64 {
    assert_eq!(values.len(), baselines.len(), "mismatched lengths");
    let ratios: Vec<f64> = values
        .iter()
        .zip(baselines)
        .map(|(&v, &b)| {
            assert!(b > 0.0, "non-positive baseline {b}");
            v / b
        })
        .collect();
    geometric_mean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_values() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overflow_on_large_products() {
        let many = vec![1e100; 50];
        let m = geometric_mean(&many);
        assert!((m / 1e100 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_panics() {
        geometric_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_panics() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn normalized_divides_pairwise() {
        let m = geometric_mean_normalized(&[2.0, 12.0], &[1.0, 3.0]);
        assert!((m - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn normalized_length_mismatch_panics() {
        geometric_mean_normalized(&[1.0], &[1.0, 2.0]);
    }
}
