//! Single-process synthetic reference stream.
//!
//! A [`SyntheticProcess`] produces an endless stream of [`MemRef`]s from
//! three coupled generators:
//!
//! * an **instruction stream**: sequential fetch runs inside "functions",
//!   interrupted by loops (short backward jumps that re-execute recent
//!   code), calls (function selection through an LRU stack with Pareto
//!   distances), and short forward jumps;
//! * a **data stream**: a small hot stack region, object accesses chosen
//!   through a second LRU stack with sequential runs inside each object,
//!   and occasional long array sweeps;
//! * an optional **start-up phase** that zeroes the data space with
//!   sequential stores, reproducing the paper's note that "higher write
//!   transfer rates for RISC traces at large cache sizes result from the
//!   zeroing of the data space at the start of the grep and egrep
//!   processes".

use crate::mtf::MtfStack;
#[cfg(test)]
use cachetime_types::AccessKind;
use cachetime_types::{MemRef, Pid, StableHash, StableHasher, WordAddr};
use cachetime_testkit::SplitMix64;

/// First word of the code region. Each process's regions are staggered by
/// a small pid-dependent, non-power-of-two offset: programs share the same
/// nominal load addresses (so virtual caches see inter-process index
/// conflicts, as the paper stresses for large virtual caches) but differ in
/// layout beyond the base, as real binaries do. The offsets also keep the
/// three regions of one process from all aliasing into cache set 0.
pub(crate) const CODE_BASE: u64 = 0x0010_0000;
/// First word of the data/heap region.
pub(crate) const DATA_BASE: u64 = 0x0400_0000;
/// First word of the stack region.
pub(crate) const STACK_BASE: u64 = 0x7FF0_0000;

/// Address-slot pitch (words) for scattered heap objects; no object
/// exceeds it.
pub(crate) const OBJECT_SLOT_WORDS: u64 = 64;

/// Pid-dependent layout stagger for the code region (words).
#[inline]
pub(crate) fn code_base(pid: Pid) -> u64 {
    CODE_BASE + pid.0 as u64 * 2_891
}

/// Pid-dependent layout stagger for the data region (words).
#[inline]
pub(crate) fn data_base(pid: Pid) -> u64 {
    DATA_BASE + 0x0c40 + pid.0 as u64 * 5_779
}

/// Pid-dependent layout stagger for the stack region (words).
#[inline]
pub(crate) fn stack_base(pid: Pid) -> u64 {
    STACK_BASE + 0x39a0 + pid.0 as u64 * 1_217
}

/// Tunable parameters of one synthetic process.
///
/// The defaults model a medium C program; [`ProcessParams::vax_like`] and
/// [`ProcessParams::risc_like`] set the mixes the paper describes for the
/// two trace families (the RISC traces show lower miss rates, a higher
/// degree of instruction locality, and lower instruction density).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessParams {
    /// Code footprint in words.
    pub code_words: u64,
    /// Data (heap/global) footprint in words.
    pub data_words: u64,
    /// Stack region size in words.
    pub stack_words: u64,
    /// Fraction of references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Fraction of non-stack data references that are stores.
    pub store_frac: f64,
    /// Fraction of data references that hit the stack region.
    pub stack_frac: f64,
    /// Probability that a new data run is a long sequential sweep.
    pub sweep_frac: f64,
    /// Size of the repeatedly swept array region in words (sweeps wrap
    /// within it, like repeated file-buffer or matrix traversals).
    pub sweep_words: u64,
    /// Mean sequential instruction-run length (words between branches).
    pub mean_code_run: f64,
    /// Mean data-run length inside one object.
    pub mean_data_run: f64,
    /// Fraction of new data runs that are scattered single-word accesses
    /// (pointer chasing, hash probing) with no spatial locality.
    pub scatter_frac: f64,
    /// Probability a branch event is a backward loop.
    pub loop_frac: f64,
    /// Pareto tail exponent for function selection (higher = more reuse).
    pub code_alpha: f64,
    /// Pareto tail exponent for object selection.
    pub data_alpha: f64,
    /// Average function size in words.
    pub func_words: u32,
    /// Object (chunk) size in words for the data locality stack.
    pub object_words: u32,
    /// Words of data zeroed by sequential stores at process start.
    pub startup_zero_words: u64,
    /// Words touched exactly once before the traced window (start-up and
    /// one-shot initialization data). They appear in an R2000-style
    /// initialization prefix — and in the trace's unique-address count, as
    /// in the paper's Table 1 — but are never referenced again.
    pub cold_words: u64,
}

impl StableHash for ProcessParams {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.code_words.stable_hash(h);
        self.data_words.stable_hash(h);
        self.stack_words.stable_hash(h);
        self.ifetch_frac.stable_hash(h);
        self.store_frac.stable_hash(h);
        self.stack_frac.stable_hash(h);
        self.sweep_frac.stable_hash(h);
        self.sweep_words.stable_hash(h);
        self.mean_code_run.stable_hash(h);
        self.mean_data_run.stable_hash(h);
        self.scatter_frac.stable_hash(h);
        self.loop_frac.stable_hash(h);
        self.code_alpha.stable_hash(h);
        self.data_alpha.stable_hash(h);
        self.func_words.stable_hash(h);
        self.object_words.stable_hash(h);
        self.startup_zero_words.stable_hash(h);
        self.cold_words.stable_hash(h);
    }
}

impl ProcessParams {
    /// A VAX-like process: denser instruction mix, smaller footprints,
    /// moderate locality.
    pub fn vax_like(code_words: u64, data_words: u64) -> Self {
        ProcessParams {
            code_words: code_words.max(256),
            data_words: data_words.max(256),
            stack_words: 256,
            ifetch_frac: 0.55,
            store_frac: 0.28,
            stack_frac: 0.25,
            sweep_frac: 0.012,
            sweep_words: (data_words / 4).max(256),
            mean_code_run: 7.0,
            mean_data_run: 4.0,
            scatter_frac: 0.70,
            loop_frac: 0.55,
            code_alpha: 1.80,
            data_alpha: 1.80,
            func_words: 96,
            object_words: 32,
            startup_zero_words: 0,
            cold_words: 0,
        }
    }

    /// An R2000-like process: more instruction fetches per datum, stronger
    /// instruction locality (longer runs, tighter loops), bigger data
    /// footprints.
    pub fn risc_like(code_words: u64, data_words: u64) -> Self {
        ProcessParams {
            code_words: code_words.max(256),
            data_words: data_words.max(256),
            stack_words: 512,
            ifetch_frac: 0.68,
            store_frac: 0.25,
            stack_frac: 0.30,
            sweep_frac: 0.010,
            sweep_words: (data_words / 4).max(256),
            mean_code_run: 12.0,
            mean_data_run: 5.0,
            scatter_frac: 0.65,
            loop_frac: 0.68,
            code_alpha: 2.30,
            data_alpha: 2.05,
            func_words: 128,
            object_words: 32,
            startup_zero_words: 0,
            cold_words: 0,
        }
    }

    /// Sets the one-time cold footprint replayed only in the
    /// initialization prefix.
    pub fn with_cold_words(mut self, words: u64) -> Self {
        self.cold_words = words;
        self
    }

    /// Adds a grep/egrep-style start-up phase zeroing `words` words of the
    /// data space.
    pub fn with_startup_zero(mut self, words: u64) -> Self {
        self.startup_zero_words = words.min(self.data_words);
        self
    }
}

/// The running state of one synthetic process.
#[derive(Debug, Clone)]
pub struct SyntheticProcess {
    pid: Pid,
    params: ProcessParams,
    rng: SplitMix64,
    // --- instruction stream ---
    funcs: MtfStack,
    cur_func: u32,
    pc: u32,
    loop_start: u32,
    code_run_left: u32,
    // --- data stream ---
    objects: MtfStack,
    objects_tbl: Vec<(u32, u32)>,
    /// First word (relative to the data base) of the contiguous sweep
    /// region, placed past the scattered heap span.
    sweep_base: u64,
    func_slots: u32,
    cur_object: u32,
    object_off: u32,
    data_run_left: u32,
    sweep_pos: u64,
    sweep_left: u32,
    stack_off: u64,
    // --- start-up phase ---
    zero_left: u64,
    zero_pos: u64,
}

impl SyntheticProcess {
    /// Creates a process with its own deterministic random stream.
    pub fn new(pid: Pid, params: ProcessParams, seed: u64) -> Self {
        let n_funcs = (params.code_words / params.func_words as u64).max(1) as u32;
        // Functions scatter across a larger code span: a program's working
        // set is a sparse subset of its binary, which is what gives a
        // direct-mapped cache its intra-process conflict misses (and set
        // associativity something to remove — the paper's Figure 4-1).
        let func_slots = n_funcs.next_power_of_two().max(2);
        // Variable-size objects, scattered across a heap span several
        // times the touched footprint for the same reason; real heaps also
        // mix many small allocations with a few large ones, which caps how
        // much of a working-set refill a big cache block can prefetch.
        let mut obj_rng = SplitMix64::from_seed(seed ^ 0x0b1ec7);
        let mut objects_tbl: Vec<(u32, u32)> = Vec::new();
        let object_budget = params.data_words - params.data_words / 4;
        let mut covered = 0u64;
        let mut index = 0u64;
        while covered < object_budget {
            let size = *[4u32, 4, 8, 8, 8, 16, 16, 32, 64]
                .get(obj_rng.gen_range(0usize..9))
                .expect("index in range");
            let size = size.min((object_budget - covered) as u32).max(1);
            objects_tbl.push((0, size)); // bases assigned after counting
            covered += size as u64;
            index += 1;
        }
        let n_objects = index as u32;
        // Bijective scatter over power-of-two slots (odd multiplier).
        let obj_slots = n_objects.next_power_of_two().max(2) as u64;
        for (i, entry) in objects_tbl.iter_mut().enumerate() {
            let slot = (i as u64).wrapping_mul(0x9e37) & (obj_slots - 1);
            entry.0 = (slot * OBJECT_SLOT_WORDS) as u32;
        }
        let zero_left = params.startup_zero_words;
        SyntheticProcess {
            pid,
            rng: SplitMix64::from_seed(seed ^ 0x9e37_79b9_7f4a_7c15),
            funcs: MtfStack::new(n_funcs),
            cur_func: 0,
            pc: 0,
            loop_start: 0,
            code_run_left: 0,
            objects: MtfStack::new(n_objects),
            objects_tbl,
            sweep_base: obj_slots * OBJECT_SLOT_WORDS,
            func_slots,
            cur_object: 0,
            object_off: 0,
            data_run_left: 0,
            sweep_pos: 0,
            sweep_left: 0,
            stack_off: 0,
            zero_left,
            zero_pos: 0,
            params,
        }
    }

    /// Returns the process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The one-time cold region `(first_word, words)` of this process, for
    /// prefix construction. Lies just past the live data region.
    pub fn cold_region(&self) -> (WordAddr, u64) {
        (
            WordAddr::new(data_base(self.pid) + self.sweep_base + self.params.sweep_words),
            self.params.cold_words,
        )
    }

    /// Produces the next reference of this process's stream.
    pub fn next_ref(&mut self) -> MemRef {
        if self.zero_left > 0 {
            return self.next_startup_ref();
        }
        if self.rng.gen_bool(self.params.ifetch_frac) {
            MemRef::ifetch(self.next_ifetch(), self.pid)
        } else {
            let (addr, store) = self.next_data();
            if store {
                MemRef::store(addr, self.pid)
            } else {
                MemRef::load(addr, self.pid)
            }
        }
    }

    /// Start-up zeroing: a tight two-instruction store loop.
    fn next_startup_ref(&mut self) -> MemRef {
        // Roughly interleave the loop's own fetches with its stores.
        if self.rng.gen_bool(self.params.ifetch_frac) {
            let addr = code_base(self.pid) + (self.zero_pos % 4);
            MemRef::ifetch(WordAddr::new(addr), self.pid)
        } else {
            let addr = data_base(self.pid) + self.zero_pos;
            self.zero_pos += 1;
            self.zero_left -= 1;
            MemRef::store(WordAddr::new(addr), self.pid)
        }
    }

    fn next_ifetch(&mut self) -> WordAddr {
        let fw = self.params.func_words;
        if self.code_run_left == 0 {
            self.branch_event();
        }
        self.code_run_left -= 1;
        let slot = (self.cur_func as u64).wrapping_mul(0x9e37) & (self.func_slots as u64 - 1);
        let addr = code_base(self.pid) + slot * fw as u64 + self.pc as u64;
        self.pc = (self.pc + 1) % fw;
        WordAddr::new(addr)
    }

    fn branch_event(&mut self) {
        let fw = self.params.func_words;
        let r = self.rng.next_f64();
        if r < self.params.loop_frac {
            // Loop back to the loop head; occasionally move the head up to
            // the current point so loops terminate.
            if self.rng.gen_bool(0.25) {
                self.loop_start = self.pc;
            }
            self.pc = self.loop_start;
        } else if r < self.params.loop_frac + (1.0 - self.params.loop_frac) * 0.35 {
            // Call/return: pick a function through the locality stack.
            self.cur_func = self.funcs.sample(&mut self.rng, self.params.code_alpha);
            self.pc = self.rng.gen_range(0..fw / 4).min(fw - 1);
            self.loop_start = self.pc;
        } else {
            // Short forward jump within the function.
            let skip = 1 + self.sample_geometric(4.0);
            self.pc = (self.pc + skip) % fw;
            self.loop_start = self.pc;
        }
        self.code_run_left = 1 + self.sample_geometric(self.params.mean_code_run);
    }

    fn next_data(&mut self) -> (WordAddr, bool) {
        // Stack traffic: a narrow, hot band that random-walks.
        if self.rng.gen_bool(self.params.stack_frac) {
            let delta = self.rng.gen_range(0..8) as i64 - 3;
            let max = self.params.stack_words as i64 - 1;
            self.stack_off = (self.stack_off as i64 + delta).clamp(0, max) as u64;
            let store = self.rng.gen_bool(0.40);
            return (WordAddr::new(stack_base(self.pid) + self.stack_off), store);
        }
        // Ongoing sweep: march sequentially through the data region.
        if self.sweep_left > 0 {
            self.sweep_left -= 1;
            let addr = data_base(self.pid) + self.sweep_base + self.sweep_pos;
            self.sweep_pos = (self.sweep_pos + 1) % self.params.sweep_words;
            return (
                WordAddr::new(addr),
                self.rng.gen_bool(self.params.store_frac),
            );
        }
        // Object accesses with sequential runs inside the chosen object.
        if self.data_run_left == 0 {
            if self.rng.gen_bool(self.params.sweep_frac) {
                self.sweep_left = self.rng.gen_range(32u32..128);
                return self.next_data();
            }
            self.cur_object = self.objects.sample(&mut self.rng, self.params.data_alpha);
            let (_, size) = self.objects_tbl[self.cur_object as usize];
            self.object_off = self.rng.gen_range(0..size);
            self.data_run_left = if self.rng.gen_bool(self.params.scatter_frac) {
                1 // scattered access: no spatial locality to exploit
            } else {
                2 + self.sample_geometric(self.params.mean_data_run)
            };
        }
        self.data_run_left -= 1;
        let (base, size) = self.objects_tbl[self.cur_object as usize];
        let addr = data_base(self.pid) + base as u64 + (self.object_off % size) as u64;
        self.object_off += 1;
        (
            WordAddr::new(addr),
            self.rng.gen_bool(self.params.store_frac),
        )
    }

    /// Geometric sample with the given mean (≥ 0).
    fn sample_geometric(&mut self, mean: f64) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        let p = 1.0 / (mean + 1.0);
        let u = self.rng.gen_range(f64::EPSILON..1.0);
        (u.ln() / (1.0 - p).ln()).floor().min(10_000.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn run(params: ProcessParams, n: usize) -> Vec<MemRef> {
        let mut p = SyntheticProcess::new(Pid(1), params, 42);
        (0..n).map(|_| p.next_ref()).collect()
    }

    #[test]
    fn refs_carry_the_pid() {
        for r in run(ProcessParams::vax_like(4096, 8192), 1000) {
            assert_eq!(r.pid, Pid(1));
        }
    }

    #[test]
    fn mix_approximates_parameters() {
        let refs = run(ProcessParams::vax_like(4096, 8192), 50_000);
        let ifetches = refs.iter().filter(|r| r.kind == AccessKind::IFetch).count();
        let frac = ifetches as f64 / refs.len() as f64;
        assert!((frac - 0.55).abs() < 0.03, "ifetch fraction {frac}");
        let stores = refs.iter().filter(|r| r.kind == AccessKind::Store).count();
        let data = refs.len() - ifetches;
        let sfrac = stores as f64 / data as f64;
        assert!((0.15..0.5).contains(&sfrac), "store fraction {sfrac}");
    }

    #[test]
    fn footprint_bounded_by_parameters() {
        let params = ProcessParams::vax_like(4096, 8192);
        let refs = run(params.clone(), 200_000);
        let code: HashSet<u64> = refs
            .iter()
            .filter(|r| r.kind == AccessKind::IFetch)
            .map(|r| r.addr.value())
            .collect();
        assert!(code.len() as u64 <= params.code_words);
        let data: HashSet<u64> = refs
            .iter()
            .filter(|r| r.kind != AccessKind::IFetch)
            .map(|r| r.addr.value())
            .collect();
        assert!(data.len() as u64 <= params.data_words + params.stack_words);
    }

    #[test]
    fn streams_are_deterministic() {
        let a = run(ProcessParams::risc_like(8192, 65_536), 10_000);
        let b = run(ProcessParams::risc_like(8192, 65_536), 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let params = ProcessParams::vax_like(4096, 8192);
        let mut p1 = SyntheticProcess::new(Pid(1), params.clone(), 1);
        let mut p2 = SyntheticProcess::new(Pid(1), params, 2);
        let a: Vec<MemRef> = (0..1000).map(|_| p1.next_ref()).collect();
        let b: Vec<MemRef> = (0..1000).map(|_| p2.next_ref()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn startup_zero_emits_sequential_stores() {
        let params = ProcessParams::risc_like(4096, 65_536).with_startup_zero(1000);
        let refs = run(params, 5_000);
        let stores: Vec<u64> = refs
            .iter()
            .filter(|r| r.kind == AccessKind::Store)
            .map(|r| r.addr.value())
            .take(1000)
            .collect();
        assert_eq!(stores.len(), 1000);
        for (i, w) in stores.windows(2).enumerate() {
            assert_eq!(w[1], w[0] + 1, "zeroing must be sequential at {i}");
        }
    }

    #[test]
    fn instruction_stream_has_spatial_locality() {
        let refs = run(ProcessParams::risc_like(16_384, 16_384), 50_000);
        let fetch_addrs: Vec<u64> = refs
            .iter()
            .filter(|r| r.kind == AccessKind::IFetch)
            .map(|r| r.addr.value())
            .collect();
        let sequential = fetch_addrs.windows(2).filter(|w| w[1] == w[0] + 1).count();
        let frac = sequential as f64 / fetch_addrs.len() as f64;
        assert!(frac > 0.5, "sequential ifetch fraction too low: {frac}");
    }

    #[test]
    fn regions_do_not_collide() {
        let params = ProcessParams::risc_like(1 << 20, 1 << 22);
        let refs = run(params, 20_000);
        for r in refs {
            let a = r.addr.value();
            match r.kind {
                AccessKind::IFetch => {
                    assert!((CODE_BASE..DATA_BASE).contains(&a))
                }
                _ => assert!(a >= DATA_BASE),
            }
        }
    }
}
