//! Binary serialization of [`EventTrace`] — the payload format of the
//! durable segment store.
//!
//! An [`EventTrace`] is the expensive artifact of the two-phase engine
//! (recording walks the whole reference stream; replay is 20–40x
//! cheaper), so `cachetime-disk` persists traces across server restarts.
//! This module defines the byte-exact payload: a little-endian,
//! field-by-field encoding of the organization half, the behavioral
//! counters, and the op stream. No external serialization crate is used —
//! the workspace is zero-dependency by design.
//!
//! Properties the disk layer relies on:
//!
//! * **Round-trip identity**: `decode(encode(t)) == t` for every trace the
//!   recorder can produce, so a warm restart replays bit-identically to
//!   [`crate::Simulator::run`]. Pinned by the codec tests.
//! * **Validated decode**: configurations are rebuilt through the public
//!   builders, so a decoded trace satisfies every invariant a freshly
//!   recorded one does; a corrupt payload yields [`CodecError`], never a
//!   panic and never an internally inconsistent trace.
//! * **Bounded allocation**: claimed lengths are checked against the
//!   remaining input before any buffer is reserved, so truncated or
//!   garbage headers cannot trigger huge allocations.
//!
//! The on-disk segment wraps this payload in a checksummed header (see
//! `cachetime-disk`); the codec itself starts with a one-byte payload
//! version so the format can evolve independently of the container.

use crate::replay::EventTrace;
use crate::system::{OrgConfig, SystemConfig};
use cachetime_cache::{
    CacheConfig, CacheStats, ReplacementPolicy, VictimCacheConfig, WayPrediction, WriteAllocate,
    WritePolicy,
};
use cachetime_mmu::{MmuStats, TranslationConfig};
use cachetime_types::{
    AccessEvent, Assoc, BlockWords, CacheSize, CoupletClass, EventOp, Pid, RefEvent, VictimBlock,
    WordAddr,
};

/// Payload format version written by [`encode`]; [`decode`] rejects
/// anything else.
pub const PAYLOAD_VERSION: u8 = 1;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the encoded structure did.
    Truncated,
    /// A field held a value the format does not define (bad tag, bad
    /// bool byte, unsupported version, trailing bytes).
    Invalid(&'static str),
    /// The decoded configuration failed re-validation (e.g. a
    /// non-power-of-two cache size) — structurally well-formed bytes
    /// describing an impossible organization.
    Config(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("payload truncated"),
            CodecError::Invalid(what) => write!(f, "invalid payload: {what}"),
            CodecError::Config(err) => write!(f, "invalid configuration: {err}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a trace to the versioned payload format.
pub fn encode(trace: &EventTrace) -> Vec<u8> {
    // Fixed header ~200 bytes + ops; sizing up front keeps the encode
    // loop off the reallocation path for typical traces.
    let mut out = Vec::with_capacity(256 + trace.ops().len() * 24);
    out.push(PAYLOAD_VERSION);
    let org = trace.organization();
    put_cache_config(&mut out, org.l1i());
    put_cache_config(&mut out, org.l1d());
    put_bool(&mut out, org.is_split());
    match org.translation() {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u32(&mut out, t.page_words);
            put_u32(&mut out, t.tlb_entries);
            put_u32(&mut out, t.tlb_assoc);
            put_u64(&mut out, t.miss_penalty);
        }
    }
    put_u64(&mut out, trace.refs());
    put_u64(&mut out, trace.couplets());
    put_cache_stats(&mut out, trace.l1i_stats());
    put_cache_stats(&mut out, trace.l1d_stats());
    match trace.mmu_stats() {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_u64(&mut out, m.accesses);
            put_u64(&mut out, m.misses);
        }
    }
    put_u64(&mut out, trace.ops().len() as u64);
    for op in trace.ops() {
        put_op(&mut out, op);
    }
    out
}

/// Deserializes a payload produced by [`encode`].
///
/// # Errors
///
/// [`CodecError`] on truncation, undefined tags or versions, trailing
/// bytes, or a configuration that fails re-validation. Never panics on
/// arbitrary input.
pub fn decode(bytes: &[u8]) -> Result<EventTrace, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.u8()?;
    if version != PAYLOAD_VERSION {
        return Err(CodecError::Invalid("unsupported payload version"));
    }
    let l1i = get_cache_config(&mut r)?;
    let l1d = get_cache_config(&mut r)?;
    let split = r.bool()?;
    let translation = match r.u8()? {
        0 => None,
        1 => {
            let t = TranslationConfig {
                page_words: r.u32()?,
                tlb_entries: r.u32()?,
                tlb_assoc: r.u32()?,
                miss_penalty: r.u64()?,
            };
            t.validate().map_err(|e| CodecError::Config(e.to_string()))?;
            Some(t)
        }
        _ => return Err(CodecError::Invalid("translation flag")),
    };
    // OrgConfig's fields are private to `system`; rebuild it through the
    // system builder (which re-validates the combination) and take the
    // organization half. The timing half is defaulted and discarded.
    let mut b = SystemConfig::builder();
    b.l1i(l1i).l1d(l1d).unified(!split);
    if let Some(t) = translation {
        b.translation(t);
    }
    let org: OrgConfig = b
        .build()
        .map_err(|e| CodecError::Config(e.to_string()))?
        .organization();

    let refs = r.u64()?;
    let couplets = r.u64()?;
    let l1i_stats = get_cache_stats(&mut r)?;
    let l1d_stats = get_cache_stats(&mut r)?;
    let mmu = match r.u8()? {
        0 => None,
        1 => Some(MmuStats {
            accesses: r.u64()?,
            misses: r.u64()?,
        }),
        _ => return Err(CodecError::Invalid("mmu flag")),
    };
    let op_count = r.u64()?;
    // The smallest op (WarmBoundary) is one byte, so a claimed count
    // beyond the remaining input is provably a lie — reject before
    // reserving anything.
    if op_count > r.remaining() as u64 {
        return Err(CodecError::Truncated);
    }
    let mut ops = Vec::with_capacity(op_count as usize);
    for _ in 0..op_count {
        ops.push(get_op(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok(EventTrace::from_raw_parts(
        org, ops, refs, couplets, l1i_stats, l1d_stats, mmu,
    ))
}

// ---------------------------------------------------------------- writers

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_cache_config(out: &mut Vec<u8>, c: &CacheConfig) {
    put_u64(out, c.size().bytes());
    put_u32(out, c.block().words());
    put_u32(out, c.fetch().words());
    put_u32(out, c.assoc().ways());
    out.push(match c.replacement() {
        ReplacementPolicy::Random => 0,
        ReplacementPolicy::Lru => 1,
        ReplacementPolicy::Fifo => 2,
        ReplacementPolicy::TreePlru => 3,
    });
    out.push(match c.write_policy() {
        WritePolicy::WriteBack => 0,
        WritePolicy::WriteThrough => 1,
    });
    out.push(match c.write_allocate() {
        WriteAllocate::NoAllocate => 0,
        WriteAllocate::Allocate => 1,
    });
    put_bool(out, c.virtual_tags());
    put_u64(out, c.rng_seed());
    match c.features().victim_cache() {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u32(out, v.entries());
        }
    }
    out.push(match c.features().way_prediction() {
        None => 0,
        Some(WayPrediction::Mru) => 1,
        Some(WayPrediction::MultiColumn) => 2,
    });
}

fn put_cache_stats(out: &mut Vec<u8>, s: &CacheStats) {
    for v in [
        s.reads,
        s.read_misses,
        s.writes,
        s.write_misses,
        s.fills,
        s.fill_words,
        s.evictions,
        s.dirty_evictions,
        s.write_back_words,
        s.dirty_words_written_back,
        s.word_writes_downstream,
        s.victim_hits,
        s.way_first_hits,
        s.way_slow_hits,
        s.way_probe_rounds,
    ] {
        put_u64(out, v);
    }
}

fn put_victim(out: &mut Vec<u8>, v: &Option<VictimBlock>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v.addr.value());
            put_u32(out, v.words);
        }
    }
}

fn put_access(out: &mut Vec<u8>, a: &AccessEvent) {
    match a {
        AccessEvent::ReadHit => out.push(0),
        AccessEvent::ReadMiss {
            fetch_start,
            fill_words,
            victim,
        } => {
            out.push(1);
            put_u64(out, fetch_start.value());
            put_u32(out, *fill_words);
            put_victim(out, victim);
        }
        AccessEvent::WriteHit { through } => {
            out.push(2);
            put_bool(out, *through);
        }
        AccessEvent::WriteMissAround => out.push(3),
        AccessEvent::WriteMissAllocate {
            fetch_start,
            fill_words,
            victim,
            through,
        } => {
            out.push(4);
            put_u64(out, fetch_start.value());
            put_u32(out, *fill_words);
            put_victim(out, victim);
            put_bool(out, *through);
        }
        AccessEvent::ReadSlowHit => out.push(5),
        AccessEvent::ReadVictimHit => out.push(6),
        AccessEvent::WriteVictimHit { through } => {
            out.push(7);
            put_bool(out, *through);
        }
    }
}

fn put_ref_event(out: &mut Vec<u8>, r: &Option<RefEvent>) {
    match r {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_u64(out, r.addr.value());
            put_u16(out, r.pid.0);
            put_u64(out, r.walk_cycles);
            put_access(out, &r.access);
        }
    }
}

fn put_op(out: &mut Vec<u8>, op: &EventOp) {
    match op {
        EventOp::HitRun { counts } => {
            out.push(0);
            for c in counts {
                put_u32(out, *c);
            }
        }
        EventOp::Couplet { iref, dref } => {
            out.push(1);
            put_ref_event(out, iref);
            put_ref_event(out, dref);
        }
        EventOp::WarmBoundary => out.push(2),
    }
}

// ---------------------------------------------------------------- readers

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte")),
        }
    }
}

fn get_cache_config(r: &mut Reader<'_>) -> Result<CacheConfig, CodecError> {
    let size = CacheSize::from_bytes(r.u64()?).map_err(|e| CodecError::Config(e.to_string()))?;
    let block = BlockWords::new(r.u32()?).map_err(|e| CodecError::Config(e.to_string()))?;
    let fetch = BlockWords::new(r.u32()?).map_err(|e| CodecError::Config(e.to_string()))?;
    let assoc = Assoc::new(r.u32()?).map_err(|e| CodecError::Config(e.to_string()))?;
    let replacement = match r.u8()? {
        0 => ReplacementPolicy::Random,
        1 => ReplacementPolicy::Lru,
        2 => ReplacementPolicy::Fifo,
        3 => ReplacementPolicy::TreePlru,
        _ => return Err(CodecError::Invalid("replacement tag")),
    };
    let write_policy = match r.u8()? {
        0 => WritePolicy::WriteBack,
        1 => WritePolicy::WriteThrough,
        _ => return Err(CodecError::Invalid("write-policy tag")),
    };
    let write_allocate = match r.u8()? {
        0 => WriteAllocate::NoAllocate,
        1 => WriteAllocate::Allocate,
        _ => return Err(CodecError::Invalid("write-allocate tag")),
    };
    let virtual_tags = r.bool()?;
    let rng_seed = r.u64()?;
    let victim = match r.u8()? {
        0 => None,
        1 => Some(
            VictimCacheConfig::new(r.u32()?).map_err(|e| CodecError::Config(e.to_string()))?,
        ),
        _ => return Err(CodecError::Invalid("victim-cache flag")),
    };
    let way_prediction = match r.u8()? {
        0 => None,
        1 => Some(WayPrediction::Mru),
        2 => Some(WayPrediction::MultiColumn),
        _ => return Err(CodecError::Invalid("way-prediction tag")),
    };
    let mut b = CacheConfig::builder(size);
    b.block(block)
        .fetch(fetch)
        .assoc(assoc)
        .replacement(replacement)
        .write_policy(write_policy)
        .write_allocate(write_allocate)
        .virtual_tags(virtual_tags)
        .rng_seed(rng_seed);
    if let Some(v) = victim {
        b.victim_cache(v);
    }
    if let Some(p) = way_prediction {
        b.way_prediction(p);
    }
    b.build().map_err(|e| CodecError::Config(e.to_string()))
}

fn get_cache_stats(r: &mut Reader<'_>) -> Result<CacheStats, CodecError> {
    Ok(CacheStats {
        reads: r.u64()?,
        read_misses: r.u64()?,
        writes: r.u64()?,
        write_misses: r.u64()?,
        fills: r.u64()?,
        fill_words: r.u64()?,
        evictions: r.u64()?,
        dirty_evictions: r.u64()?,
        write_back_words: r.u64()?,
        dirty_words_written_back: r.u64()?,
        word_writes_downstream: r.u64()?,
        victim_hits: r.u64()?,
        way_first_hits: r.u64()?,
        way_slow_hits: r.u64()?,
        way_probe_rounds: r.u64()?,
    })
}

fn get_victim(r: &mut Reader<'_>) -> Result<Option<VictimBlock>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(VictimBlock {
            addr: WordAddr::new(r.u64()?),
            words: r.u32()?,
        })),
        _ => Err(CodecError::Invalid("victim flag")),
    }
}

fn get_access(r: &mut Reader<'_>) -> Result<AccessEvent, CodecError> {
    Ok(match r.u8()? {
        0 => AccessEvent::ReadHit,
        1 => AccessEvent::ReadMiss {
            fetch_start: WordAddr::new(r.u64()?),
            fill_words: r.u32()?,
            victim: get_victim(r)?,
        },
        2 => AccessEvent::WriteHit { through: r.bool()? },
        3 => AccessEvent::WriteMissAround,
        4 => AccessEvent::WriteMissAllocate {
            fetch_start: WordAddr::new(r.u64()?),
            fill_words: r.u32()?,
            victim: get_victim(r)?,
            through: r.bool()?,
        },
        5 => AccessEvent::ReadSlowHit,
        6 => AccessEvent::ReadVictimHit,
        7 => AccessEvent::WriteVictimHit { through: r.bool()? },
        _ => return Err(CodecError::Invalid("access tag")),
    })
}

fn get_ref_event(r: &mut Reader<'_>) -> Result<Option<RefEvent>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(RefEvent {
            addr: WordAddr::new(r.u64()?),
            pid: Pid(r.u16()?),
            walk_cycles: r.u64()?,
            access: get_access(r)?,
        })),
        _ => Err(CodecError::Invalid("ref-event flag")),
    }
}

fn get_op(r: &mut Reader<'_>) -> Result<EventOp, CodecError> {
    Ok(match r.u8()? {
        0 => {
            let mut counts = [0u32; CoupletClass::COUNT];
            for c in &mut counts {
                *c = r.u32()?;
            }
            EventOp::HitRun { counts }
        }
        1 => EventOp::Couplet {
            iref: get_ref_event(r)?,
            dref: get_ref_event(r)?,
        },
        2 => EventOp::WarmBoundary,
        _ => return Err(CodecError::Invalid("op tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BehavioralSim;
    use cachetime_trace::catalog;

    #[test]
    fn round_trip_paper_default() {
        let config = SystemConfig::paper_default().unwrap();
        let trace = catalog::mu3(0.02).generate();
        let events = BehavioralSim::new(&config.organization()).record(&trace);
        let bytes = encode(&events);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, events);
    }

    #[test]
    fn truncation_never_panics() {
        let config = SystemConfig::paper_default().unwrap();
        let trace = catalog::mu3(0.01).generate();
        let events = BehavioralSim::new(&config.organization()).record(&trace);
        let bytes = encode(&events);
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "prefix {len} decoded");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let config = SystemConfig::paper_default().unwrap();
        let trace = catalog::mu3(0.01).generate();
        let events = BehavioralSim::new(&config.organization()).record(&trace);
        let mut bytes = encode(&events);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::Invalid("trailing bytes")));
    }

    #[test]
    fn bad_version_rejected() {
        let config = SystemConfig::paper_default().unwrap();
        let trace = catalog::mu3(0.01).generate();
        let events = BehavioralSim::new(&config.organization()).record(&trace);
        let mut bytes = encode(&events);
        bytes[0] = PAYLOAD_VERSION + 1;
        assert!(matches!(decode(&bytes), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn bogus_op_count_is_rejected_before_allocating() {
        let config = SystemConfig::paper_default().unwrap();
        let trace = catalog::mu3(0.01).generate();
        let events = BehavioralSim::new(&config.organization()).record(&trace);
        let bytes = encode(&events);
        // Find the op-count field: it sits right before the first op. The
        // encoding is deterministic, so re-encode a zero-op trace to learn
        // the header length.
        let empty = EventTrace::from_raw_parts(
            *events.organization(),
            Vec::new(),
            events.refs(),
            events.couplets(),
            *events.l1i_stats(),
            *events.l1d_stats(),
            events.mmu_stats().copied(),
        );
        let header_len = encode(&empty).len() - 8;
        let mut bytes = bytes;
        bytes[header_len..header_len + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::Truncated));
    }
}
