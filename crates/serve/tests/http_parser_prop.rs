//! Property tests for the HTTP head parser — the one piece of the server
//! that runs on fully untrusted bytes. On the hermetic testkit runner
//! (`TESTKIT_SEED=… cargo test` reproduces any failure).

use cachetime_serve::http::{parse_request, Parsed, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, SplitMix64};

/// Runs the parser under `catch_unwind` so a panic shrinks like any other
/// failure instead of aborting the run on the first giant input.
fn parse_caught(buf: &mut Vec<u8>) -> Result<Result<Parsed, u16>, String> {
    let mut moved = std::mem::take(buf);
    std::panic::catch_unwind(move || {
        let r = parse_request(&mut moved);
        (moved, r)
    })
    .map(|(rest, r)| {
        *buf = rest;
        r.map_err(|e| e.status)
    })
    .map_err(|_| "parser panicked".to_string())
}

/// Arbitrary bytes — mostly raw garbage, sometimes ASCII-ish with CRLFs
/// sprinkled in so head framing is actually reached.
fn gen_garbage(rng: &mut SplitMix64) -> Vec<u8> {
    let len = rng.gen_range(0usize..2048);
    let mut bytes = vec![0u8; len];
    if rng.gen_bool(0.5) {
        rng.fill(&mut bytes);
    } else {
        for b in &mut bytes {
            *b = match rng.gen_range(0u32..8) {
                0 => b'\r',
                1 => b'\n',
                2 => b' ',
                3 => b':',
                _ => rng.gen_range(0x20u64..0x7f) as u8,
            };
        }
    }
    bytes
}

#[test]
fn garbage_never_panics_and_errors_carry_real_statuses() {
    check(
        "garbage_never_panics",
        gen_garbage,
        shrink::vec_linear,
        |input| {
            let mut buf = input.clone();
            match parse_caught(&mut buf)? {
                Ok(Parsed::Incomplete) => {
                    // The parser may only wait for more bytes while the
                    // head cap has not been blown.
                    prop_assert!(input.len() <= MAX_HEAD_BYTES || has_head_end(input));
                }
                Ok(Parsed::Request(_)) => {} // garbage that happens to parse is fine
                Ok(Parsed::Chunked { .. }) => {} // ...as is a chunked head
                Err(status) => {
                    prop_assert!(
                        status == 400 || status == 413 || status == 431,
                        "unexpected status {}",
                        status
                    );
                }
            }
            Ok(())
        },
    );
}

fn has_head_end(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// A structurally valid request with randomized method, path, body,
/// keep-alive, and optional deadline header.
#[derive(Debug, Clone)]
struct ValidReq {
    method: &'static str,
    path: String,
    body: Vec<u8>,
    close: bool,
    deadline_ms: Option<u64>,
}

fn gen_valid(rng: &mut SplitMix64) -> ValidReq {
    let method = ["GET", "POST", "PUT", "HEAD"][rng.gen_range(0usize..4)];
    let depth = rng.gen_range(1usize..4);
    let mut path = String::new();
    for _ in 0..depth {
        path.push('/');
        for _ in 0..rng.gen_range(1usize..8) {
            path.push(rng.gen_range(b'a' as u64..b'z' as u64 + 1) as u8 as char);
        }
    }
    let mut body = vec![0u8; rng.gen_range(0usize..512)];
    rng.fill(&mut body);
    ValidReq {
        method,
        path,
        body,
        close: rng.gen_bool(0.3),
        deadline_ms: if rng.gen_bool(0.3) {
            Some(rng.gen_range(1u64..60_000))
        } else {
            None
        },
    }
}

fn serialize(r: &ValidReq) -> Vec<u8> {
    let mut head = format!(
        "{} {} HTTP/1.1\r\nHost: prop\r\nContent-Length: {}\r\n",
        r.method,
        r.path,
        r.body.len()
    );
    if let Some(ms) = r.deadline_ms {
        head.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
    }
    if r.close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&r.body);
    bytes
}

#[test]
fn valid_requests_round_trip_and_prefixes_never_error() {
    check(
        "valid_requests_round_trip",
        |rng| (gen_valid(rng), rng.next_u64()),
        shrink::none,
        |(req, cut_salt)| {
            let wire = serialize(req);
            // Every strict prefix is Incomplete — a slow sender is never
            // misread as malformed, no matter where the bytes pause.
            let cut = (*cut_salt as usize) % wire.len();
            let mut partial = wire[..cut].to_vec();
            match parse_caught(&mut partial)? {
                Ok(Parsed::Incomplete) => {}
                Ok(Parsed::Request(_)) => {
                    return Err("prefix parsed as a complete request".into())
                }
                Ok(Parsed::Chunked { .. }) => {
                    return Err("Content-Length prefix parsed as chunked".into())
                }
                Err(s) => return Err(format!("prefix rejected with {s}")),
            }
            // The full bytes parse back to exactly what was serialized.
            let mut buf = wire.clone();
            match parse_caught(&mut buf)? {
                Ok(Parsed::Request(parsed)) => {
                    prop_assert_eq!(parsed.method.as_str(), req.method);
                    prop_assert_eq!(&parsed.path, &req.path);
                    prop_assert_eq!(&parsed.body, &req.body);
                    prop_assert_eq!(parsed.keep_alive, !req.close);
                    prop_assert_eq!(parsed.deadline_ms, req.deadline_ms);
                    prop_assert!(buf.is_empty(), "request bytes not fully drained");
                }
                other => return Err(format!("full request did not parse: {other:?}")),
            }
            Ok(())
        },
    );
}

#[test]
fn size_limits_map_to_their_statuses() {
    check(
        "size_limits_map_to_statuses",
        |rng| {
            (
                rng.gen_range(MAX_BODY_BYTES as u64 + 1..u64::MAX / 2),
                rng.gen_range(MAX_HEAD_BYTES as u64 + 1..MAX_HEAD_BYTES as u64 * 4),
            )
        },
        shrink::none,
        |&(claim, head_len)| {
            // Oversized Content-Length: 413 at head-parse time, before any
            // body byte exists.
            let mut buf =
                format!("POST /x HTTP/1.1\r\nContent-Length: {claim}\r\n\r\n").into_bytes();
            match parse_caught(&mut buf)? {
                Err(413) => {}
                other => return Err(format!("oversized claim: {other:?}")),
            }
            // A head that never terminates: 431 once past the cap.
            let mut buf = vec![b'x'; head_len as usize];
            match parse_caught(&mut buf)? {
                Err(431) => {}
                other => return Err(format!("runaway head: {other:?}")),
            }
            Ok(())
        },
    );
}

#[test]
fn duplicate_content_length_is_always_400() {
    // Request-smuggling guard (RFC 9112 §6.3): a head carrying more than
    // one Content-Length is rejected outright — even when the copies
    // agree — never resolved by picking one of the values.
    check(
        "duplicate_content_length_is_400",
        |rng| {
            let req = gen_valid(rng);
            // Second claim: sometimes agreeing, sometimes conflicting,
            // with randomized header-name casing.
            let second = if rng.gen_bool(0.5) {
                req.body.len() as u64
            } else {
                rng.gen_range(0u64..MAX_BODY_BYTES as u64)
            };
            let name = ["Content-Length", "content-length", "CONTENT-LENGTH"]
                [rng.gen_range(0usize..3)];
            (req, second, name)
        },
        shrink::none,
        |(req, second, name)| {
            let wire = serialize(req);
            // Splice the duplicate header in just before the blank line.
            let head_end = wire
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .ok_or("serialized request has no head terminator")?;
            let mut buf = wire[..head_end + 2].to_vec();
            buf.extend_from_slice(format!("{name}: {second}\r\n\r\n").as_bytes());
            buf.extend_from_slice(&req.body);
            match parse_caught(&mut buf)? {
                Err(400) => Ok(()),
                other => Err(format!("duplicate Content-Length parsed: {other:?}")),
            }
        },
    );
}

#[test]
fn chunked_uploads_round_trip_under_any_chunking_and_read_slicing() {
    // Two independent randomizations: how the sender splits the body into
    // chunks, and how the "socket" slices the wire into reads. The
    // dechunked body must be bit-identical to the original either way.
    check(
        "chunked_uploads_round_trip",
        |rng| {
            let mut body = vec![0u8; rng.gen_range(0usize..2048)];
            rng.fill(&mut body);
            let mut splits = Vec::new();
            let mut at = 0;
            while at < body.len() {
                let take = rng.gen_range(1usize..512).min(body.len() - at);
                splits.push(take);
                at += take;
            }
            (body, splits, rng.gen_range(1usize..97))
        },
        shrink::none,
        |(body, splits, read_size)| {
            let mut wire = b"POST /v1/traces HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
            let mut at = 0;
            for take in splits {
                wire.extend_from_slice(format!("{take:x}\r\n").as_bytes());
                wire.extend_from_slice(&body[at..at + take]);
                wire.extend_from_slice(b"\r\n");
                at += take;
            }
            wire.extend_from_slice(b"0\r\n\r\n");
            let mut buf = Vec::new();
            let mut pending = None;
            let mut result = None;
            for piece in wire.chunks(*read_size) {
                buf.extend_from_slice(piece);
                if pending.is_none() {
                    match parse_caught(&mut buf)? {
                        Ok(Parsed::Incomplete) => continue,
                        Ok(Parsed::Chunked { decoder, .. }) => pending = Some(decoder),
                        other => return Err(format!("head did not frame chunked: {other:?}")),
                    }
                }
                if let Some(decoder) = pending.as_mut() {
                    if decoder.feed(&mut buf).map_err(|e| format!("feed: {}", e.msg))? {
                        result = Some(pending.take().ok_or("decoder vanished")?.into_body());
                    }
                }
            }
            let got = result.ok_or("upload never completed")?;
            prop_assert_eq!(&got, body);
            prop_assert!(buf.is_empty(), "terminator bytes not drained");
            Ok(())
        },
    );
}

#[test]
fn pipelined_requests_parse_in_order() {
    check(
        "pipelined_requests_parse_in_order",
        |rng| {
            let n = rng.gen_range(1usize..6);
            (0..n).map(|_| gen_valid(rng)).collect::<Vec<_>>()
        },
        shrink::vec_linear,
        |reqs| {
            let mut wire = Vec::new();
            for r in reqs {
                wire.extend_from_slice(&serialize(r));
            }
            for (i, expect) in reqs.iter().enumerate() {
                match parse_caught(&mut wire)? {
                    Ok(Parsed::Request(parsed)) => {
                        prop_assert_eq!(&parsed.path, &expect.path, "request {}", i);
                        prop_assert_eq!(&parsed.body, &expect.body, "request {}", i);
                    }
                    other => return Err(format!("request {i} did not parse: {other:?}")),
                }
            }
            prop_assert!(wire.is_empty());
            Ok(())
        },
    );
}
