//! In-tree throughput harness — no external benchmark framework needed.
//!
//! `cargo run -p cachetime-bench --release -- sweep` times a Figure
//! 3-1-style grid serially and in parallel, prints refs/sec for both,
//! and writes the numbers to `BENCH_sweep.json` for tracking across
//! commits. The Criterion benches (`benches/`) remain available behind
//! the `criterion` feature for statistically rigorous comparisons; this
//! harness is the one that runs offline with zero dependencies.

use cachetime::{simulate, sweep, SimResult, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_trace::{catalog, Trace};
use cachetime_types::{CacheSize, CycleTime};
use std::time::Duration;

const SCALE: f64 = 0.05;

/// One grid cell: per-cache size × cycle time × trace index.
#[derive(Debug, Clone, Copy)]
struct Cell {
    size_kib: u64,
    ct_ns: u32,
    trace: usize,
}

fn build_grid(n_traces: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for size_kib in [1u64, 2, 4, 8, 16, 32] {
        for ct_ns in [30u32, 40, 50, 60] {
            for trace in 0..n_traces {
                cells.push(Cell {
                    size_kib,
                    ct_ns,
                    trace,
                });
            }
        }
    }
    cells
}

fn simulate_cell(cell: &Cell, traces: &[Trace]) -> SimResult {
    let l1 = CacheConfig::builder(CacheSize::from_kib(cell.size_kib).expect("pow2"))
        .build()
        .expect("valid cache");
    let config = SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(cell.ct_ns).expect("nonzero"))
        .l1_both(l1)
        .build()
        .expect("valid system");
    simulate(&config, &traces[cell.trace])
}

struct Measurement {
    jobs: usize,
    wall: Duration,
    refs_per_sec: f64,
}

fn measure(cells: &[Cell], traces: &[Trace], jobs: usize, work_refs: u64) -> Measurement {
    let run = sweep::run(cells, jobs, |_, c| simulate_cell(c, traces)).expect("sweep succeeds");
    Measurement {
        jobs: run.jobs,
        wall: run.wall_time,
        refs_per_sec: run.throughput(work_refs),
    }
}

fn run_sweep_bench() {
    let specs = catalog::all(SCALE);
    eprintln!("[bench] generating {} traces at scale {SCALE}...", specs.len());
    let traces: Vec<Trace> = specs.iter().map(|s| s.generate()).collect();
    let cells = build_grid(traces.len());
    let refs_per_pass: u64 = cells
        .iter()
        .map(|c| traces[c.trace].refs().len() as u64)
        .sum();
    eprintln!(
        "[bench] grid: {} cells, {refs_per_pass} refs per pass",
        cells.len()
    );

    // Warm-up pass so page faults and lazy allocation don't bias the
    // serial leg.
    let _ = measure(&cells, &traces, 1, refs_per_pass);

    let serial = measure(&cells, &traces, 1, refs_per_pass);
    let parallel = measure(&cells, &traces, 0, refs_per_pass);
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64();

    println!(
        "serial   (1 job):   {:>10.0} refs/sec  wall {:?}",
        serial.refs_per_sec, serial.wall
    );
    println!(
        "parallel ({} jobs): {:>10.0} refs/sec  wall {:?}",
        parallel.jobs, parallel.refs_per_sec, parallel.wall
    );
    println!("speedup: {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"scale\": {SCALE},\n  \"cells\": {},\n  \
         \"refs_per_pass\": {refs_per_pass},\n  \"serial\": {{ \"jobs\": 1, \
         \"wall_secs\": {:.6}, \"refs_per_sec\": {:.0} }},\n  \"parallel\": {{ \
         \"jobs\": {}, \"wall_secs\": {:.6}, \"refs_per_sec\": {:.0} }},\n  \
         \"speedup\": {speedup:.3}\n}}\n",
        cells.len(),
        serial.wall.as_secs_f64(),
        serial.refs_per_sec,
        parallel.jobs,
        parallel.wall.as_secs_f64(),
        parallel.refs_per_sec,
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    eprintln!("[bench] wrote BENCH_sweep.json");
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("sweep") => run_sweep_bench(),
        _ => {
            eprintln!("usage: cachetime-bench sweep");
            eprintln!();
            eprintln!("  sweep    time a speed/size grid serially vs in parallel,");
            eprintln!("           print refs/sec, and write BENCH_sweep.json");
            std::process::exit(2);
        }
    }
}
