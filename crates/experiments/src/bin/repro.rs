//! `repro` — regenerate every table and figure of *Performance Tradeoffs
//! in Cache Design* (ISCA 1988).
//!
//! ```text
//! repro [--scale F] [--quick] [--jobs N] <experiment>...
//! repro list            # the experiment index
//! repro all             # everything, sharing the big grids
//! ```
//!
//! `--scale` multiplies the trace lengths (1.0 = paper-sized, the default
//! 0.25 keeps a laptop run in seconds per experiment; footprints never
//! scale). `--quick` is shorthand for `--scale 0.05`. `--jobs N` sets the
//! simulation worker count (default: all available cores; `--jobs 1`
//! forces serial). Output is bit-identical for every job count.
//! `--profile PATH` appends engine span timings (record/replay/sweep) as
//! JSONL trace records to PATH while the experiments run.

use cachetime_experiments::runner::{SpeedSizeGrid, TraceSet, SIZES_PER_CACHE_KB};
use cachetime_experiments::{
    csv, designer, ext, fig3_1, fig3_2, fig3_3, fig3_4, fig4_1, fig4_2, fig4_345,
    fig_assoc_threshold, fig5_1, fig5_2, fig5_3, fig5_4, sec6, table1, table2, table3,
};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "description of the traces"),
    ("table2", "memory access cycle counts vs cycle time"),
    ("fig3-1", "miss and traffic ratios vs total L1 size"),
    ("fig3-2", "normalized cycle count vs size and cycle time"),
    ("fig3-3", "execution time vs size and cycle time"),
    ("fig3-4", "lines of equal performance; ns per doubling"),
    ("fig4-1", "read miss ratio vs set associativity"),
    (
        "fig4-2",
        "execution time vs size, associativity, cycle time",
    ),
    (
        "fig-assoc-threshold",
        "associativity threshold: way prediction and victim caches vs the 2-way break-even",
    ),
    ("fig4-3", "break-even cycle time for set size 2"),
    ("fig4-4", "break-even cycle time for set size 4"),
    ("fig4-5", "break-even cycle time for set size 8"),
    ("fig5-1", "miss ratios and execution time vs block size"),
    (
        "fig5-2",
        "execution time vs block size and memory parameters",
    ),
    ("fig5-3", "optimal execution time vs memory parameters"),
    ("fig5-4", "optimal block size vs memory speed product"),
    ("table3", "memory performance vs cache miss penalty"),
    ("sec6", "two-level hierarchy experiment"),
    (
        "ext-mmu",
        "extension: virtual vs physical caches (MMU + TLB)",
    ),
    ("ext-fill", "extension: fill policy vs optimal block size"),
    ("ext-write", "extension: write policy comparison"),
    ("ext-split", "extension: I:D capacity partition"),
    ("ext-subblock", "extension: sub-block fetching"),
    (
        "ext-seeds",
        "extension: seed robustness of the headline results",
    ),
    (
        "designer",
        "rank the paper-era RAM catalog by execution time",
    ),
];

/// Lazily computed shared state: traces and the expensive grids.
struct Ctx {
    scale: f64,
    jobs: usize,
    csv_dir: Option<std::path::PathBuf>,
    traces: Option<TraceSet>,
    dm_grid: Option<SpeedSizeGrid>,
    assoc_grids: Option<fig4_2::AssocGrids>,
    fig5_2_curves: Option<Vec<fig5_2::Curve>>,
}

impl Ctx {
    fn traces(&mut self) -> &TraceSet {
        if self.traces.is_none() {
            let t0 = Instant::now();
            self.traces = Some(TraceSet::generate_jobs(self.scale, self.jobs));
            eprintln!("[traces generated in {:.1?}]", t0.elapsed());
        }
        self.traces.as_ref().expect("just generated")
    }

    fn dm_grid(&mut self) -> &SpeedSizeGrid {
        if self.dm_grid.is_none() {
            self.traces();
            let t0 = Instant::now();
            let grid =
                SpeedSizeGrid::compute_jobs(self.traces.as_ref().expect("generated"), 1, self.jobs);
            eprintln!("[speed-size grid in {:.1?}]", t0.elapsed());
            self.dm_grid = Some(grid);
        }
        self.dm_grid.as_ref().expect("just computed")
    }

    fn assoc_grids(&mut self) -> &fig4_2::AssocGrids {
        if self.assoc_grids.is_none() {
            self.traces();
            let t0 = Instant::now();
            let grids = fig4_2::run_jobs(self.traces.as_ref().expect("generated"), self.jobs);
            eprintln!("[associativity grids in {:.1?}]", t0.elapsed());
            self.assoc_grids = Some(grids);
        }
        self.assoc_grids.as_ref().expect("just computed")
    }

    fn fig5_2_curves(&mut self) -> &[fig5_2::Curve] {
        if self.fig5_2_curves.is_none() {
            self.traces();
            let t0 = Instant::now();
            let curves = fig5_2::run_jobs(self.traces.as_ref().expect("generated"), self.jobs);
            eprintln!("[block-size curves in {:.1?}]", t0.elapsed());
            self.fig5_2_curves = Some(curves);
        }
        self.fig5_2_curves.as_ref().expect("just computed")
    }
}

fn write_csv(ctx: &Ctx, name: &str, contents: &str) {
    let Some(dir) = &ctx.csv_dir else { return };
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        eprintln!("[wrote {}]", path.display());
    }
}

fn run_one(ctx: &mut Ctx, id: &str) -> Result<(), String> {
    let t0 = Instant::now();
    match id {
        "table1" => println!("{}", table1::render(&table1::run(ctx.traces()))),
        "table2" => {
            let rows = table2::run();
            write_csv(ctx, "table2", &csv::table2(&rows));
            println!("{}", table2::render(&rows));
        }
        "fig3-1" => {
            let pts = fig3_1::run(ctx.traces());
            write_csv(ctx, "fig3-1", &csv::fig3_1(&pts));
            println!("{}", fig3_1::render(&pts));
        }
        "fig3-2" => println!("{}", fig3_2::render(&fig3_2::run(ctx.dm_grid()))),
        "fig3-3" => {
            println!("{}", fig3_3::render(&fig3_3::run(ctx.dm_grid())));
            let g = csv::grid(ctx.dm_grid());
            write_csv(ctx, "speed-size-grid", &g);
        }
        "fig3-4" => {
            println!("{}", fig3_4::render(&fig3_4::run(ctx.dm_grid(), 16)));
            println!(
                "{}",
                fig3_4::render_slope_map(&fig3_4::slope_map(ctx.dm_grid()))
            );
        }
        "fig4-1" => {
            let m = fig4_1::run(ctx.traces());
            write_csv(ctx, "fig4-1", &csv::fig4_1(&m));
            println!("{}", fig4_1::render(&m));
        }
        "fig4-2" => {
            println!("{}", fig4_2::render(ctx.assoc_grids()));
            let all: String = ctx
                .assoc_grids()
                .grids
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let csv_text = csv::grid(g);
                    if i == 0 {
                        csv_text
                    } else {
                        // Drop the repeated header for a single long file.
                        csv_text
                            .split_once('\n')
                            .map(|x| x.1.to_string())
                            .unwrap_or_default()
                    }
                })
                .collect();
            write_csv(ctx, "fig4-2", &all);
        }
        "fig-assoc-threshold" => {
            let jobs = ctx.jobs;
            let study = fig_assoc_threshold::run(ctx.traces(), jobs);
            write_csv(ctx, "fig-assoc-threshold", &fig_assoc_threshold::to_csv(&study));
            println!("{}", fig_assoc_threshold::render(&study));
        }
        "fig4-3" | "fig4-4" | "fig4-5" => {
            let ways = match id {
                "fig4-3" => 2,
                "fig4-4" => 4,
                _ => 8,
            };
            let m = fig4_345::run(ctx.assoc_grids(), ways);
            write_csv(ctx, id, &csv::break_even(&m));
            println!("{}", fig4_345::render(&m));
        }
        "fig5-1" => {
            let pts = fig5_1::run(ctx.traces());
            write_csv(ctx, "fig5-1", &csv::fig5_1(&pts));
            println!("{}", fig5_1::render(&pts));
        }
        "fig5-2" => println!("{}", fig5_2::render(ctx.fig5_2_curves())),
        "fig5-3" => {
            let minima = fig5_3::run(ctx.fig5_2_curves());
            write_csv(ctx, "fig5-3", &csv::fig5_3(&minima));
            println!("{}", fig5_3::render(&minima));
        }
        "fig5-4" => {
            let minima = fig5_3::run(ctx.fig5_2_curves());
            let pts = fig5_4::run(&minima);
            write_csv(ctx, "fig5-4", &csv::fig5_4(&pts));
            println!("{}", fig5_4::render(&pts));
        }
        "table3" => {
            let grid = ctx.dm_grid();
            let rows = table3::run(grid);
            println!("{}", table3::render(grid, &rows, &[4, 16, 64, 256]));
        }
        "sec6" => {
            let sizes: Vec<u64> = SIZES_PER_CACHE_KB[..8].to_vec();
            let (without, with) = sec6::run(ctx.traces(), 20, &sizes);
            write_csv(ctx, "sec6", &csv::sec6(&without, &with));
            println!("{}", sec6::render(&without, &with));
        }
        "ext-mmu" => {
            let pts = ext::translation::run(ctx.traces(), &[2, 8, 32, 128, 512]);
            println!("{}", ext::translation::render(&pts));
        }
        "ext-fill" => {
            let pts = ext::fill_policy::run(ctx.traces(), &[1, 2, 4, 8, 16, 32, 64, 128]);
            println!("{}", ext::fill_policy::render(&pts));
        }
        "ext-write" => {
            println!(
                "{}",
                ext::write_policy::render(&ext::write_policy::run(ctx.traces()))
            );
        }
        "ext-split" => {
            println!(
                "{}",
                ext::split_ratio::render(&ext::split_ratio::run(ctx.traces()))
            );
        }
        "ext-subblock" => {
            println!(
                "{}",
                ext::sub_block::render(&ext::sub_block::run(ctx.traces()))
            );
        }
        "ext-seeds" => {
            // Re-rolls generate their own trace sets; cap the cost.
            let scale = ctx.scale.min(0.25);
            println!("{}", ext::seeds::render(&ext::seeds::run(scale, 3)));
        }
        "designer" => {
            let catalog = designer::paper_era_catalog().expect("valid catalog");
            let jobs = ctx.jobs;
            let ranked = designer::best_design_jobs(ctx.traces(), &catalog, jobs);
            println!("{}", designer::render(&ranked));
        }
        other => return Err(format!("unknown experiment '{other}' (try 'list')")),
    }
    eprintln!("[{id} in {:.1?}]", t0.elapsed());
    Ok(())
}

fn main() -> ExitCode {
    let mut scale = 0.25f64;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => match args.next() {
                Some(dir) => {
                    let dir = std::path::PathBuf::from(dir);
                    if let Err(e) = std::fs::create_dir_all(&dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    csv_dir = Some(dir);
                }
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => jobs = v,
                None => {
                    eprintln!("--jobs needs a non-negative integer (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => scale = 0.05,
            "--profile" => match args.next() {
                Some(path) => match cachetime_obs::JsonlSink::create(path.as_ref()) {
                    Ok(sink) => {
                        cachetime_obs::global().set_sink(Some(std::sync::Arc::new(sink)));
                    }
                    Err(e) => {
                        eprintln!("cannot open profile file {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--profile needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                println!("experiments (run with: repro [--scale F] <id>...):");
                for (id, desc) in EXPERIMENTS {
                    println!("  {id:8} {desc}");
                }
                println!("  all      every experiment, sharing the grids");
                return ExitCode::SUCCESS;
            }
            "all" => {
                wanted.extend(EXPERIMENTS.iter().map(|(id, _)| id.to_string()));
            }
            other => {
                wanted.insert(other.to_string());
            }
        }
    }
    if wanted.is_empty() {
        eprintln!("nothing to do; try 'repro list'");
        return ExitCode::FAILURE;
    }
    let mut ctx = Ctx {
        scale,
        jobs,
        csv_dir,
        traces: None,
        dm_grid: None,
        assoc_grids: None,
        fig5_2_curves: None,
    };
    eprintln!(
        "[scale {scale}, jobs {}]",
        cachetime_experiments::sweep::resolve_jobs(jobs)
    );
    // Run in the canonical order regardless of argument order.
    for (id, _) in EXPERIMENTS {
        if wanted.remove(*id) {
            if let Err(e) = run_one(&mut ctx, id) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!();
        }
    }
    if let Some(leftover) = wanted.iter().next() {
        eprintln!("unknown experiment '{leftover}' (try 'list')");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
