//! Figure 3-4: lines of equal performance across the speed–size space.
//!
//! "Horizontal slices through Figure 3-3 expose groups of machines with
//! equal performance. By vertically interpolating between the simulations
//! of the same cache size, we can estimate the cycle time required in
//! conjunction with each cache organization to attain any given
//! performance level." The slope of the resulting lines — nanoseconds of
//! cycle time per doubling of cache size — is the paper's headline
//! quantity: more than 10 ns per doubling below ~16 KB, under 2.5 ns above
//! ~256 KB.

use crate::runner::SpeedSizeGrid;
use cachetime_analysis::contour::{equal_performance_line, ns_per_doubling, slope_region};
use cachetime_analysis::table::Table;

/// The performance levels the paper draws: `1.1 + 0.3 k` times the best
/// execution time, for k = 0, 1, ….
pub fn paper_levels(n: usize) -> Vec<f64> {
    (0..n).map(|k| 1.1 + 0.3 * k as f64).collect()
}

/// Lines of equal performance plus ns-per-doubling slopes.
#[derive(Debug, Clone)]
pub struct EqualPerformance {
    /// Total L1 sizes (KB).
    pub sizes_total_kb: Vec<u64>,
    /// Performance levels (multiples of the best execution time).
    pub levels: Vec<f64>,
    /// `lines[level][size]`: interpolated cycle time (ns) at which that
    /// size attains the level; `None` when unattainable in 20–80 ns.
    pub lines: Vec<Vec<Option<f64>>>,
    /// `slopes[size]`: ns of cycle time per *doubling* of total size,
    /// evaluated at 40 ns between adjacent sizes (None when either curve
    /// misses the target).
    pub slopes: Vec<Option<f64>>,
}

/// The full ns-per-doubling map over the (size, cycle time) plane — the
/// figure's shaded regions.
#[derive(Debug, Clone)]
pub struct SlopeMap {
    /// Total L1 sizes (KB); each row is the doubling step starting there.
    pub sizes_total_kb: Vec<u64>,
    /// Cycle times (ns).
    pub cts_ns: Vec<u32>,
    /// `slope[size][ct]` in ns per doubling (None when interpolation
    /// leaves the sampled range).
    pub slope: Vec<Vec<Option<f64>>>,
}

impl SlopeMap {
    /// How nearly vertical the regions are: for each size row, the ratio
    /// of max to min defined slope across cycle times. The paper observes
    /// "the cycle time – cache size tradeoff is independent of the cycle
    /// time".
    pub fn verticality(&self) -> Vec<Option<f64>> {
        self.slope
            .iter()
            .map(|row| {
                let vals: Vec<f64> = row
                    .iter()
                    .flatten()
                    .copied()
                    .filter(|v| *v > 0.05)
                    .collect();
                if vals.len() < 2 {
                    return None;
                }
                let max = vals.iter().copied().fold(f64::MIN, f64::max);
                let min = vals.iter().copied().fold(f64::MAX, f64::min);
                Some(max / min)
            })
            .collect()
    }
}

/// Computes the slope at every grid cell (not just 40 ns).
pub fn slope_map(grid: &SpeedSizeGrid) -> SlopeMap {
    let cts = grid.cts_f64();
    let min = grid.min_time();
    let norm: Vec<Vec<f64>> = grid
        .time_per_ref
        .iter()
        .map(|row| row.iter().map(|&t| t / min).collect())
        .collect();
    let mut slope = Vec::new();
    for i in 0..norm.len().saturating_sub(1) {
        let row = cts
            .iter()
            .map(|&ct| ns_per_doubling(&cts, &norm[i], &norm[i + 1], ct))
            .collect();
        slope.push(row);
    }
    SlopeMap {
        sizes_total_kb: grid.sizes_total_kb[..grid.sizes_total_kb.len().saturating_sub(1)].to_vec(),
        cts_ns: grid.cts_ns.clone(),
        slope,
    }
}

/// Renders the region map (each cell labeled with its shading band).
pub fn render_slope_map(m: &SlopeMap) -> String {
    let mut headers = vec!["Total L1".to_string()];
    headers.extend(m.cts_ns.iter().map(|ct| format!("{ct}ns")));
    let mut t = Table::new(headers);
    for (i, &kb) in m.sizes_total_kb.iter().enumerate() {
        let mut row = vec![format!("{kb}KB x2")];
        row.extend(m.slope[i].iter().map(|v| match v {
            Some(s) => format!("{s:.1}"),
            None => "-".into(),
        }));
        t.row(row);
    }
    format!("Figure 3-4 (regions): ns of cycle time per size doubling, across the plane\n{t}")
}

/// Computes the equal-performance lines and doubling slopes.
pub fn run(grid: &SpeedSizeGrid, n_levels: usize) -> EqualPerformance {
    let cts = grid.cts_f64();
    let min = grid.min_time();
    let norm: Vec<Vec<f64>> = grid
        .time_per_ref
        .iter()
        .map(|row| row.iter().map(|&t| t / min).collect())
        .collect();
    let levels = paper_levels(n_levels);
    let lines = levels
        .iter()
        .map(|&level| equal_performance_line(&cts, &norm, level))
        .collect();
    // Slopes between adjacent sizes, evaluated at the paper's default
    // 40 ns clock.
    let mut slopes = vec![None; norm.len()];
    for i in 0..norm.len().saturating_sub(1) {
        slopes[i] = ns_per_doubling(&cts, &norm[i], &norm[i + 1], 40.0);
    }
    EqualPerformance {
        sizes_total_kb: grid.sizes_total_kb.clone(),
        levels,
        lines,
        slopes,
    }
}

/// Renders the slopes (the figure's shaded regions) and the line grid.
pub fn render(e: &EqualPerformance) -> String {
    let mut s = String::from("Figure 3-4: lines of equal performance\n\n");
    let mut t = Table::new(["Total L1", "ns per size doubling @40ns", "region"]);
    for (i, &kb) in e.sizes_total_kb.iter().enumerate() {
        match e.slopes[i] {
            Some(sl) => t.row([
                format!("{kb}KB -> {}KB", 2 * kb),
                format!("{sl:.2}"),
                slope_region(sl).to_string(),
            ]),
            None => t.row([format!("{kb}KB -> {}KB", 2 * kb), "-".into(), "-".into()]),
        };
    }
    s.push_str(&t.to_string());
    s.push('\n');
    let mut headers = vec!["Level".to_string()];
    headers.extend(e.sizes_total_kb.iter().map(|kb| format!("{kb}KB")));
    let mut t = Table::new(headers);
    for (k, line) in e.lines.iter().enumerate() {
        let mut row = vec![format!("{:.1}x", e.levels[k])];
        row.extend(
            line.iter()
                .map(|v| v.map_or("-".to_string(), |ct| format!("{ct:.1}"))),
        );
        t.row(row);
    }
    s.push_str(&t.to_string());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TraceSet;

    #[test]
    fn slopes_shrink_with_cache_size() {
        let traces = TraceSet::quick();
        let grid = SpeedSizeGrid::compute_over(
            &traces,
            1,
            &[2, 8, 32, 128, 512],
            &[20, 32, 44, 56, 68, 80],
        );
        let e = run(&grid, 16);
        // Small-cache slopes exceed large-cache slopes (the basis of the
        // paper's 32KB–128KB recommendation).
        let small = e.slopes[0].expect("small-size slope");
        let large = e.slopes[3].expect("large-size slope");
        assert!(
            small > large,
            "ns/doubling must fall with size: {small} vs {large}"
        );
        assert!(small > 0.0, "doubling a small cache buys cycle time");
        // Equal-performance lines: within one level, bigger caches afford
        // slower clocks.
        let line = e.lines.iter().find(|l| l.iter().flatten().count() >= 3);
        if let Some(line) = line {
            let cts: Vec<f64> = line.iter().flatten().copied().collect();
            assert!(cts.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        }
        assert!(render(&e).contains("ns per size doubling"));
    }

    #[test]
    fn slope_map_regions_are_roughly_vertical() {
        let traces = TraceSet::quick();
        let grid =
            SpeedSizeGrid::compute_over(&traces, 1, &[2, 8, 32, 128], &[20, 32, 44, 56, 68, 80]);
        let m = slope_map(&grid);
        assert_eq!(m.slope.len(), 3, "one doubling row per adjacent pair");
        assert_eq!(m.cts_ns.len(), 6);
        // "The cycle time - cache size tradeoff is independent of the
        // cycle time": within each size row, the slope varies far less
        // than it does across sizes.
        let vert = m.verticality();
        for v in vert.iter().flatten() {
            assert!(*v < 4.0, "slope varies too much along ct: {v}");
        }
        assert!(render_slope_map(&m).contains("across the plane"));
    }
}
