//! Cycle arithmetic for memory operations (the paper's Table 2).

use crate::config::MemoryConfig;
use cachetime_types::CycleTime;

/// The memory-operation cycle counts for one (memory, cycle-time) pairing.
///
/// Because the memory's nanosecond delays are fixed while the cache clock
/// varies, every duration quantizes to a cycle-time-dependent number of
/// cycles. This quantization is exactly the paper's Table 2 and the source
/// of its 56 ns anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTiming {
    config: MemoryConfig,
    cycle_time: CycleTime,
    latency_cycles: u64,
    write_op_cycles: u64,
    recovery_cycles: u64,
    transfer: TransferCycles,
}

/// Division-free [`TransferRate::cycles_for_words`]: the backplane rate is
/// fixed when the timing is bound, and the quantization sits on the
/// hot path of every fill and drain, so reduce it to a shift or a multiply
/// up front (a hardware divide per call is measurable at replay rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferCycles {
    /// `WordsPerCycle(2^shift)`: ceiling division by add-then-shift.
    Shift { add: u32, shift: u32 },
    /// `CyclesPerWord(c)`: a multiply.
    Mul { c: u32 },
    /// `WordsPerCycle(n)`, `n` not a power of two: general division.
    Div { n: u32 },
}

impl MemoryTiming {
    /// Binds a memory configuration to a cycle time.
    pub fn new(config: &MemoryConfig, cycle_time: CycleTime) -> Self {
        let transfer = match config.transfer() {
            crate::TransferRate::WordsPerCycle(n) if n.is_power_of_two() => {
                TransferCycles::Shift {
                    add: n - 1,
                    shift: n.trailing_zeros(),
                }
            }
            crate::TransferRate::WordsPerCycle(n) => TransferCycles::Div { n },
            crate::TransferRate::CyclesPerWord(c) => TransferCycles::Mul { c },
        };
        MemoryTiming {
            config: *config,
            cycle_time,
            latency_cycles: cycle_time.cycles_for(config.read_op().0),
            write_op_cycles: cycle_time.cycles_for(config.write_op().0),
            recovery_cycles: cycle_time.cycles_for(config.recovery().0),
            transfer,
        }
    }

    /// Returns the underlying configuration.
    pub const fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Returns the bound cycle time.
    pub const fn cycle_time(&self) -> CycleTime {
        self.cycle_time
    }

    /// The quantized DRAM read latency in cycles — `la` in the paper's
    /// `la × tr` memory-speed product (excludes the address cycle).
    pub const fn latency_cycles(&self) -> u64 {
        self.latency_cycles
    }

    /// The quantized write-operation time in cycles.
    pub const fn write_op_cycles(&self) -> u64 {
        self.write_op_cycles
    }

    /// The quantized recovery time in cycles (Table 2, "Recovery time").
    pub const fn recovery_cycles(&self) -> u64 {
        self.recovery_cycles
    }

    /// Cycles to transfer `words` words over the backplane.
    #[inline]
    pub const fn transfer_cycles(&self, words: u32) -> u64 {
        match self.transfer {
            TransferCycles::Shift { add, shift } => ((words + add) >> shift) as u64,
            TransferCycles::Mul { c } => words as u64 * c as u64,
            TransferCycles::Div { n } => words.div_ceil(n) as u64,
        }
    }

    /// Total cycles for a read of `words` words: address + latency +
    /// transfer (Table 2, "Read Time", with the default 4-word block).
    pub const fn read_time(&self, words: u32) -> u64 {
        self.config.addr_cycles() + self.latency_cycles + self.transfer_cycles(words)
    }

    /// Total cycles a write of `words` words occupies the memory before
    /// recovery: address + transfer + write operation (Table 2, "Write
    /// Time").
    pub const fn write_time(&self, words: u32) -> u64 {
        self.config.addr_cycles() + self.transfer_cycles(words) + self.write_op_cycles
    }

    /// Cycles a write occupies the *bus* (after which the cache proceeds
    /// while the memory completes the write internally).
    pub const fn write_bus_time(&self, words: u32) -> u64 {
        self.config.addr_cycles() + self.transfer_cycles(words)
    }

    /// The paper's memory-speed product `la × tr` (latency in cycles times
    /// transfer rate in words per cycle), which section 5 shows is the sole
    /// determinant of the optimal block size.
    pub fn memory_speed_product(&self) -> f64 {
        self.latency_cycles as f64 * self.config.transfer().words_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime_types::Nanos;

    /// The paper's Table 2, verbatim: cycle time (ns), read time, write
    /// time, recovery time — for the default memory (180/100/120 ns) and a
    /// 4-word block at one word per cycle.
    const TABLE_2: &[(u32, u64, u64, u64)] = &[
        (20, 14, 10, 6),
        (24, 13, 10, 5),
        (28, 12, 9, 5),
        (32, 11, 9, 4),
        (36, 10, 8, 4),
        (40, 10, 8, 3),
        (48, 9, 8, 3),
        (52, 9, 7, 3),
        (60, 8, 7, 2),
    ];

    #[test]
    fn reproduces_table_2_exactly() {
        let config = MemoryConfig::paper_default();
        for &(ct_ns, read, write, recovery) in TABLE_2 {
            let t = MemoryTiming::new(&config, CycleTime::from_ns(ct_ns).unwrap());
            assert_eq!(t.read_time(4), read, "read time at {ct_ns}ns");
            assert_eq!(t.write_time(4), write, "write time at {ct_ns}ns");
            assert_eq!(t.recovery_cycles(), recovery, "recovery at {ct_ns}ns");
        }
    }

    #[test]
    fn footnote_13_260ns_latency() {
        // "A 260ns latency makes for a 12 cycle read request for a block
        // size of 4 and a cycle time of 40ns."
        let config = MemoryConfig::builder().read_op(Nanos(260)).build().unwrap();
        let t = MemoryTiming::new(&config, CycleTime::from_ns(40).unwrap());
        assert_eq!(t.read_time(4), 12);
    }

    #[test]
    fn section5_latency_grid_in_cycles() {
        // 100..420ns at 40ns/cycle quantize to 3, 5, 7, 9, 11 cycles.
        let ct = CycleTime::from_ns(40).unwrap();
        for (ns, cycles) in [(100, 3), (180, 5), (260, 7), (340, 9), (420, 11)] {
            let config = MemoryConfig::builder().read_op(Nanos(ns)).build().unwrap();
            assert_eq!(MemoryTiming::new(&config, ct).latency_cycles(), cycles);
        }
    }

    #[test]
    fn miss_penalty_rises_as_cycle_time_falls() {
        // The hidden variable of section 6: 20ns -> 14 cycles, 80ns -> 8.
        let config = MemoryConfig::paper_default();
        let at = |ns| MemoryTiming::new(&config, CycleTime::from_ns(ns).unwrap()).read_time(4);
        assert_eq!(at(20), 14);
        assert_eq!(at(80), 8);
        let mut prev = u64::MAX;
        for ns in (20..=80).step_by(4) {
            let now = at(ns);
            assert!(now <= prev, "read cycles must not increase with cycle time");
            prev = now;
        }
    }

    #[test]
    fn bus_time_excludes_write_op() {
        let config = MemoryConfig::paper_default();
        let t = MemoryTiming::new(&config, CycleTime::from_ns(40).unwrap());
        assert_eq!(t.write_bus_time(4), 5); // 1 addr + 4 transfer
        assert_eq!(t.write_time(4), t.write_bus_time(4) + t.write_op_cycles());
    }

    #[test]
    fn memory_speed_product() {
        let config = MemoryConfig::paper_default();
        let t = MemoryTiming::new(&config, CycleTime::from_ns(40).unwrap());
        assert_eq!(t.memory_speed_product(), 5.0); // la=5, tr=1
        let fast_bus = MemoryConfig::builder()
            .transfer(crate::TransferRate::WordsPerCycle(4))
            .build()
            .unwrap();
        let t = MemoryTiming::new(&fast_bus, CycleTime::from_ns(40).unwrap());
        assert_eq!(t.memory_speed_product(), 20.0);
    }
}
