//! A hand-rolled HTTP/1.1 server on `std::net` — no async runtime, no
//! external crates, in keeping with the workspace's offline-build
//! invariant.
//!
//! The shape is a fixed worker pool over a shared *connection* queue, not
//! a thread-per-connection model: an accepted connection is pushed onto
//! the queue, a worker pops it, reads **one** request (with a short idle
//! timeout), responds, and re-queues the connection if it is keep-alive.
//! Workers therefore interleave many slow keep-alive clients fairly even
//! when `workers == 1` (the common case on this project's single-core
//! hosts): an idle connection costs a worker at most
//! [`IDLE_POLL`] before it moves on, instead of parking the pool.
//!
//! # Robustness (see DESIGN.md §7 for the full failure model)
//!
//! * **Deadlines.** A connection that has *started* a request (sent at
//!   least one byte of it) must finish sending within the request
//!   deadline ([`crate::Limits::request_deadline`], lowered per request by
//!   `X-Deadline-Ms`) or it is answered `408` and closed — a slowloris
//!   peer costs at most one deadline, never a parked worker. The handler
//!   and the response write run under the same budget (the write gets a
//!   bounded `set_write_timeout`).
//! * **Bounded queue.** The accept loop sheds connections past
//!   [`ServerConfig::max_queue`] with an immediate `503 + Retry-After`
//!   instead of queueing unboundedly.
//! * **Panic isolation.** The handler runs under `catch_unwind`; a panic
//!   becomes a `500` and the worker keeps serving (the store's in-flight
//!   markers are panic-safe on their own, so no state is stranded).
//! * **Parse errors answer before closing.** Malformed requests get their
//!   proper status (`400`/`413`/`431`) rather than a silent hangup; an
//!   oversized `Content-Length` is refused at head-parse time, before any
//!   body byte is read or buffered.
//!
//! Shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::shutdown`]) flips an atomic flag, wakes the queue, and
//! unblocks the accept loop with a loopback connect; workers drain and
//! join.

use crate::{App, Limits, Response};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a worker waits for bytes from an idle keep-alive connection
/// before re-queuing it and serving someone else.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Cap on a request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body; a larger `Content-Length` claim is refused
/// with `413` before any body byte is read.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:8080"`; port 0 picks an ephemeral
    /// port (read it back from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means [`cachetime::sweep::available_jobs`].
    pub workers: usize,
    /// Byte budget of the EventTrace store.
    pub store_budget_bytes: usize,
    /// Connections the queue holds before the accept loop sheds new ones
    /// with `503 + Retry-After`.
    pub max_queue: usize,
    /// Per-request wall-clock budget in milliseconds (the `--request-deadline-ms`
    /// flag); clients lower it per request via `X-Deadline-Ms`.
    pub request_deadline_ms: u64,
    /// Recordings in flight before cold simulates shed; 0 = auto
    /// (twice the worker count, at least 2).
    pub max_inflight_recordings: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            store_budget_bytes: 256 * 1024 * 1024,
            max_queue: 1024,
            request_deadline_ms: 10_000,
            max_inflight_recordings: 0,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (`Content-Length`-framed; no chunked support).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The client's `X-Deadline-Ms` request budget, if sent. The server
    /// honors it only downward from its own cap.
    pub deadline_ms: Option<u64>,
}

/// A framing/parse failure, carrying the HTTP status the server answers
/// before closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// `400`, `413`, or `431`.
    pub status: u16,
    /// Human-readable cause, sent as the JSON error body.
    pub msg: &'static str,
}

fn bad(msg: &'static str) -> ParseError {
    ParseError { status: 400, msg }
}

/// Outcome of [`parse_request`] when the bytes so far are not an error.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request was framed and drained from the buffer.
    Request(Request),
    /// No complete request yet; feed more bytes.
    Incomplete,
}

/// A connection parked between requests, carrying any bytes already read
/// and, once the first byte of a request has arrived, the instant the
/// request's deadline clock started.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    started: Option<Instant>,
}

struct Shared {
    queue: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// A running server; dropping the handle does NOT stop it — call
/// [`shutdown`](Self::shutdown) + [`join`](Self::join), or let a client
/// `POST /v1/shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    app: Arc<App>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The application state (store + stats), for in-process callers like
    /// the bench harness.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Requests shutdown; returns immediately. Safe to call repeatedly.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the accept loop and every worker have exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.ready.notify_all();
    // Unblock the accept loop; the accepted connection is discarded there.
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

/// Binds, spawns the accept loop and worker pool, and returns a handle.
///
/// # Errors
///
/// Any bind failure from the OS.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let app = Arc::new(App::new(config.store_budget_bytes).with_limits(limits_for(&config)));
    serve_with_app(config, app)
}

/// The [`Limits`] that [`serve`] derives from a config — public so
/// binaries that build their own [`App`] (e.g. to share a metric
/// registry) and call [`serve_with_app`] apply the same policy.
pub fn limits_for(config: &ServerConfig) -> Limits {
    let workers = resolve_workers(config.workers);
    Limits {
        request_deadline: Duration::from_millis(config.request_deadline_ms.max(1)),
        max_inflight_recordings: if config.max_inflight_recordings == 0 {
            (workers * 2).max(2)
        } else {
            config.max_inflight_recordings
        },
    }
}

fn resolve_workers(configured: usize) -> usize {
    if configured == 0 {
        cachetime::sweep::available_jobs()
    } else {
        configured
    }
}

/// [`serve`] with caller-supplied application state (tests pre-seed the
/// store or arm fault plans through this). The app's [`Limits`] govern
/// deadlines and admission; only `addr`/`workers`/`max_queue` are taken
/// from `config`.
pub fn serve_with_app(config: ServerConfig, app: Arc<App>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = resolve_workers(config.workers);
    let max_queue = config.max_queue.max(1);
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        let app = Arc::clone(&app);
        threads.push(
            std::thread::Builder::new()
                .name("ctserve-accept".into())
                .spawn(move || accept_loop(listener, &shared, &app, max_queue))
                .expect("spawn accept loop"),
        );
    }
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        let app = Arc::clone(&app);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ctserve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &app, addr))
                .expect("spawn worker"),
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        app,
        threads,
    })
}

/// The canned response the accept loop sheds over-queue connections with
/// (no allocation, no handler, bounded write).
const QUEUE_FULL_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 29\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{\"error\":\"connection shed\"}\r\n";

fn accept_loop(listener: TcpListener, shared: &Shared, app: &App, max_queue: usize) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_nodelay(true);
                let mut q = shared.queue.lock().unwrap();
                if q.len() >= max_queue {
                    drop(q);
                    // Shed: answer fast and hang up. The write is bounded
                    // so a hostile peer cannot park the accept loop either.
                    app.stats.shed.inc();
                    app.stats.errors.inc();
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                    let _ = stream.write_all(QUEUE_FULL_RESPONSE);
                    continue;
                }
                q.push_back(Conn {
                    stream,
                    buf: Vec::new(),
                    started: None,
                });
                drop(q);
                shared.ready.notify_one();
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared, app: &App, addr: SocketAddr) {
    loop {
        let mut q = shared.queue.lock().unwrap();
        let conn = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(c) = q.pop_front() {
                break c;
            }
            q = shared.ready.wait(q).unwrap();
        };
        drop(q);
        let mut conn = conn;
        let read_budget = app.limits().request_deadline;
        match read_request(&mut conn, read_budget) {
            Ok(ReadOutcome::Request(req)) => {
                let started = Instant::now();
                let deadline = app.deadline_for(&req);
                app.stats.in_flight.add(1);
                let resp = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    app.handle(&req)
                })) {
                    Ok(resp) => resp,
                    Err(_) => {
                        // The handler unwound. The store's in-flight guards
                        // have already cleaned up; the worker survives and
                        // the client learns it was the server's fault.
                        app.stats.panics.inc();
                        Response::error(500, "internal panic; worker recovered")
                    }
                };
                app.stats.in_flight.add(-1);
                app.stats
                    .endpoint(&req.method, &req.path)
                    .record(started.elapsed().as_micros() as u64);
                if resp.status >= 400 {
                    app.stats.errors.inc();
                }
                let keep = req.keep_alive && !resp.shutdown && resp.status != 500;
                // The write phase is panic-isolated too (the serve.write
                // fault point lives here): a panic drops the connection —
                // possibly mid-response, which clients see as a torn read —
                // but never kills the worker.
                let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    app.faults().inject("serve.write");
                    write_response(&mut conn.stream, &resp, keep, Some(deadline)).is_ok()
                }))
                .unwrap_or_else(|_| {
                    app.stats.panics.inc();
                    false
                });
                if resp.shutdown {
                    request_shutdown(shared, addr);
                    return;
                }
                if ok && keep {
                    requeue(shared, conn);
                }
            }
            Ok(ReadOutcome::Idle) => requeue(shared, conn),
            Ok(ReadOutcome::Deadline) => {
                // The peer started a request and never finished it within
                // budget (slowloris or a stalled sender).
                app.stats.timeouts.inc();
                app.stats.errors.inc();
                let resp = Response::error(408, "request not received within the deadline");
                let _ = write_response(&mut conn.stream, &resp, false, None);
            }
            Ok(ReadOutcome::Bad(e)) => {
                // Malformed request: answer its proper status, then close.
                app.stats.errors.inc();
                let resp = Response::error(e.status, e.msg);
                let _ = write_response(&mut conn.stream, &resp, false, None);
            }
            Ok(ReadOutcome::Closed) | Err(_) => {} // drop the connection
        }
    }
}

fn requeue(shared: &Shared, conn: Conn) {
    let mut q = shared.queue.lock().unwrap();
    q.push_back(conn);
    drop(q);
    shared.ready.notify_one();
}

enum ReadOutcome {
    /// A complete request was framed and drained from the buffer.
    Request(Request),
    /// No complete request yet; the peer is slow or idle. Re-queue.
    Idle,
    /// Clean EOF between requests.
    Closed,
    /// A partial request overstayed the request deadline — answer `408`.
    Deadline,
    /// The bytes cannot be a valid request — answer `e.status`.
    Bad(ParseError),
}

/// Reads until one full request is buffered, the idle poll expires, or a
/// partial request overstays `budget` (measured from its first byte, even
/// across re-queues).
fn read_request(conn: &mut Conn, budget: Duration) -> std::io::Result<ReadOutcome> {
    conn.stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&mut conn.buf) {
            Err(e) => return Ok(ReadOutcome::Bad(e)),
            Ok(Parsed::Request(req)) => {
                // A request whose own X-Deadline-Ms budget is already
                // gone by the time it framed — zero, or smaller than the
                // time its bytes took to arrive — is dead on arrival:
                // answer 408 now instead of starting handler work whose
                // result could never be delivered in time.
                let parse_elapsed = conn
                    .started
                    .map(|s| s.elapsed())
                    .unwrap_or(Duration::ZERO);
                if req
                    .deadline_ms
                    .is_some_and(|ms| Duration::from_millis(ms) <= parse_elapsed)
                {
                    return Ok(ReadOutcome::Deadline);
                }
                conn.started = if conn.buf.is_empty() {
                    None
                } else {
                    // A pipelined successor is already buffered; its clock
                    // starts now.
                    Some(Instant::now())
                };
                return Ok(ReadOutcome::Request(req));
            }
            Ok(Parsed::Incomplete) => {}
        }
        if let Some(started) = conn.started {
            if started.elapsed() > budget {
                return Ok(ReadOutcome::Deadline);
            }
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                return if conn.buf.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-request",
                    ))
                };
            }
            Ok(n) => {
                if conn.buf.is_empty() && conn.started.is_none() {
                    conn.started = Some(Instant::now());
                }
                conn.buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(ReadOutcome::Idle);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Attempts to frame one request at the front of `buf`; on success the
/// request's bytes are drained so pipelined successors stay buffered.
///
/// This is the full head parser the server runs on untrusted bytes, public
/// so the property tests can feed it garbage directly.
///
/// # Errors
///
/// A [`ParseError`] carrying the `4xx` the server answers: `431` for a
/// head that exceeds [`MAX_HEAD_BYTES`] without terminating, `413` for a
/// `Content-Length` above [`MAX_BODY_BYTES`] (refused before any body
/// byte is read), `400` for everything structurally wrong.
pub fn parse_request(buf: &mut Vec<u8>) -> Result<Parsed, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError {
                status: 431,
                msg: "request head too large",
            });
        }
        return Ok(Parsed::Incomplete);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?.to_string();
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    let mut deadline_ms = None;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Repeated Content-Length headers are a request-smuggling
            // vector (RFC 9112 §6.3): two framings of the same stream.
            // Reject duplicates outright — even agreeing ones — rather
            // than letting the last value win.
            let parsed = value.parse().map_err(|_| bad("bad Content-Length"))?;
            if content_length.replace(parsed).is_some() {
                return Err(bad("duplicate Content-Length"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(bad("chunked bodies are not supported"));
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            deadline_ms = Some(value.parse().map_err(|_| bad("bad X-Deadline-Ms"))?);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError {
            status: 413,
            msg: "body larger than the server accepts",
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(Parsed::Incomplete); // body still arriving
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    buf.drain(..body_start + content_length);
    Ok(Parsed::Request(Request {
        method,
        path,
        body,
        keep_alive,
        deadline_ms,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    deadline: Option<Instant>,
) -> std::io::Result<()> {
    // Bound the write so a peer that stops reading cannot park the worker:
    // whatever deadline budget remains, floored so an already-late error
    // response still gets a brief chance to reach the peer.
    let budget = deadline
        .map(|dl| dl.saturating_duration_since(Instant::now()))
        .unwrap_or(Duration::from_secs(5))
        .clamp(Duration::from_millis(250), Duration::from_secs(10));
    stream.set_write_timeout(Some(budget))?;
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let retry_after = match resp.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len(),
        retry_after,
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> (Vec<Request>, Vec<u8>) {
        let mut buf = input.to_vec();
        let mut out = Vec::new();
        while let Ok(Parsed::Request(r)) = parse_request(&mut buf) {
            out.push(r);
        }
        (out, buf)
    }

    #[test]
    fn frames_a_simple_get() {
        let (reqs, rest) = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/healthz");
        assert!(reqs[0].keep_alive);
        assert!(reqs[0].body.is_empty());
        assert!(reqs[0].deadline_ms.is_none());
        assert!(rest.is_empty());
    }

    #[test]
    fn frames_a_post_with_body_and_pipelined_successor() {
        let (reqs, rest) = parse_all(
            b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /v1/stats HTTP/1.1\r\n\r\n",
        );
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].body, b"{}");
        assert_eq!(reqs[1].path, "/v1/stats");
        assert!(rest.is_empty());
    }

    #[test]
    fn strips_query_strings_and_honors_connection_close() {
        let (reqs, _) = parse_all(b"GET /v1/stats?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(reqs[0].path, "/v1/stats");
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let (reqs, _) = parse_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        let mut buf = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345".to_vec();
        assert!(matches!(parse_request(&mut buf), Ok(Parsed::Incomplete)));
        buf.extend_from_slice(b"67890");
        assert!(matches!(parse_request(&mut buf), Ok(Parsed::Request(_))));
    }

    #[test]
    fn deadline_header_is_parsed_and_validated() {
        let (reqs, _) = parse_all(b"GET /healthz HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n");
        assert_eq!(reqs[0].deadline_ms, Some(250));
        let mut buf = b"GET / HTTP/1.1\r\nX-Deadline-Ms: soonish\r\n\r\n".to_vec();
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 400);
    }

    #[test]
    fn duplicate_content_length_is_rejected_not_last_wins() {
        // Regression (request smuggling): two Content-Length headers used
        // to silently let the last one win, so a front proxy and this
        // server could frame the stream differently. Any repeat — even
        // two agreeing values — must be a 400.
        for head in [
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}xyz",
            "POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
            "POST /x HTTP/1.1\r\ncontent-length: 2\r\nCONTENT-LENGTH: 5\r\n\r\n{}xyz",
        ] {
            let mut buf = head.as_bytes().to_vec();
            let err = parse_request(&mut buf).unwrap_err();
            assert_eq!(err.status, 400, "{head:?}");
            assert_eq!(err.msg, "duplicate Content-Length", "{head:?}");
        }
        // A single Content-Length still frames normally.
        let (reqs, rest) = parse_all(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, b"{}");
        assert!(rest.is_empty());
    }

    #[test]
    fn rejects_chunked_and_oversized_with_their_statuses() {
        let mut buf = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 400);
        // Oversized Content-Length: refused at head-parse time with 413,
        // even though zero body bytes have arrived.
        let mut buf = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .into_bytes();
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 413);
        // A runaway head with no terminator: 431 once past the cap.
        let mut buf = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert_eq!(parse_request(&mut buf).unwrap_err().status, 431);
    }
}
