//! The content-addressed [`EventTrace`] store: record once, replay forever.
//!
//! Keys are the stable [`cachetime::keyed::trace_key`] digests of
//! `(organization, workload)` pairings, so the same logical request always
//! lands on the same entry — across connections, clients, and server
//! restarts. Four properties the server depends on:
//!
//! * **Single-flight recording.** The first request for a missing key
//!   inserts an in-flight marker and records *outside* the store lock;
//!   concurrent requests for the same key block on a condition variable
//!   and share the one recording instead of redoing the linear-in-trace
//!   work. Distinct keys never wait on each other.
//! * **Shard-locked reads.** The map is split into power-of-two shards
//!   (key-hash addressed), each with its own mutex and condvar, so warm
//!   replays on different keys never serialize on one global lock and a
//!   recording in one shard never blocks a hit in another. A store built
//!   with [`TraceStore::new`]/[`with_metrics`](TraceStore::with_metrics)
//!   has a single shard — exact global LRU semantics — while the server
//!   uses [`TraceStore::sharded`], which splits the byte budget evenly
//!   and runs LRU per shard (approximate global recency, same bound).
//! * **Byte-budgeted LRU.** Entries are charged their
//!   [`EventTrace::approx_bytes`]; when an insertion pushes a shard over
//!   its budget, its least-recently-used entries are evicted until it
//!   fits (the entry being inserted is exempt, so a single oversized
//!   trace still serves its own request). Recency lives in an ordered
//!   `clock → key` index, so each eviction is O(log n).
//! * **Panic safety.** If a recording panics, its in-flight marker is
//!   removed and waiters are woken to retry, rather than hanging forever.
//!
//! Every lookup counts in **exactly one** of five disjoint buckets —
//! `hits`, `misses`, `coalesced`, `shed`, `absent` — and `lookups` counts
//! them all, so `hits + misses + coalesced + shed + absent == lookups`
//! holds at every quiescent instant (the storm tests assert it exactly).
//!
//! All counters are [`cachetime_obs`] metrics. A bare
//! [`TraceStore::new`] keeps them private; [`TraceStore::with_metrics`]
//! shares them with a registry so `/v1/metrics` and `/v1/stats` read the
//! very same atomics.

use cachetime::EventTrace;
use cachetime_obs::{Counter, Gauge, Registry};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Outcome of an admission-controlled, deadline-bounded lookup
/// ([`TraceStore::fetch_or_record`]).
#[derive(Debug)]
pub enum Fetch {
    /// The trace; the bool is `true` when it was served without running
    /// `record` in this call (resident hit or joined recording).
    Ready(Arc<EventTrace>, bool),
    /// Admission control refused to start a new recording: the number of
    /// recordings already in flight is at the caller's limit. Nothing was
    /// recorded; the caller should shed the request (`503 + Retry-After`).
    Shed,
    /// The deadline passed while waiting for another thread's in-flight
    /// recording of this key. The recording itself keeps running — a
    /// retry after it lands is a plain hit.
    TimedOut,
}

/// Outcome of the non-blocking [`TraceStore::try_get`] — the event loop's
/// inline warm path.
#[derive(Debug)]
pub enum TryGet {
    /// Resident: served under one brief shard lock, counted as a hit.
    Ready(Arc<EventTrace>),
    /// A recording of this key is running; joining it would block.
    /// Nothing is counted — the caller's blocking retry counts instead.
    InFlight,
    /// Never recorded or evicted. Nothing is counted (see `InFlight`).
    Absent,
}

/// Marker error from [`TraceStore::get_within`]: the deadline passed
/// while an in-flight recording of the key was still running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

/// A point-in-time snapshot of the store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Every lookup (`fetch_or_record`, `get`, `get_within`, a terminal
    /// `try_get`); the sum of the five disjoint outcome counters below.
    pub lookups: u64,
    /// Lookups answered from an already-resident entry. Disjoint from
    /// `coalesced`: a lookup counts exactly once, whichever way it was
    /// served.
    pub hits: u64,
    /// Lookups that had to record (first request for a key).
    pub misses: u64,
    /// Lookups that joined another request's in-flight recording,
    /// whatever happened after the wait (served, timed out, re-recorded).
    pub coalesced: u64,
    /// Lookups refused by recording admission control.
    pub shed: u64,
    /// Read-only lookups of a key that was never recorded or was evicted.
    pub absent: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Bytes charged against the budget right now.
    pub bytes: usize,
    /// Recordings in flight right now.
    pub in_flight: usize,
}

impl StoreStats {
    /// The exact-balance invariant the storm tests pin:
    /// every lookup landed in exactly one outcome bucket.
    pub fn lookups_balance(&self) -> bool {
        self.hits + self.misses + self.coalesced + self.shed + self.absent == self.lookups
    }
}

/// The store's counters and gauges, as shared metric handles. Mutations
/// happen under a shard lock (so per-shard snapshots are coherent); reads
/// are lock-free from anywhere, including a registry scrape.
#[derive(Clone)]
pub struct StoreMetrics {
    lookups: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    shed: Arc<Counter>,
    absent: Arc<Counter>,
    evictions: Arc<Counter>,
    entries: Arc<Gauge>,
    bytes: Arc<Gauge>,
    in_flight: Arc<Gauge>,
}

impl StoreMetrics {
    /// Handles registered in `registry` under the `cachetime_store_*`
    /// families — what `GET /v1/metrics` exposes.
    pub fn in_registry(registry: &Registry) -> Self {
        StoreMetrics {
            lookups: registry.counter("cachetime_store_lookups_total", &[]),
            hits: registry.counter("cachetime_store_hits_total", &[]),
            misses: registry.counter("cachetime_store_misses_total", &[]),
            coalesced: registry.counter("cachetime_store_coalesced_total", &[]),
            shed: registry.counter("cachetime_store_shed_total", &[]),
            absent: registry.counter("cachetime_store_absent_total", &[]),
            evictions: registry.counter("cachetime_store_evictions_total", &[]),
            entries: registry.gauge("cachetime_store_entries", &[]),
            bytes: registry.gauge("cachetime_store_bytes", &[]),
            in_flight: registry.gauge("cachetime_store_recordings_in_flight", &[]),
        }
    }

    /// Private handles for a store that is not exposed via a registry.
    fn standalone() -> Self {
        StoreMetrics {
            lookups: Arc::new(Counter::new()),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            coalesced: Arc::new(Counter::new()),
            shed: Arc::new(Counter::new()),
            absent: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            entries: Arc::new(Gauge::new()),
            bytes: Arc::new(Gauge::new()),
            in_flight: Arc::new(Gauge::new()),
        }
    }
}

enum Slot {
    /// A recording is running on some thread; wait on the shard condvar.
    InFlight,
    Ready {
        events: Arc<EventTrace>,
        bytes: usize,
        last_used: u64,
    },
}

struct Inner {
    map: HashMap<u64, Slot>,
    /// Recency index: `last_used clock → key`, one entry per Ready slot.
    /// The clock is monotonic and bumped on every touch, so clocks are
    /// unique and the first entry is always the least recently used.
    lru: BTreeMap<u64, u64>,
    /// Monotonic use counter driving LRU order.
    clock: u64,
    bytes: usize,
}

/// One lock domain: a slice of the key space with its own mutex, condvar,
/// and byte budget.
struct Shard {
    inner: Mutex<Inner>,
    /// Signaled whenever an in-flight recording in this shard completes
    /// (or aborts).
    done: Condvar,
    budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                clock: 0,
                bytes: 0,
            }),
            done: Condvar::new(),
            budget,
        }
    }
}

/// See the [module docs](self).
pub struct TraceStore {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    budget: usize,
    metrics: StoreMetrics,
}

/// Removes the in-flight marker and wakes waiters if the recording
/// unwinds; disarmed on success.
struct InFlightGuard<'a> {
    store: &'a TraceStore,
    shard: &'a Shard,
    key: u64,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.shard.inner.lock().unwrap();
            if matches!(inner.map.get(&self.key), Some(Slot::InFlight)) {
                inner.map.remove(&self.key);
            }
            drop(inner);
            self.store.metrics.in_flight.add(-1);
            self.shard.done.notify_all();
        }
    }
}

impl TraceStore {
    /// An empty single-shard store that will keep at most `budget_bytes`
    /// of recorded traces resident (approximate, see
    /// [`EventTrace::approx_bytes`]). One shard means exact global LRU.
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_metrics(budget_bytes, StoreMetrics::standalone())
    }

    /// [`new`](Self::new), but counting into the caller's metric handles
    /// (typically [`StoreMetrics::in_registry`]).
    pub fn with_metrics(budget_bytes: usize, metrics: StoreMetrics) -> Self {
        Self::sharded_with_metrics(budget_bytes, 1, metrics)
    }

    /// A store split into `shards` lock domains (rounded up to a power of
    /// two) so concurrent lookups of different keys never contend. The
    /// byte budget is divided evenly; LRU runs per shard.
    pub fn sharded(budget_bytes: usize, shards: usize) -> Self {
        Self::sharded_with_metrics(budget_bytes, shards, StoreMetrics::standalone())
    }

    /// [`sharded`](Self::sharded) with caller-supplied metric handles.
    pub fn sharded_with_metrics(budget_bytes: usize, shards: usize, metrics: StoreMetrics) -> Self {
        let n = shards.max(1).next_power_of_two();
        // Saturating per-shard split: an unbounded store (usize::MAX)
        // must stay unbounded per shard, not wrap to something finite.
        let per_shard = if budget_bytes == usize::MAX {
            usize::MAX
        } else {
            budget_bytes / n
        };
        TraceStore {
            shards: (0..n).map(|_| Shard::new(per_shard)).collect(),
            mask: n - 1,
            budget: budget_bytes,
            metrics,
        }
    }

    /// The configured total byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// How many lock domains the key space is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`. Trace keys are already well-mixed digests,
    /// but a cheap multiplicative remix keeps adversarially-shaped keys
    /// (unit tests use small integers) from piling into one shard.
    fn shard(&self, key: u64) -> &Shard {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize & self.mask]
    }

    /// Returns the entry for `key`, recording it via `record` exactly once
    /// if absent. The bool is `true` when the entry was already resident
    /// (or its recording was joined) — i.e. `record` was *not* run by this
    /// call. Unbounded: no admission limit, no deadline (see
    /// [`fetch_or_record`](Self::fetch_or_record) for both).
    pub fn get_or_record<F>(&self, key: u64, record: F) -> (Arc<EventTrace>, bool)
    where
        F: FnOnce() -> EventTrace,
    {
        match self.fetch_or_record(key, usize::MAX, None, record) {
            Fetch::Ready(events, cached) => (events, cached),
            Fetch::Shed | Fetch::TimedOut => {
                unreachable!("unbounded fetch cannot shed or time out")
            }
        }
    }

    /// [`get_or_record`](Self::get_or_record) with admission control and a
    /// deadline.
    ///
    /// * If the key is absent and `max_inflight` recordings are already
    ///   running, returns [`Fetch::Shed`] without recording — the caller's
    ///   load-shedding path. A resident key is always served, whatever the
    ///   recording pressure.
    /// * If the key is in flight on another thread and `deadline` passes
    ///   before the recording lands, returns [`Fetch::TimedOut`]; the
    ///   recording keeps running and later requests hit it.
    ///
    /// The recording this call *itself* performs is never aborted: once
    /// admitted, the work completes and the entry is stored even if the
    /// deadline lapses meanwhile (the caller decides what to answer; a
    /// deadline-blown retry finds the entry warm).
    pub fn fetch_or_record<F>(
        &self,
        key: u64,
        max_inflight: usize,
        deadline: Option<Instant>,
        record: F,
    ) -> Fetch
    where
        F: FnOnce() -> EventTrace,
    {
        self.metrics.lookups.inc();
        let shard = self.shard(key);
        let mut inner = shard.inner.lock().unwrap();
        let mut counted_coalesce = false;
        loop {
            match inner.map.get(&key) {
                Some(Slot::Ready { .. }) => {
                    // A lookup counts exactly once: a waiter that already
                    // counted as coalesced must not also count as a hit
                    // when it wakes to the finished entry.
                    if !counted_coalesce {
                        self.metrics.hits.inc();
                    }
                    return Fetch::Ready(Self::touch(&mut inner, key), true);
                }
                Some(Slot::InFlight) => {
                    if !counted_coalesce {
                        self.metrics.coalesced.inc();
                        counted_coalesce = true;
                    }
                    // Wait for whichever thread owns the recording; the
                    // loop re-examines the slot (it may be Ready, absent
                    // after a panic, or even evicted — then we record).
                    match Self::wait_done(&shard.done, inner, deadline) {
                        Ok(g) => inner = g,
                        Err(()) => return Fetch::TimedOut,
                    }
                }
                None => {
                    if self.metrics.in_flight.get_unsigned() >= max_inflight as u64 {
                        // A waiter that woke to an aborted recording and
                        // then found no admission slot stays classified
                        // as coalesced; only a direct refusal counts shed.
                        if !counted_coalesce {
                            self.metrics.shed.inc();
                        }
                        return Fetch::Shed;
                    }
                    inner.map.insert(key, Slot::InFlight);
                    if !counted_coalesce {
                        self.metrics.misses.inc();
                    }
                    self.metrics.in_flight.add(1);
                    drop(inner);

                    let mut guard = InFlightGuard {
                        store: self,
                        shard,
                        key,
                        armed: true,
                    };
                    let events = Arc::new(record());
                    guard.armed = false;
                    drop(guard);

                    let bytes = events.approx_bytes();
                    let mut inner = shard.inner.lock().unwrap();
                    inner.clock += 1;
                    let clock = inner.clock;
                    inner.map.insert(
                        key,
                        Slot::Ready {
                            events: Arc::clone(&events),
                            bytes,
                            last_used: clock,
                        },
                    );
                    inner.lru.insert(clock, key);
                    inner.bytes += bytes;
                    self.metrics.in_flight.add(-1);
                    self.metrics.entries.add(1);
                    self.metrics.bytes.add(bytes as i64);
                    self.evict_over_budget(shard, &mut inner, key);
                    drop(inner);
                    shard.done.notify_all();
                    return Fetch::Ready(events, false);
                }
            }
        }
    }

    /// Pre-populates `key` without counting a lookup: the durable store's
    /// startup scan streams recovered traces through here before the
    /// server accepts traffic, so recovery is invisible to the hit/miss
    /// accounting (and to `lookups_balance`). Respects the byte budget
    /// (the LRU may immediately evict an oversized restore) and never
    /// displaces a resident or in-flight entry. Returns whether the trace
    /// was inserted.
    pub fn seed(&self, key: u64, events: Arc<EventTrace>) -> bool {
        let shard = self.shard(key);
        let mut inner = shard.inner.lock().unwrap();
        if inner.map.contains_key(&key) {
            return false;
        }
        let bytes = events.approx_bytes();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(
            key,
            Slot::Ready {
                events,
                bytes,
                last_used: clock,
            },
        );
        inner.lru.insert(clock, key);
        inner.bytes += bytes;
        self.metrics.entries.add(1);
        self.metrics.bytes.add(bytes as i64);
        self.evict_over_budget(shard, &mut inner, key);
        true
    }

    /// Waits on the completion condvar, bounded by `deadline`; `Err(())`
    /// means the deadline passed first.
    fn wait_done<'a>(
        done: &Condvar,
        inner: std::sync::MutexGuard<'a, Inner>,
        deadline: Option<Instant>,
    ) -> Result<std::sync::MutexGuard<'a, Inner>, ()> {
        match deadline {
            None => Ok(done.wait(inner).unwrap()),
            Some(dl) => {
                let now = Instant::now();
                if now >= dl {
                    return Err(());
                }
                // Spurious wakeups and completions of *other* keys re-enter
                // the caller's loop, which re-checks the slot and the clock.
                Ok(done.wait_timeout(inner, dl - now).unwrap().0)
            }
        }
    }

    /// Non-blocking lookup: one brief shard lock, never a condvar wait.
    /// The event loop serves [`TryGet::Ready`] inline and offloads the
    /// other outcomes to a handler thread, whose *blocking* lookup does
    /// the lookup accounting — so only the terminal `Ready` counts here.
    pub fn try_get(&self, key: u64) -> TryGet {
        let shard = self.shard(key);
        let mut inner = shard.inner.lock().unwrap();
        match inner.map.get(&key) {
            Some(Slot::Ready { .. }) => {
                self.metrics.lookups.inc();
                self.metrics.hits.inc();
                TryGet::Ready(Self::touch(&mut inner, key))
            }
            Some(Slot::InFlight) => TryGet::InFlight,
            None => TryGet::Absent,
        }
    }

    /// Returns the entry for `key` if it is resident (joining an in-flight
    /// recording first, if one is running); `None` if the store has never
    /// recorded it or has evicted it.
    pub fn get(&self, key: u64) -> Option<Arc<EventTrace>> {
        self.get_within(key, None)
            .expect("unbounded get cannot time out")
    }

    /// [`get`](Self::get) with a deadline on the join-an-in-flight-recording
    /// wait.
    ///
    /// # Errors
    ///
    /// [`DeadlineExceeded`] when the key's recording was still in flight at
    /// the deadline.
    pub fn get_within(
        &self,
        key: u64,
        deadline: Option<Instant>,
    ) -> Result<Option<Arc<EventTrace>>, DeadlineExceeded> {
        self.metrics.lookups.inc();
        let shard = self.shard(key);
        let mut inner = shard.inner.lock().unwrap();
        let mut counted_coalesce = false;
        loop {
            match inner.map.get(&key) {
                Some(Slot::Ready { .. }) => {
                    if !counted_coalesce {
                        self.metrics.hits.inc();
                    }
                    return Ok(Some(Self::touch(&mut inner, key)));
                }
                Some(Slot::InFlight) => {
                    if !counted_coalesce {
                        self.metrics.coalesced.inc();
                        counted_coalesce = true;
                    }
                    match Self::wait_done(&shard.done, inner, deadline) {
                        Ok(g) => inner = g,
                        Err(()) => return Err(DeadlineExceeded),
                    }
                }
                None => {
                    if !counted_coalesce {
                        self.metrics.absent.inc();
                    }
                    return Ok(None);
                }
            }
        }
    }

    /// Marks a Ready entry used now and returns its trace. Callers must
    /// have just observed the slot as Ready under the same shard lock, and
    /// are responsible for counting the lookup (hit vs. coalesce) — the
    /// old count-a-hit-here behavior double-counted waiters that had
    /// already counted as coalesced, which is what made
    /// `same_key_storm_records_exactly_once` flaky.
    fn touch(inner: &mut Inner, key: u64) -> Arc<EventTrace> {
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(Slot::Ready {
                events, last_used, ..
            }) => {
                let events = Arc::clone(events);
                let previous = std::mem::replace(last_used, clock);
                inner.lru.remove(&previous);
                inner.lru.insert(clock, key);
                events
            }
            _ => unreachable!("slot vanished under the lock"),
        }
    }

    /// Evicts least-recently-used Ready entries (never `keep`, never
    /// in-flight markers) until the shard's charged bytes fit its budget.
    ///
    /// Victim selection walks the ordered recency index from its oldest
    /// end — O(log n) per victim — instead of rescanning the whole map,
    /// which made heavy churn O(n²) inside the lock.
    fn evict_over_budget(&self, shard: &Shard, inner: &mut Inner, keep: u64) {
        while inner.bytes > shard.budget {
            // The only entry ever skipped is `keep` itself, so this scan
            // inspects at most two index entries.
            let victim = inner
                .lru
                .iter()
                .find(|&(_, &k)| k != keep)
                .map(|(&clock, &k)| (clock, k));
            let Some((clock, k)) = victim else { break };
            inner.lru.remove(&clock);
            if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&k) {
                inner.bytes -= bytes;
                self.metrics.evictions.inc();
                self.metrics.entries.add(-1);
                self.metrics.bytes.add(-(bytes as i64));
            }
        }
    }

    /// A snapshot of the counters. Lock-free: reads the same atomics the
    /// metric registry exposes.
    pub fn stats(&self) -> StoreStats {
        let m = &self.metrics;
        StoreStats {
            lookups: m.lookups.get(),
            hits: m.hits.get(),
            misses: m.misses.get(),
            coalesced: m.coalesced.get(),
            shed: m.shed.get(),
            absent: m.absent.get(),
            evictions: m.evictions.get(),
            entries: m.entries.get_unsigned() as usize,
            bytes: m.bytes.get_unsigned() as usize,
            in_flight: m.in_flight.get_unsigned() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime::{BehavioralSim, SystemConfig};
    use cachetime_trace::Trace;
    use cachetime_types::{MemRef, Pid, WordAddr};

    fn tiny_trace(salt: u64) -> EventTrace {
        let config = SystemConfig::paper_default().unwrap();
        let refs: Vec<MemRef> = (0..64)
            .map(|i| MemRef::load(WordAddr::new(salt * 4096 + i * 97), Pid(1)))
            .collect();
        BehavioralSim::new(&config.organization()).record(&Trace::new("t", refs, 0))
    }

    #[test]
    fn records_once_then_hits() {
        let store = TraceStore::new(usize::MAX);
        let (a, hit_a) = store.get_or_record(7, || tiny_trace(1));
        let (b, hit_b) = store.get_or_record(7, || panic!("must not re-record"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.lookups, 2);
        assert!(s.lookups_balance());
        assert!(s.bytes > 0);
    }

    #[test]
    fn fetch_sheds_at_the_inflight_limit_but_serves_warm_keys() {
        let store = Arc::new(TraceStore::new(usize::MAX));
        // Warm one key, then occupy the single admission slot with a
        // recording that blocks until told to finish.
        store.get_or_record(1, || tiny_trace(1));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let blocker = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                store.fetch_or_record(2, 1, None, move || {
                    rx.recv().unwrap();
                    tiny_trace(2)
                })
            })
        };
        while store.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        // A cold key past the limit sheds; the warm key still serves.
        assert!(matches!(
            store.fetch_or_record(3, 1, None, || unreachable!("must shed")),
            Fetch::Shed
        ));
        assert!(matches!(
            store.fetch_or_record(1, 1, None, || unreachable!("warm")),
            Fetch::Ready(_, true)
        ));
        tx.send(()).unwrap();
        assert!(matches!(blocker.join().unwrap(), Fetch::Ready(_, false)));
        let s = store.stats();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.shed, 1);
        assert!(s.lookups_balance());
    }

    #[test]
    fn fetch_times_out_waiting_on_a_slow_recording() {
        let store = Arc::new(TraceStore::new(usize::MAX));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let blocker = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                store.fetch_or_record(9, usize::MAX, None, move || {
                    rx.recv().unwrap();
                    tiny_trace(9)
                })
            })
        };
        while store.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        // A coalescing waiter with an already-lapsed deadline gives up
        // instead of parking forever...
        let deadline = Some(Instant::now());
        assert!(matches!(
            store.fetch_or_record(9, usize::MAX, deadline, || unreachable!("coalesces")),
            Fetch::TimedOut
        ));
        assert!(matches!(
            store.get_within(9, deadline),
            Err(DeadlineExceeded)
        ));
        // ...and the recording itself is unharmed: it completes and the
        // entry lands for future callers.
        tx.send(()).unwrap();
        assert!(matches!(blocker.join().unwrap(), Fetch::Ready(_, false)));
        assert!(store.get(9).is_some());
        let s = store.stats();
        assert!(s.coalesced >= 1);
        assert!(s.lookups_balance(), "timed-out waiters stay coalesced: {s:?}");
    }

    #[test]
    fn get_misses_on_unknown_key() {
        let store = TraceStore::new(usize::MAX);
        assert!(store.get(42).is_none());
        assert_eq!(store.stats().absent, 1);
        store.get_or_record(42, || tiny_trace(1));
        assert!(store.get(42).is_some());
        assert!(store.stats().lookups_balance());
    }

    #[test]
    fn try_get_never_blocks_and_counts_only_hits() {
        let store = Arc::new(TraceStore::new(usize::MAX));
        assert!(matches!(store.try_get(7), TryGet::Absent));
        assert_eq!(store.stats().lookups, 0, "a non-terminal probe is not a lookup");
        store.get_or_record(7, || tiny_trace(7));
        assert!(matches!(store.try_get(7), TryGet::Ready(_)));
        // An in-flight key reports InFlight instantly instead of joining.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let blocker = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                store.get_or_record(8, move || {
                    rx.recv().unwrap();
                    tiny_trace(8)
                })
            })
        };
        while store.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        assert!(matches!(store.try_get(8), TryGet::InFlight));
        tx.send(()).unwrap();
        blocker.join().unwrap();
        let s = store.stats();
        assert_eq!(s.hits, 1, "only the terminal try_get counts a hit");
        assert!(s.lookups_balance());
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let one = tiny_trace(1).approx_bytes();
        // Room for two entries, not three.
        let store = TraceStore::new(one * 2 + one / 2);
        store.get_or_record(1, || tiny_trace(1));
        store.get_or_record(2, || tiny_trace(2));
        // Touch 1 so 2 becomes the LRU.
        store.get(1).unwrap();
        store.get_or_record(3, || tiny_trace(3));
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(store.get(2).is_none(), "LRU entry should be gone");
        assert!(store.get(1).is_some());
        assert!(store.get(3).is_some());
        assert!(s.bytes <= store.budget_bytes());
    }

    #[test]
    fn an_oversized_entry_still_serves_its_request() {
        let store = TraceStore::new(1); // everything is over budget
        let (a, _) = store.get_or_record(9, || tiny_trace(9));
        assert!(a.ops().len() > 0 || a.couplets() > 0);
        // It stays resident (nothing else to evict below it).
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn churn_evicts_exactly_what_a_reference_lru_would() {
        // Regression for the O(n²) evictor: drive a long, deterministic
        // mixed workload of inserts and touches against a reference LRU
        // model and require identical eviction counts and residency at
        // every step. The indexed evictor must be a pure speedup, never
        // a policy change. (Single shard: global LRU is exact.)
        let one = tiny_trace(0).approx_bytes();
        const CAPACITY: usize = 8; // entries the budget can hold
        let store = TraceStore::new(one * CAPACITY + one / 2);
        let mut model: Vec<u64> = Vec::new(); // LRU order, oldest first
        let mut model_evictions = 0u64;
        let mut rng = cachetime_testkit::SplitMix64::from_seed(0xb51d);

        for step in 0..600 {
            let key = rng.next_u64() % 48;
            if let Some(pos) = model.iter().position(|&k| k == key) {
                // Warm: a get must refresh recency, not evict.
                assert!(store.get(key).is_some(), "step {step}: key {key} must be resident");
                model.remove(pos);
                model.push(key);
            } else {
                let (_, cached) = store.get_or_record(key, || tiny_trace(key));
                assert!(!cached, "step {step}: key {key} must record");
                model.push(key);
                if model.len() > CAPACITY {
                    model.remove(0);
                    model_evictions += 1;
                }
            }
            let s = store.stats();
            assert_eq!(
                s.evictions, model_evictions,
                "step {step}: eviction counts diverged"
            );
            assert_eq!(s.entries, model.len(), "step {step}: residency diverged");
            assert!(s.bytes <= store.budget_bytes(), "step {step}: over budget");
        }
        // Final residency matches the model exactly, newest to oldest.
        for &key in &model {
            assert!(store.get(key).is_some(), "key {key} wrongly evicted");
        }
        assert!(model_evictions > 100, "the workload must actually churn");
        assert!(store.stats().lookups_balance());
    }

    #[test]
    fn sharded_store_isolates_keys_and_splits_the_budget() {
        let one = tiny_trace(1).approx_bytes();
        let store = TraceStore::sharded(one * 8, 4);
        assert_eq!(store.shard_count(), 4);
        // Fill across shards; totals aggregate across all of them.
        for key in 0..8u64 {
            store.get_or_record(key, || tiny_trace(key));
        }
        let s = store.stats();
        assert_eq!(s.misses, 8);
        assert!(s.entries >= 4, "per-shard budgets keep at least the keep-entry");
        assert!(s.lookups_balance());
        // A resident key on any shard still hits.
        let mut hits = 0;
        for key in 0..8u64 {
            if matches!(store.try_get(key), TryGet::Ready(_)) {
                hits += 1;
            }
        }
        assert!(hits >= 4);
        assert!(store.stats().lookups_balance());
    }

    #[test]
    fn a_coalescing_waiter_counts_once_not_as_a_hit_too() {
        // Regression: a waiter that joined an in-flight recording used to
        // count as coalesced *and then again* as a hit when it woke to
        // the finished entry, so `hits + coalesced` overcounted requests
        // whenever anyone actually waited (a scheduling-dependent flake
        // in the same-key storm test).
        let store = Arc::new(TraceStore::new(usize::MAX));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let blocker = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                store.get_or_record(5, move || {
                    rx.recv().unwrap();
                    tiny_trace(5)
                })
            })
        };
        while store.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                store.get_or_record(5, || unreachable!("must coalesce"))
            })
        };
        // The waiter is guaranteed parked once it has counted.
        while store.stats().coalesced == 0 {
            std::thread::yield_now();
        }
        tx.send(()).unwrap();
        let (a, recorded_hit) = blocker.join().unwrap();
        let (b, joined_hit) = waiter.join().unwrap();
        assert!(!recorded_hit);
        assert!(joined_hit);
        assert!(Arc::ptr_eq(&a, &b));
        let s = store.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.hits, 0, "a coalesced join must not also count as a hit");
        assert_eq!(s.lookups, 2);
        assert!(s.lookups_balance());
    }

    #[test]
    fn panicking_recorder_unblocks_future_requests() {
        let store = Arc::new(TraceStore::new(usize::MAX));
        let s2 = Arc::clone(&store);
        let t = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s2.get_or_record(5, || panic!("recorder died"));
            }));
        });
        t.join().unwrap();
        // The key is clean again: a fresh recording succeeds.
        let (_, hit) = store.get_or_record(5, || tiny_trace(5));
        assert!(!hit);
        assert_eq!(store.stats().in_flight, 0);
        assert!(store.stats().lookups_balance());
    }
}
