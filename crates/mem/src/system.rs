//! The stateful main-memory unit: busy tracking plus its write buffer.

use crate::config::MemoryConfig;
use crate::stats::MemStats;
use crate::timing::MemoryTiming;
use crate::write_buffer::{WbEntry, WriteBuffer};
use cachetime_types::{CycleTime, Pid, WordAddr};

/// A cache-fill request presented to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillRequest {
    /// Issuing process.
    pub pid: Pid,
    /// First word of the fetch region.
    pub addr: WordAddr,
    /// Words to fetch.
    pub words: u32,
    /// A dirty victim block `(first_word, words)` displaced by this fill.
    /// Per the paper, "the memory read is started immediately, and the
    /// dirty block is transferred into the write buffer during the memory
    /// latency period".
    pub victim: Option<(WordAddr, u32)>,
}

/// The two timestamps of a serviced fill: when the first words can start
/// entering the requesting cache, and when the whole transfer completes.
///
/// The gap is what the paper's miss-penalty-reduction techniques exploit:
/// early continuation and load forwarding let the CPU resume between
/// `ready` and `done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillGrant {
    /// Cycle at which the transfer into the requester begins.
    pub ready: u64,
    /// Cycle at which the full fetch region is in the requester.
    pub done: u64,
}

/// Main memory modeled as a single functional unit behind a write buffer.
///
/// The object is driven event-style: each public method takes the current
/// cycle `now` and returns the cycle at which the requester may proceed.
/// Between events, pending buffered writes "catch up": any write that could
/// have started during the idle past is retired, so lazy evaluation matches
/// what a cycle-by-cycle model would do.
///
/// # Examples
///
/// ```
/// use cachetime_mem::{FillRequest, MemoryConfig, MemorySystem};
/// use cachetime_types::{CycleTime, Pid, WordAddr};
///
/// let mut mem = MemorySystem::new(&MemoryConfig::paper_default(),
///                                 CycleTime::from_ns(40)?);
/// let done = mem.fill(0, FillRequest {
///     pid: Pid(0),
///     addr: WordAddr::new(0x100),
///     words: 4,
///     victim: None,
/// });
/// assert_eq!(done, 10); // Table 2: 10-cycle read at 40ns
/// # Ok::<(), cachetime_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    timing: MemoryTiming,
    wb: WriteBuffer,
    coalesce: bool,
    drain_delay: u64,
    read_priority: bool,
    /// Cycle at which the memory unit can start its next operation.
    free_at: u64,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates an idle memory system.
    pub fn new(config: &MemoryConfig, cycle_time: CycleTime) -> Self {
        MemorySystem {
            timing: MemoryTiming::new(config, cycle_time),
            wb: WriteBuffer::new(config.wb_depth()),
            coalesce: config.wb_coalesce(),
            drain_delay: config.wb_drain_delay(),
            read_priority: config.read_priority(),
            free_at: 0,
            stats: MemStats::default(),
        }
    }

    /// Returns the cycle arithmetic in force.
    pub fn timing(&self) -> &MemoryTiming {
        &self.timing
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics (warm-start boundary) without touching state.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Number of writes currently buffered (for tests and ablations).
    pub fn pending_writes(&self) -> usize {
        self.wb.len()
    }

    /// Performs a block read for a cache fill.
    ///
    /// Returns the cycle at which the fetched words are fully in the cache
    /// (the CPU's miss completion time). Reads have priority over buffered
    /// writes unless configured otherwise, but an address match forces the
    /// matching write (and everything ahead of it) to drain first.
    pub fn fill(&mut self, now: u64, req: FillRequest) -> u64 {
        self.fill_grant(now, req).done
    }

    /// Like [`fill`](Self::fill), but exposes both the transfer-start and
    /// completion cycles (see [`FillGrant`]).
    #[inline]
    pub fn fill_grant(&mut self, now: u64, req: FillRequest) -> FillGrant {
        // Clean-miss fast path: with nothing buffered and no victim there
        // is nothing to drain, match, or park — the general path below
        // reduces to exactly this arithmetic (for any buffer capacity).
        if req.victim.is_none() && self.wb.is_empty() {
            let start = now.max(self.free_at);
            let data_start =
                start + self.timing.config().addr_cycles() + self.timing.latency_cycles();
            let transfer = self.timing.transfer_cycles(req.words);
            self.free_at = data_start + transfer + self.timing.recovery_cycles();
            self.stats.reads += 1;
            self.stats.read_words += req.words as u64;
            return FillGrant {
                ready: data_start,
                done: data_start + transfer,
            };
        }
        self.catch_up(now);
        if !self.read_priority {
            while !self.wb.is_empty() {
                self.drain_one(now);
            }
        } else if let Some(i) = self.wb.find_overlap(req.pid, req.addr, req.words) {
            self.stats.read_match_stalls += 1;
            for _ in 0..=i {
                self.drain_one(now);
            }
        }

        // Unbuffered system: there is nowhere to park the victim, so the
        // classic penalty applies — write the dirty block back *before*
        // starting the fetch. (This serialization is exactly what the
        // write buffer exists to hide.)
        if let Some((_, vwords)) = req.victim.filter(|_| self.wb.capacity() == 0) {
            self.synchronous_write(now, vwords);
        }

        let start = now.max(self.free_at);
        let data_start = start + self.timing.config().addr_cycles() + self.timing.latency_cycles();
        let transfer = self.timing.transfer_cycles(req.words);
        self.free_at = data_start + transfer + self.timing.recovery_cycles();
        self.stats.reads += 1;
        self.stats.read_words += req.words as u64;

        // The victim moves cache -> write buffer one word per cycle during
        // the latency period; the incoming transfer cannot enter the cache
        // array until the move completes.
        let mut fill_gate = data_start;
        if self.wb.capacity() == 0 {
            // Victim already written back synchronously above.
            return FillGrant {
                ready: data_start,
                done: data_start + transfer,
            };
        }
        if let Some((vaddr, vwords)) = req.victim {
            let move_start = if self.wb.is_full() {
                // Rare with the paper's 4-deep buffer: wait for the read to
                // finish, then force the head out to make room.
                self.stats.full_stalls += 1;
                self.drain_one(self.free_at)
            } else {
                start
            };
            let move_done = move_start + vwords as u64;
            self.wb
                .push(WbEntry::block(req.pid, vaddr, vwords, move_done));
            fill_gate = fill_gate.max(move_done);
        }
        FillGrant {
            ready: fill_gate,
            done: fill_gate + transfer,
        }
    }

    /// Accepts a downstream word write (write-through or write-around).
    ///
    /// Returns the cycle at which the word is in the buffer and the CPU may
    /// proceed — `now` unless the buffer was full.
    #[inline]
    pub fn write_word(&mut self, now: u64, pid: Pid, addr: WordAddr) -> u64 {
        self.catch_up(now);
        if self.wb.capacity() == 0 {
            return self.synchronous_write(now, 1);
        }
        if self.coalesce && self.wb.try_coalesce(pid, addr) {
            self.stats.coalesced_writes += 1;
            return now;
        }
        let ready = if self.wb.is_full() {
            self.stats.full_stalls += 1;
            self.drain_one(now)
        } else {
            now
        };
        self.wb.push(WbEntry::word(pid, addr, ready));
        ready
    }

    /// Accepts a whole-block downstream write that is *not* overlapped with
    /// a fill (e.g. an explicit flush, or a mid-level victim in a two-level
    /// hierarchy whose move is accounted upstream).
    pub fn write_block(&mut self, now: u64, pid: Pid, addr: WordAddr, words: u32) -> u64 {
        self.catch_up(now);
        if self.wb.capacity() == 0 {
            return self.synchronous_write(now, words);
        }
        let ready = if self.wb.is_full() {
            self.stats.full_stalls += 1;
            self.drain_one(now)
        } else {
            now
        };
        self.wb.push(WbEntry::block(pid, addr, words, ready));
        ready
    }

    /// Retires every buffered write and returns the cycle the last one
    /// completed (including its recovery).
    pub fn drain_all(&mut self, now: u64) -> u64 {
        while !self.wb.is_empty() {
            self.drain_one(now);
        }
        self.free_at
    }

    /// Retires buffered writes that would have started strictly before
    /// `now`: the controller launches a write once the memory is idle and
    /// the entry has aged past the drain delay (the aging window is what
    /// lets later stores coalesce into it). A read arriving at the same
    /// cycle as a launchable write still wins (read priority), but a write
    /// already in flight is not preempted.
    #[inline]
    fn catch_up(&mut self, now: u64) {
        while let Some(e) = self.wb.front() {
            let eligible = e.ready_at + self.drain_delay;
            if eligible.max(self.free_at) < now {
                // Backdate the launch to when it actually would have
                // started; passing `now` would wrongly stretch the busy
                // window into the present.
                self.drain_one(eligible);
            } else {
                break;
            }
        }
    }

    /// Performs an unbuffered write: the requester waits for the bus
    /// release. Used when the write-buffer depth is zero.
    fn synchronous_write(&mut self, now: u64, words: u32) -> u64 {
        let start = now.max(self.free_at);
        let bus_release = start + self.timing.write_bus_time(words);
        self.free_at = bus_release + self.timing.write_op_cycles() + self.timing.recovery_cycles();
        self.stats.writes += 1;
        self.stats.write_words += words as u64;
        bus_release
    }

    /// Pops and retires the oldest write; returns its bus-release cycle.
    #[inline]
    fn drain_one(&mut self, earliest: u64) -> u64 {
        let e = self.wb.pop_front().expect("drain_one on empty buffer");
        let start = earliest.max(e.ready_at).max(self.free_at);
        let words = e.words();
        let bus_release = start + self.timing.write_bus_time(words);
        self.free_at = bus_release + self.timing.write_op_cycles() + self.timing.recovery_cycles();
        self.stats.writes += 1;
        self.stats.write_words += words as u64;
        bus_release
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime_types::Nanos;

    fn mk(depth: u32) -> MemorySystem {
        let config = MemoryConfig::builder().wb_depth(depth).build().unwrap();
        MemorySystem::new(&config, CycleTime::from_ns(40).unwrap())
    }

    fn fill_req(addr: u64, words: u32) -> FillRequest {
        FillRequest {
            pid: Pid(0),
            addr: WordAddr::new(addr),
            words,
            victim: None,
        }
    }

    #[test]
    fn clean_fill_takes_table2_read_time() {
        let mut mem = mk(4);
        assert_eq!(mem.fill(0, fill_req(0, 4)), 10);
        assert_eq!(mem.stats().reads, 1);
        assert_eq!(mem.stats().read_words, 4);
    }

    #[test]
    fn back_to_back_fills_respect_recovery() {
        let mut mem = mk(4);
        let first = mem.fill(0, fill_req(0, 4));
        assert_eq!(first, 10);
        // Memory free at 13 (10 + recovery 3); second fill issued at 10
        // starts at 13 and completes at 23.
        let second = mem.fill(first, fill_req(64, 4));
        assert_eq!(second, 23);
    }

    #[test]
    fn fill_after_long_idle_starts_immediately() {
        let mut mem = mk(4);
        mem.fill(0, fill_req(0, 4));
        assert_eq!(mem.fill(1000, fill_req(64, 4)), 1010);
    }

    #[test]
    fn short_victim_write_back_fully_hidden() {
        // Victim move: 4 cycles from start; data starts arriving at
        // 1 + 5 = 6 cycles. The write-back is hidden (paper: "if the
        // latency is sufficiently long, the write back is completely
        // hidden").
        let mut mem = mk(4);
        let req = FillRequest {
            victim: Some((WordAddr::new(128), 4)),
            ..fill_req(0, 4)
        };
        assert_eq!(mem.fill(0, req), 10);
        assert_eq!(mem.pending_writes(), 1);
    }

    #[test]
    fn long_victim_move_delays_fill() {
        // 16-word blocks: move done at 16, data ready to enter at 6; the
        // fill transfer is gated by the move: 16 + 16 = 32, not
        // 1 + 5 + 16 = 22. ("since all the data paths are set to be one
        // word wide, this is not always the case for long block sizes")
        let mut mem = mk(4);
        let req = FillRequest {
            pid: Pid(0),
            addr: WordAddr::new(0),
            words: 16,
            victim: Some((WordAddr::new(256), 16)),
        };
        assert_eq!(mem.fill(0, req), 32);
    }

    #[test]
    fn buffered_write_drains_during_idle() {
        let mut mem = mk(4);
        mem.write_word(0, Pid(0), WordAddr::new(0));
        assert_eq!(mem.pending_writes(), 1);
        // Long idle: by cycle 100 the write has retired.
        mem.fill(100, fill_req(999, 4));
        assert_eq!(mem.stats().writes, 1);
        assert_eq!(mem.pending_writes(), 0);
    }

    #[test]
    fn read_overtakes_unrelated_write_present_at_same_cycle() {
        let mut mem = mk(4);
        mem.write_word(5, Pid(0), WordAddr::new(0));
        // Read priority: the fill issued at the same cycle goes first.
        assert_eq!(mem.fill(5, fill_req(1000, 4)), 15);
        assert_eq!(mem.stats().read_match_stalls, 0);
    }

    #[test]
    fn address_match_forces_drain_first() {
        let mut mem = mk(4);
        mem.write_word(5, Pid(0), WordAddr::new(2));
        // Fill of the same region must wait for the write to retire:
        // write start 5, bus release 5 + 1 + 1 = 7, write op 3 + recovery 3
        // -> memory free at 13; fill completes 13 + 10 = 23.
        assert_eq!(mem.fill(5, fill_req(0, 4)), 23);
        assert_eq!(mem.stats().read_match_stalls, 1);
    }

    #[test]
    fn address_match_respects_pid() {
        let mut mem = mk(4);
        mem.write_word(5, Pid(1), WordAddr::new(2));
        // Same virtual address, different process: no match.
        assert_eq!(mem.fill(5, fill_req(0, 4)), 15);
        assert_eq!(mem.stats().read_match_stalls, 0);
    }

    #[test]
    fn no_read_priority_drains_everything() {
        let config = MemoryConfig::builder()
            .read_priority(false)
            .build()
            .unwrap();
        let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
        mem.write_word(5, Pid(0), WordAddr::new(1000));
        let done = mem.fill(5, fill_req(0, 4));
        assert!(done > 15, "fill must wait behind the unrelated write");
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn full_buffer_stalls_word_write() {
        let config = MemoryConfig::builder()
            .wb_depth(1)
            .wb_coalesce(false)
            .build()
            .unwrap();
        let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
        assert_eq!(mem.write_word(0, Pid(0), WordAddr::new(0)), 0);
        let accepted = mem.write_word(0, Pid(0), WordAddr::new(100));
        assert!(accepted > 0, "second write waits for a drain");
        assert_eq!(mem.stats().full_stalls, 1);
    }

    #[test]
    fn coalescing_merges_sequential_words_while_memory_busy() {
        let mut mem = mk(4);
        // Occupy the memory so buffered writes cannot start draining.
        mem.fill(0, fill_req(999, 4));
        mem.write_word(1, Pid(0), WordAddr::new(0));
        mem.write_word(3, Pid(0), WordAddr::new(1));
        mem.write_word(5, Pid(0), WordAddr::new(2));
        assert_eq!(mem.pending_writes(), 1);
        assert_eq!(mem.stats().coalesced_writes, 2);
    }

    #[test]
    fn drain_delay_aggregates_then_drains() {
        // Within the drain window, writes aggregate; once the window
        // passes, the controller launches the write during idle time.
        let mut mem = mk(4);
        mem.write_word(0, Pid(0), WordAddr::new(0));
        mem.write_word(1, Pid(0), WordAddr::new(1));
        assert_eq!(mem.stats().coalesced_writes, 1, "aggregation window");
        assert_eq!(mem.stats().writes, 0);
        // Long after the delay, the next event observes the drain done.
        mem.write_word(1000, Pid(0), WordAddr::new(500));
        assert_eq!(mem.stats().writes, 1);
        assert_eq!(mem.pending_writes(), 1);
    }

    #[test]
    fn zero_drain_delay_restores_eager_draining() {
        let config = MemoryConfig::builder()
            .wb_drain_delay(0)
            .wb_coalesce(false)
            .build()
            .unwrap();
        let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
        mem.write_word(0, Pid(0), WordAddr::new(0));
        mem.write_word(1, Pid(0), WordAddr::new(100));
        assert_eq!(mem.stats().writes, 1, "first write launched at once");
    }

    #[test]
    fn drain_all_flushes() {
        let mut mem = mk(4);
        mem.write_word(0, Pid(0), WordAddr::new(0));
        mem.write_word(0, Pid(0), WordAddr::new(500));
        let free = mem.drain_all(0);
        assert_eq!(mem.pending_writes(), 0);
        assert_eq!(mem.stats().writes, 2);
        assert!(free > 0);
    }

    #[test]
    fn uniform_latency_fill_times() {
        // Section 5 grid point: 260ns uniform latency, 1 W/cycle, 40ns
        // clock -> 12-cycle read for a 4-word block (footnote 13).
        let config =
            MemoryConfig::uniform_latency(Nanos(260), crate::TransferRate::WordsPerCycle(1))
                .unwrap();
        let mut mem = MemorySystem::new(&config, CycleTime::from_ns(40).unwrap());
        assert_eq!(mem.fill(0, fill_req(0, 4)), 12);
    }

    #[test]
    fn stats_reset_keeps_state() {
        let mut mem = mk(4);
        mem.write_word(0, Pid(0), WordAddr::new(0));
        mem.reset_stats();
        assert_eq!(mem.stats().operations(), 0);
        assert_eq!(mem.pending_writes(), 1, "state survives the reset");
    }
}
