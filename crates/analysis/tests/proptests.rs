//! Property-based tests for the analysis toolkit, on the hermetic
//! testkit runner (`TESTKIT_SEED=… cargo test -q` reproduces a failure).

use cachetime_analysis::{
    crossing, geometric_mean, interp_at, parabola_vertex, sampled_minimum, smooth_index,
};
use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, SplitMix64};

/// A strictly increasing x axis with matching y values (2..20 points).
fn gen_curve(rng: &mut SplitMix64) -> (Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(2usize..20);
    let mut x = 0.0;
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        x += rng.gen_range(0.1f64..10.0);
        xs.push(x);
        ys.push(rng.gen_range(-100.0f64..100.0));
    }
    (xs, ys)
}

/// The geometric mean lies between min and max and is scale-covariant.
#[test]
fn geomean_bounds_and_scaling() {
    check(
        "geomean_bounds_and_scaling",
        |rng| {
            let k = rng.gen_range(1e-3f64..1e3);
            let n = rng.gen_range(1usize..30);
            let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(1e-6f64..1e6)).collect();
            (k, vals)
        },
        shrink::pair_vec,
        |(k, vals)| {
            if vals.is_empty() {
                return Ok(()); // shrunk away; nothing to check
            }
            let g = geometric_mean(vals);
            let min = vals.iter().copied().fold(f64::MAX, f64::min);
            let max = vals.iter().copied().fold(f64::MIN, f64::max);
            prop_assert!(
                g >= min * 0.999999 && g <= max * 1.000001,
                "{g} not in [{min}, {max}]"
            );
            let scaled: Vec<f64> = vals.iter().map(|v| v * k).collect();
            let gs = geometric_mean(&scaled);
            prop_assert!((gs / (g * k) - 1.0).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Interpolation is exact at the sample points and bounded by the
/// segment endpoints between them.
#[test]
fn interp_exact_and_bounded() {
    check(
        "interp_exact_and_bounded",
        |rng| (gen_curve(rng), rng.gen_range(0.0f64..1.0)),
        shrink::none,
        |((xs, ys), t)| {
            for (x, y) in xs.iter().zip(ys) {
                prop_assert!((interp_at(xs, ys, *x) - y).abs() < 1e-9);
            }
            // A point inside a random segment stays within that segment's
            // span.
            let i = ((xs.len() - 1) as f64 * t) as usize;
            let i = i.min(xs.len() - 2);
            let x = xs[i] + (xs[i + 1] - xs[i]) * 0.5;
            let y = interp_at(xs, ys, x);
            let lo = ys[i].min(ys[i + 1]);
            let hi = ys[i].max(ys[i + 1]);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
            Ok(())
        },
    );
}

/// If `crossing` finds an x, interpolating there recovers the target.
#[test]
fn crossing_inverts_interpolation() {
    check(
        "crossing_inverts_interpolation",
        |rng| (gen_curve(rng), rng.gen_range(0.0f64..1.0)),
        shrink::none,
        |((xs, ys), t)| {
            let min = ys.iter().copied().fold(f64::MAX, f64::min);
            let max = ys.iter().copied().fold(f64::MIN, f64::max);
            let target = min + (max - min) * t;
            if let Some(x) = crossing(xs, ys, target) {
                prop_assert!(x >= xs[0] - 1e-9 && x <= *xs.last().unwrap() + 1e-9);
                prop_assert!(
                    (interp_at(xs, ys, x) - target).abs() < 1e-6,
                    "crossing at {x} does not hit {target}"
                );
            } else {
                // Only possible if the target is an unattained extremum of
                // a non-degenerate range — i.e. target equals max or min
                // attained only at interior plateau boundaries. For targets
                // strictly inside the attained range a crossing must exist.
                prop_assert!(
                    target <= min + 1e-12 || target >= max - 1e-12 || min == max,
                    "missed an interior target {target} in [{min}, {max}]"
                );
            }
            Ok(())
        },
    );
}

/// Smoothing touches exactly one sample.
#[test]
fn smoothing_is_local() {
    check(
        "smoothing_is_local",
        |rng| (gen_curve(rng), rng.gen_range(0.0f64..1.0)),
        shrink::none,
        |((xs, ys), t)| {
            let i = ((ys.len() - 1) as f64 * t) as usize;
            let s = smooth_index(xs, ys, i);
            prop_assert_eq!(s.len(), ys.len());
            for (j, (&orig, &new)) in ys.iter().zip(&s).enumerate() {
                if j != i {
                    prop_assert_eq!(orig, new);
                }
            }
            Ok(())
        },
    );
}

/// The fitted vertex of a sampled exact parabola recovers its true
/// minimum, and `sampled_minimum` stays inside the sampled range.
#[test]
fn parabola_recovers_vertex() {
    check(
        "parabola_recovers_vertex",
        |rng| {
            (
                rng.gen_range(-5.0f64..5.0),
                rng.gen_range(0.01f64..10.0),
                rng.gen_range(-10.0f64..10.0),
            )
        },
        shrink::none,
        |&(center, a, c)| {
            let f = |x: f64| a * (x - center).powi(2) + c;
            let v = parabola_vertex((-7.0, f(-7.0)), (0.5, f(0.5)), (8.0, f(8.0)))
                .expect("upward parabola");
            prop_assert!((v - center).abs() < 1e-6);

            let xs: Vec<f64> = (-8..=8).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
            let m = sampled_minimum(&xs, &ys);
            prop_assert!(m >= xs[0] && m <= *xs.last().unwrap());
            prop_assert!((m - center).abs() < 1e-6, "sampled min {m} vs true {center}");
            Ok(())
        },
    );
}
