//! A design-space assistant built on the paper's worked example.
//!
//! "Consider a system being built around a 40ns CPU, requiring 15ns RAMs to
//! attain that cycle time. If the best available 16Kb and 64Kb RAMs run at
//! 15 and 25ns respectively, then two comparable design alternatives are
//! 8KB per cache with the 2K by 8b chips or 32KB per cache with the 8K by
//! 8b chips. … running the CPU at 50ns with a larger cache improves the
//! overall performance by 7.3%."
//!
//! [`best_design`] generalizes that reasoning: given a catalog of feasible
//! (cache size, cycle time) pairings — each derived from an available RAM
//! family at a fixed chip count — it simulates every candidate and ranks
//! them by execution time, the metric the paper insists on.

use crate::runner::{run_config, TraceSet};
use crate::sweep;
use cachetime::SystemConfig;
use cachetime_analysis::table::Table;
use cachetime_cache::CacheConfig;
use cachetime_types::{CacheSize, ConfigError, CycleTime};

/// One feasible machine: a RAM family fixes both the per-cache capacity
/// (at constant chip count) and the achievable cycle time.
#[derive(Debug, Clone, PartialEq)]
pub struct RamOption {
    /// Descriptive label (e.g. `"16Kb SRAM @ 15ns"`).
    pub label: String,
    /// Per-cache data capacity this family yields.
    pub per_cache: CacheSize,
    /// System cycle time achievable with these RAMs.
    pub cycle_time: CycleTime,
}

impl RamOption {
    /// Convenience constructor.
    ///
    /// # Errors
    ///
    /// Propagates size/cycle-time validation errors.
    pub fn new(label: &str, per_cache_kb: u64, cycle_ns: u32) -> Result<Self, ConfigError> {
        Ok(RamOption {
            label: label.to_string(),
            per_cache: CacheSize::from_kib(per_cache_kb)?,
            cycle_time: CycleTime::from_ns(cycle_ns)?,
        })
    }
}

/// A catalog mirroring the paper's era: denser SRAM families are a RAM
/// generation slower, and the system adds 25 ns of overhead (CPU, board,
/// and margin) on top of the RAM access time.
///
/// # Errors
///
/// Never fails in practice; mirrors the constructors' `Result`.
pub fn paper_era_catalog() -> Result<Vec<RamOption>, ConfigError> {
    Ok(vec![
        RamOption::new("4Kb SRAM @ 10ns -> 2KB/cache, 35ns", 2, 35)?,
        RamOption::new("16Kb SRAM @ 15ns -> 8KB/cache, 40ns", 8, 40)?,
        RamOption::new("64Kb SRAM @ 25ns -> 32KB/cache, 50ns", 32, 50)?,
        RamOption::new("256Kb SRAM @ 35ns -> 128KB/cache, 60ns", 128, 60)?,
        RamOption::new("1Mb SRAM @ 55ns -> 512KB/cache, 80ns", 512, 80)?,
    ])
}

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedDesign {
    /// The option this came from.
    pub option: RamOption,
    /// Mean execution time per reference (ns), geometric mean over traces.
    pub time_per_ref_ns: f64,
    /// Combined read miss ratio.
    pub read_miss_ratio: f64,
}

/// Simulates every option and returns them best-first.
///
/// # Panics
///
/// Panics if `options` is empty or a configuration fails to build (the
/// options were validated at construction).
pub fn best_design(traces: &TraceSet, options: &[RamOption]) -> Vec<RankedDesign> {
    best_design_jobs(traces, options, 1)
}

/// [`best_design`] with the candidate simulations fanned over `jobs`
/// workers (`0` = available parallelism). The ranking is identical to
/// the serial path for every job count: each candidate's aggregate is
/// computed in canonical trace order and ties keep catalog order.
///
/// # Panics
///
/// Panics if `options` is empty or a configuration fails to build (the
/// options were validated at construction).
pub fn best_design_jobs(
    traces: &TraceSet,
    options: &[RamOption],
    jobs: usize,
) -> Vec<RankedDesign> {
    assert!(!options.is_empty(), "no design options");
    let run = sweep::run(options, jobs, |_idx, opt| {
        let l1 = CacheConfig::builder(opt.per_cache)
            .build()
            .expect("validated size");
        let config = SystemConfig::builder()
            .cycle_time(opt.cycle_time)
            .l1_both(l1)
            .build()
            .expect("validated option");
        // Traces stay serial inside each candidate: the outer sweep
        // already saturates the pool when candidates >= jobs, and
        // per-candidate order must match `run_config` exactly.
        run_config(&config, traces)
    })
    .expect("simulation does not panic");
    let mut ranked: Vec<RankedDesign> = options
        .iter()
        .zip(run.results)
        .map(|(opt, agg)| RankedDesign {
            option: opt.clone(),
            time_per_ref_ns: agg.time_per_ref_ns,
            read_miss_ratio: agg.read_miss_ratio,
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.time_per_ref_ns
            .partial_cmp(&b.time_per_ref_ns)
            .expect("no NaNs")
    });
    ranked
}

/// Renders the ranking.
pub fn render(ranked: &[RankedDesign]) -> String {
    let mut t = Table::new(["rank", "design", "ns/ref", "read MR %"]);
    for (i, d) in ranked.iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            d.option.label.clone(),
            format!("{:.2}", d.time_per_ref_ns),
            format!("{:.2}", 100.0 * d.read_miss_ratio),
        ]);
    }
    format!("Design ranking (execution time, the paper's metric)\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neither_extreme_wins_the_paper_era_catalog() {
        let traces = TraceSet::generate(0.05);
        let catalog = paper_era_catalog().expect("valid catalog");
        let ranked = best_design(&traces, &catalog);
        assert_eq!(ranked.len(), 5);
        // Ranking is sorted.
        for w in ranked.windows(2) {
            assert!(w[0].time_per_ref_ns <= w[1].time_per_ref_ns);
        }
        // The fastest-clock/smallest-cache extreme does not win — the
        // paper's core claim.
        assert_ne!(
            ranked[0].option.per_cache.kib(),
            2,
            "2KB/35ns must not be optimal"
        );
        // Nor does the biggest/slowest.
        assert_ne!(
            ranked[0].option.per_cache.kib(),
            512,
            "512KB/80ns must not be optimal"
        );
        assert!(render(&ranked).contains("rank"));
    }

    #[test]
    #[should_panic(expected = "no design options")]
    fn empty_catalog_panics() {
        best_design(&TraceSet::quick(), &[]);
    }
}
