//! Main-memory timing model and write buffers for the `cachetime` simulator.
//!
//! The paper models main memory as "a single functional unit": a read is an
//! address cycle, an asynchronous DRAM latency (quantized up to whole cache
//! cycles — the memory is synchronous to the cache clock), and a word-wise
//! transfer; every operation is followed by a recovery period before the
//! next may start. Writes release the bus after the transfer but keep the
//! memory unit busy for the write-operation time plus recovery.
//!
//! [`MemoryTiming`] exposes that arithmetic (it reproduces the paper's
//! Table 2 exactly — see `timing::tests`), and [`MemorySystem`] adds the
//! stateful parts: the busy/recovery tracking and the write buffer with
//! read-address matching and read priority.
//!
//! # Examples
//!
//! ```
//! use cachetime_mem::{MemoryConfig, MemoryTiming};
//! use cachetime_types::CycleTime;
//!
//! let config = MemoryConfig::paper_default();
//! let t = MemoryTiming::new(&config, CycleTime::from_ns(40)?);
//! // Table 2, 40ns row: read 10 cycles, write 8, recovery 3.
//! assert_eq!(t.read_time(4), 10);
//! assert_eq!(t.write_time(4), 8);
//! assert_eq!(t.recovery_cycles(), 3);
//! # Ok::<(), cachetime_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod stats;
mod system;
mod timing;
mod write_buffer;

pub use config::{MemoryConfig, MemoryConfigBuilder, TransferRate};
pub use stats::MemStats;
pub use system::{FillGrant, FillRequest, MemorySystem};
pub use timing::MemoryTiming;
pub use write_buffer::{WbEntry, WbPayload, WriteBuffer};
