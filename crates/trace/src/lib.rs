//! Synthetic multiprogrammed address-trace substrate for `cachetime`.
//!
//! The paper drives its simulator with eight traces (its Table 1): four
//! VAX 8200 ATUM multiprogramming traces with operating-system references,
//! and four interleaved MIPS R2000 uniprocess traces with a cache-warming
//! initialization prefix. Those traces are not available, so this crate
//! synthesizes workloads that reproduce the *statistical* properties the
//! experiments depend on:
//!
//! * **temporal locality** — reuse governed by a truncated-Pareto LRU
//!   stack-distance model ([`MtfStack`]), giving miss ratios that fall
//!   with cache size and flatten out, as in the paper's Figure 3-1;
//! * **spatial locality** — sequential instruction runs, loops, and
//!   object/array accesses, giving the block-size behaviour of Figure 5-1;
//! * **multiprogramming** — several processes with geometric context-switch
//!   intervals and PID-tagged (virtual) addresses, producing the
//!   inter-process conflicts that keep big virtual caches missing;
//! * **the R2000 initialization prefix** — every address a process touched
//!   before the traced window, replayed in most-recent-use order so warm
//!   results are valid even for very large caches;
//! * **grep/egrep start-up** — a data-space zeroing phase that produces the
//!   RISC traces' elevated write traffic at large cache sizes.
//!
//! # Examples
//!
//! ```
//! use cachetime_trace::catalog;
//!
//! // A scaled-down "mu3" (VAX-like multiprogramming workload).
//! let trace = catalog::mu3(0.02).generate();
//! assert!(trace.len() > 0);
//! assert!(trace.warm_start() < trace.len());
//! let stats = trace.stats();
//! assert!(stats.ifetches > stats.stores);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod import;
pub mod interval;
pub mod io;
pub mod locality;
mod mtf;
mod multiprogram;
mod process;
mod trace;

pub use mtf::MtfStack;
pub use multiprogram::WorkloadSpec;
pub use process::{ProcessParams, SyntheticProcess};
pub use trace::{Trace, TraceStats};
