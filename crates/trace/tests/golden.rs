//! Golden-hash pin for the synthetic trace generator.
//!
//! A fixed catalog seed must produce a bit-identical trace on every
//! platform and in every build — figures, CSVs, and the tier-1 shape
//! tests all assume this. If an intentional generator change breaks
//! these constants, regenerate them (and expect every downstream number
//! to shift).

use cachetime_trace::catalog;

/// FNV-1a over the (kind, addr, pid) stream.
fn trace_hash(t: &cachetime_trace::Trace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in t.refs() {
        mix(r.addr.value());
        mix(r.kind as u64);
        mix(r.pid.0 as u64);
    }
    h
}

#[test]
fn catalog_traces_are_golden_stable() {
    let mu3 = catalog::mu3(0.02).generate();
    let savec = catalog::savec(0.02).generate();
    assert_eq!(
        trace_hash(&mu3),
        0x8b60_439a_b6ba_161a,
        "mu3 stream changed — every downstream figure shifts"
    );
    assert_eq!(
        trace_hash(&savec),
        0xb031_8c29_4700_02c1,
        "savec stream changed — every downstream figure shifts"
    );
}

#[test]
fn same_seed_is_bit_identical() {
    let a = catalog::rd1n3(0.02).generate();
    let b = catalog::rd1n3(0.02).generate();
    assert_eq!(a.refs(), b.refs());
    assert_eq!(trace_hash(&a), trace_hash(&b));
}
