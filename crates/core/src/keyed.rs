//! Hash-keyed record/replay entry points for trace-store services.
//!
//! The two-phase engine makes an [`EventTrace`] the expensive artifact and
//! replay the cheap operation, which invites *caching*: record an
//! `(organization, workload)` pairing once, answer every timing question
//! against it forever. A cache needs a key, and these functions define the
//! canonical one — the [`StableHash`](cachetime_types::StableHash) digest
//! of the organization and the workload recipe together. Because both
//! trace generation and behavioral simulation are deterministic in those
//! inputs, equal keys imply bit-identical event traces; the key is valid
//! across processes and machines, so a client may remember it and replay
//! against a long-running server (`cachetime-serve`) without resending the
//! organization.
//!
//! ```
//! use cachetime::{keyed, SystemConfig};
//! use cachetime_trace::catalog;
//! use cachetime_types::CycleTime;
//!
//! let config = SystemConfig::paper_default()?;
//! let workload = catalog::savec(0.01);
//! let (key, events) = keyed::record(&config.organization(), &workload);
//! assert_eq!(key, keyed::trace_key(&config.organization(), &workload));
//!
//! let mut timing = config.timing();
//! timing.cycle_time = CycleTime::from_ns(20)?;
//! let results = keyed::replay_timings(&events, &[config.timing(), timing])?;
//! assert_eq!(results.len(), 2);
//! # Ok::<(), cachetime_types::ConfigError>(())
//! ```

use crate::replay::{BehavioralSim, EventTrace};
use crate::result::SimResult;
use crate::system::{OrgConfig, SystemConfig, TimingConfig};
use cachetime_trace::WorkloadSpec;
use cachetime_types::{ConfigError, StableHasher};

use cachetime_types::StableHash as _;

/// The content key of an `(organization, workload)` pairing: the one value
/// a recorded [`EventTrace`] is addressable by.
pub fn trace_key(org: &OrgConfig, workload: &WorkloadSpec) -> u64 {
    let mut h = StableHasher::new();
    org.stable_hash(&mut h);
    workload.stable_hash(&mut h);
    h.finish()
}

/// Generates `workload`'s trace and records its behavioral events under
/// `org`, returning the pairing's content key alongside the trace.
///
/// This is the expensive half of the record/replay pipeline — linear in
/// the reference count. Callers that may already hold the result should
/// compute [`trace_key`] first and only fall back to this on a miss.
pub fn record(org: &OrgConfig, workload: &WorkloadSpec) -> (u64, EventTrace) {
    let trace = workload.generate();
    let events = BehavioralSim::new(org).record(&trace);
    (trace_key(org, workload), events)
}

/// Reprices a recorded trace under each timing half, reusing the trace's
/// own organization for the cross-field validation a full
/// [`SystemConfig`] build performs.
///
/// This is the entry point a timing-axis query maps onto: the caller names
/// an event trace (by key, resolved elsewhere) and supplies only timing
/// halves; the organization travels with the recording.
///
/// # Errors
///
/// [`ConfigError`] if a timing half cannot be combined with the recorded
/// organization (e.g. an L2 block smaller than the recorded L1's).
pub fn replay_timings(
    events: &EventTrace,
    timings: &[TimingConfig],
) -> Result<Vec<SimResult>, ConfigError> {
    let configs = timings
        .iter()
        .map(|t| SystemConfig::from_parts(events.organization(), t))
        .collect::<Result<Vec<_>, _>>()?;
    crate::replay::replay_many(events, &configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime_trace::catalog;
    use cachetime_types::CycleTime;

    #[test]
    fn keys_are_deterministic_and_org_sensitive() {
        let base = SystemConfig::paper_default().unwrap();
        let w = catalog::mu3(0.01);
        assert_eq!(
            trace_key(&base.organization(), &w),
            trace_key(&base.organization(), &w)
        );
        // A timing-only change keeps the key; an organization change moves it.
        let faster = SystemConfig::builder()
            .cycle_time(CycleTime::from_ns(20).unwrap())
            .build()
            .unwrap();
        assert_eq!(
            trace_key(&base.organization(), &w),
            trace_key(&faster.organization(), &w)
        );
        let small = cachetime_cache::CacheConfig::builder(
            cachetime_types::CacheSize::from_kib(16).unwrap(),
        )
        .build()
        .unwrap();
        let other = SystemConfig::builder().l1_both(small).build().unwrap();
        assert_ne!(
            trace_key(&base.organization(), &w),
            trace_key(&other.organization(), &w)
        );
        // A different workload (even a different scale) moves it too.
        assert_ne!(
            trace_key(&base.organization(), &w),
            trace_key(&base.organization(), &catalog::mu3(0.02))
        );
    }

    #[test]
    fn record_and_replay_match_direct_simulation() {
        let config = SystemConfig::paper_default().unwrap();
        let w = catalog::savec(0.01);
        let (key, events) = record(&config.organization(), &w);
        assert_eq!(key, trace_key(&config.organization(), &w));
        let mut timing = config.timing();
        timing.cycle_time = CycleTime::from_ns(56).unwrap();
        let results = replay_timings(&events, &[config.timing(), timing]).unwrap();
        let trace = w.generate();
        assert_eq!(results[0], crate::Simulator::new(&config).run(&trace));
        let direct56 = crate::Simulator::new(
            &SystemConfig::from_parts(&config.organization(), &timing).unwrap(),
        )
        .run(&trace);
        assert_eq!(results[1], direct56);
    }

    #[test]
    fn replay_timings_surfaces_validation_errors() {
        let config = SystemConfig::paper_default().unwrap();
        let (_, events) = record(&config.organization(), &catalog::mu3(0.005));
        let mut bad = config.timing();
        let small_block = cachetime_cache::CacheConfig::builder(
            cachetime_types::CacheSize::from_kib(256).unwrap(),
        )
        .block(cachetime_types::BlockWords::new(2).unwrap())
        .build()
        .unwrap();
        bad.l2 = Some(crate::system::LevelTwoConfig::new(small_block));
        assert!(replay_timings(&events, &[bad]).is_err());
    }
}
