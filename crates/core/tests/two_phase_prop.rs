//! Property test: for *any* valid machine and any small trace, the
//! two-phase pipeline is bit-identical to the direct engine.
//!
//! Runs on the hermetic testkit runner: failures shrink to a minimal
//! (config, trace) pair and print a replay seed; rerun a specific case
//! with `TESTKIT_SEED=<seed> cargo test -p cachetime --test two_phase_prop`.

use cachetime::{simulate_two_phase, LevelTwoConfig, Simulator, SystemConfig};
use cachetime_cache::{CacheConfig, VictimCacheConfig, WayPrediction, WriteAllocate, WritePolicy};
use cachetime_mem::MemoryConfig;
use cachetime_mmu::TranslationConfig;
use cachetime_testkit::{check, prop_assert_eq, shrink, SplitMix64};
use cachetime_trace::Trace;
use cachetime_types::{Assoc, BlockWords, CacheSize, CycleTime, MemRef, Pid, WordAddr};

fn gen_ref(rng: &mut SplitMix64) -> MemRef {
    let a = WordAddr::new(rng.gen_range(0u64..2048));
    let pid = Pid(rng.gen_range(0u16..3));
    match rng.gen_range(0u8..3) {
        0 => MemRef::ifetch(a, pid),
        1 => MemRef::load(a, pid),
        _ => MemRef::store(a, pid),
    }
}

fn gen_refs(rng: &mut SplitMix64) -> Vec<MemRef> {
    let n = rng.gen_range(1usize..300);
    (0..n).map(|_| gen_ref(rng)).collect()
}

/// A machine sampled across every axis that could split the two paths:
/// organization (sizes, blocks, associativity, unification, write
/// policies, translation) and timing (clock, issue width, fill policy,
/// memory buffering, mid levels).
fn try_gen_system(rng: &mut SplitMix64) -> Option<SystemConfig> {
    let mut l1b = CacheConfig::builder(CacheSize::from_kib(1 << rng.gen_range(1u32..4)).ok()?);
    l1b.block(BlockWords::new(1 << rng.gen_range(0u32..4)).ok()?)
        .assoc(Assoc::new(1 << rng.gen_range(0u32..3)).ok()?);
    if rng.gen_bool(0.3) {
        l1b.write_policy(WritePolicy::WriteThrough);
    }
    if rng.gen_bool(0.3) {
        l1b.write_allocate(WriteAllocate::Allocate);
    }
    // Organization features: a victim buffer and/or way prediction. The
    // builder rejects way prediction on direct-mapped samples; that
    // combination rejection-samples away like any other invalid draw.
    if rng.gen_bool(0.3) {
        l1b.victim_cache(VictimCacheConfig::new(1 << rng.gen_range(0u32..5)).ok()?);
    }
    if rng.gen_bool(0.3) {
        l1b.way_prediction(if rng.gen_bool(0.5) {
            WayPrediction::Mru
        } else {
            WayPrediction::MultiColumn
        });
    }
    let l1 = l1b.build().ok()?;
    let mut b = SystemConfig::builder();
    b.cycle_time(CycleTime::from_ns(rng.gen_range(5u32..81)).ok()?)
        .way_slow_hit_cycles(rng.gen_range(0u64..4))
        .victim_swap_cycles(rng.gen_range(0u64..4))
        .l1_both(l1)
        .unified(rng.gen_bool(0.25))
        .dual_issue(rng.gen_bool(0.5))
        .early_continuation(rng.gen_bool(0.5))
        .memory(
            MemoryConfig::builder()
                .wb_depth(rng.gen_range(0u32..6))
                .build()
                .ok()?,
        );
    if rng.gen_bool(0.3) {
        b.translation(TranslationConfig::default());
    }
    if rng.gen_bool(0.5) {
        let l2 = CacheConfig::builder(CacheSize::from_kib(64).ok()?)
            .block(BlockWords::new(16).ok()?)
            .build()
            .ok()?;
        b.l2(LevelTwoConfig::new(l2));
    }
    b.build().ok()
}

fn gen_system(rng: &mut SplitMix64) -> SystemConfig {
    loop {
        // Rejection-sample the rare invalid combination.
        if let Some(config) = try_gen_system(rng) {
            return config;
        }
    }
}

/// Record-then-replay equals direct simulation, bit for bit, including a
/// random warm-start boundary.
#[test]
fn two_phase_equals_direct() {
    check(
        "two_phase_equals_direct",
        |rng| ((gen_system(rng), rng.gen_range(0usize..40)), gen_refs(rng)),
        shrink::pair_vec,
        |((config, warm_start), refs)| {
            // Shrinking the trace may leave warm_start past the end; clamp
            // as a trace loader would.
            let trace = Trace::new("prop", refs.clone(), (*warm_start).min(refs.len()));
            let direct = Simulator::new(config).run(&trace);
            let two_phase = simulate_two_phase(config, &trace);
            prop_assert_eq!(two_phase, direct);
            Ok(())
        },
    );
}
