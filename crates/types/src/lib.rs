//! Shared domain types for the `cachetime` cache-design simulator.
//!
//! This crate holds the small, widely shared vocabulary of the simulator:
//! word-granular addresses ([`WordAddr`]), memory references ([`MemRef`],
//! [`AccessKind`], [`Pid`]), size parameters ([`CacheSize`], [`BlockWords`],
//! [`Assoc`]) and time quantities ([`CycleTime`], [`Cycles`], [`Nanos`]).
//!
//! The conventions follow the paper *Performance Tradeoffs in Cache Design*
//! (Przybylski, Horowitz, Hennessy; ISCA 1988):
//!
//! * a **word** is 32 bits, and traces contain only word references;
//! * a **block** is the storage associated with one tag, measured in words;
//! * **set size** means degree of associativity;
//! * the memory system is synchronous to the cache clock, so all
//!   nanosecond-denominated latencies quantize to whole cycles via
//!   [`CycleTime::cycles_for`].
//!
//! # Examples
//!
//! ```
//! use cachetime_types::{CacheSize, BlockWords, CycleTime};
//!
//! let size = CacheSize::from_kib(64)?;
//! let block = BlockWords::new(4)?;
//! assert_eq!(size.blocks(block), 4096);
//!
//! // The paper's default: 180ns DRAM latency on a 40ns clock is 5 cycles.
//! let ct = CycleTime::from_ns(40)?;
//! assert_eq!(ct.cycles_for(180), 5);
//! # Ok::<(), cachetime_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod events;
mod hash;
mod json;
mod refs;
mod size;
mod time;

pub use addr::{BlockAddr, WordAddr, BYTES_PER_WORD};
pub use error::ConfigError;
pub use events::{AccessEvent, CoupletClass, EventOp, RefEvent, VictimBlock};
pub use hash::{stable_hash_of, StableHash, StableHasher};
pub use json::{json_object, Json, JsonError};
pub use refs::{AccessKind, MemRef, Pid};
pub use size::{Assoc, BlockWords, CacheSize};
pub use time::{CycleTime, Cycles, Nanos};
