//! Write-buffer edge cases the two-phase refactor must preserve.
//!
//! The timing replay re-executes the memory system's busy-until accounting
//! verbatim, so these behaviors are load-bearing for replay equivalence:
//! coalescing into the surviving tail of a partially drained buffer,
//! read-address matching that stalls only on genuinely stale words, and
//! FIFO drain ordering when back-to-back misses park multiple victims.
//!
//! All cycle numbers below are hand-derived from the paper-default memory
//! (180/100/120 ns, one word per cycle, 1 address cycle) at a 40 ns clock:
//! latency 5 cycles, write-op 3, recovery 3, so a 1-word drain holds the
//! bus for 2 cycles and busies the memory for 8, a 4-word drain for 5 and
//! 11.

use cachetime_mem::{FillRequest, MemoryConfig, MemorySystem};
use cachetime_types::{CycleTime, Pid, WordAddr};

fn mem_with(configure: impl FnOnce(&mut cachetime_mem::MemoryConfigBuilder)) -> MemorySystem {
    let mut b = MemoryConfig::builder();
    configure(&mut b);
    MemorySystem::new(&b.build().expect("valid config"), CycleTime::from_ns(40).unwrap())
}

fn fill(addr: u64, words: u32) -> FillRequest {
    FillRequest {
        pid: Pid(0),
        addr: WordAddr::new(addr),
        words,
        victim: None,
    }
}

/// A word write must still coalesce into the tail entry after `catch_up`
/// has drained the entries ahead of it — a partially drained buffer is the
/// steady state between misses, not a special case.
#[test]
fn coalesce_into_partially_drained_buffer() {
    // Paper default: depth 4, coalescing on, 32-cycle drain delay.
    let mut mem = mem_with(|_| {});

    // Two word writes into distinct 16-word coalescing regions.
    assert_eq!(mem.write_word(0, Pid(0), WordAddr::new(10)), 0);
    assert_eq!(mem.write_word(0, Pid(0), WordAddr::new(100)), 0);
    assert_eq!(mem.pending_writes(), 2);

    // At cycle 36 the head entry is past its 32-cycle aging window and the
    // memory is idle, so it retires (launch backdated to 32, bus 32..34,
    // busy until 40); the second entry must wait for that recovery and
    // survives. The new write lands in the survivor's region and coalesces
    // instead of allocating a third entry.
    assert_eq!(mem.write_word(36, Pid(0), WordAddr::new(101)), 36);
    assert_eq!(mem.pending_writes(), 1, "head drained, tail coalesced");
    assert_eq!(mem.stats().writes, 1);
    assert_eq!(mem.stats().write_words, 1);
    assert_eq!(mem.stats().coalesced_writes, 1);

    // The coalesced entry drains as one 2-word operation: launch at 40
    // (when the head's recovery ends), bus 40..43, busy until 49.
    assert_eq!(mem.drain_all(36), 49);
    assert_eq!(mem.stats().writes, 2);
    assert_eq!(mem.stats().write_words, 3);
}

/// Reads stall only on a true stale-data match: a fetch overlapping a word
/// entry's 16-word coalescing region — but not any *written* word — and a
/// fetch matching the address under a different process both proceed at
/// full speed. Only the same-process fetch of the written word drains the
/// buffer first.
#[test]
fn read_match_stalls_only_on_stale_words() {
    let mut mem = mem_with(|_| {});
    mem.write_word(0, Pid(0), WordAddr::new(8)); // region [0, 16), word 8

    // Fetch [12, 16): inside the coalescing region, but none of those
    // words are pending — identical timing to an empty buffer (start 1,
    // data at 7, done 11).
    let clean = mem.fill_grant(1, fill(12, 4));
    let mut fresh = mem_with(|_| {});
    assert_eq!(clean, fresh.fill_grant(1, fill(12, 4)), "no written word, no stall");
    assert_eq!(mem.stats().read_match_stalls, 0);
    assert_eq!(mem.pending_writes(), 1);

    // Fetch [8, 12) as another process: addresses are per-process virtual,
    // so the pending word is not this process's data. No stall; the fill
    // only queues behind the previous fill's recovery (start 14, done 24).
    let other = mem.fill_grant(
        12,
        FillRequest {
            pid: Pid(1),
            addr: WordAddr::new(8),
            words: 4,
            victim: None,
        },
    );
    assert_eq!(other.done, 24);
    assert_eq!(mem.stats().read_match_stalls, 0);
    assert_eq!(mem.pending_writes(), 1);

    // Fetch [8, 12) as the writing process: word 8 is stale in memory, so
    // the write drains first (launch 27, bus until 29, recovery until 35)
    // and the read waits: data at 41, done 45 — versus 37 unstalled.
    let stalled = mem.fill_grant(25, fill(8, 4));
    assert_eq!(stalled.done, 45);
    assert_eq!(mem.stats().read_match_stalls, 1);
    assert_eq!(mem.pending_writes(), 0, "matched write forced out");
}

/// Back-to-back dirty misses park their victims in FIFO order, fills are
/// not delayed by parked victims (read priority), and a read match forces
/// out the matched entry *and everything ahead of it* — in order, each
/// drain waiting out the previous one's recovery.
#[test]
fn fifo_drain_ordering_under_back_to_back_misses() {
    // Long drain delay so victims only leave via read matches; the
    // ordering is then observable through which addresses still match.
    let mut mem = mem_with(|b| {
        b.wb_drain_delay(1000);
    });
    let dirty = |addr: u64, victim: u64| FillRequest {
        pid: Pid(0),
        addr: WordAddr::new(addr),
        words: 4,
        victim: Some((WordAddr::new(victim), 4)),
    };

    // Three misses in a row, each displacing a dirty block. Each victim
    // moves into the buffer during the fetch latency (one word per cycle
    // from `start`), never delaying the fetch itself.
    let g1 = mem.fill_grant(0, dirty(16, 1000));
    assert_eq!((g1.ready, g1.done), (6, 10), "victim move (0..4) hides under latency");
    let g2 = mem.fill_grant(11, dirty(32, 2000));
    assert_eq!((g2.ready, g2.done), (19, 23), "fill queues on recovery, not on victims");
    let g3 = mem.fill_grant(24, dirty(48, 3000));
    assert_eq!((g3.ready, g3.done), (32, 36));
    assert_eq!(mem.pending_writes(), 3);
    assert_eq!(mem.stats().read_match_stalls, 0);

    // Re-fetch the *second* victim: FIFO forces the first out ahead of it.
    // The drains serialize through recovery — v1 on the bus 40..45 (busy
    // to 51), v2 waits and runs 51..56 (busy to 62) — then the read issues
    // at 62: data at 68, done 72.
    let g4 = mem.fill_grant(40, fill(2000, 4));
    assert_eq!(g4.done, 72);
    assert_eq!(mem.stats().read_match_stalls, 1);
    assert_eq!(mem.pending_writes(), 1, "v1 and v2 out, v3 still parked");
    assert_eq!(mem.stats().write_words, 8);

    // The first victim is gone (it drained *ahead* of the second): its
    // address no longer matches anything.
    let g5 = mem.fill_grant(73, fill(1000, 4));
    assert_eq!(g5.done, 85);
    assert_eq!(mem.stats().read_match_stalls, 1, "v1 already drained, no stall");
    assert_eq!(mem.pending_writes(), 1);

    // The third victim is still there and still matches.
    let g6 = mem.fill_grant(86, fill(3000, 4));
    assert_eq!(g6.done, 109);
    assert_eq!(mem.stats().read_match_stalls, 2);
    assert_eq!(mem.pending_writes(), 0);
    assert_eq!(mem.stats().write_words, 12);
}
