//! Property tests for startup recovery: arbitrary mixes of intact,
//! truncated, bit-flipped, foreign-magic, duplicate-key, and garbage
//! segment files must never panic the scan, must quarantine exactly the
//! corrupt set, and must leave the counters balanced.

use cachetime::{keyed, EventTrace, SystemConfig};
use cachetime_disk::{segment, DiskConfig, SegmentStore};
use cachetime_testkit::{check, shrink, SplitMix64};
use cachetime_trace::catalog;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cachetime-disk-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pool of real recorded traces (recording is the slow part, so it
/// happens once; the per-case work is file mangling).
fn trace_pool() -> &'static Vec<(u64, EventTrace)> {
    static POOL: OnceLock<Vec<(u64, EventTrace)>> = OnceLock::new();
    POOL.get_or_init(|| {
        let org = SystemConfig::paper_default().unwrap().organization();
        (0..4)
            .map(|i| keyed::record(&org, &catalog::mu3(0.004 + i as f64 * 0.001)))
            .collect()
    })
}

/// One file the generator plants in the data directory.
#[derive(Debug, Clone)]
enum Planted {
    /// A fully valid segment of pool trace `ix`.
    Intact { ix: usize },
    /// A valid segment truncated to `keep` bytes.
    Truncated { ix: usize, keep: usize },
    /// A valid segment with one bit flipped at `offset`.
    BitFlipped { ix: usize, offset: usize },
    /// A correct-length file whose first bytes are not the magic.
    ForeignMagic { ix: usize },
    /// A valid segment of trace `ix` written under a *different* trace's
    /// file name (a duplicate-key copy: the content key inside does not
    /// match the name).
    DuplicateKey { ix: usize, name_ix: usize },
    /// Random bytes under a `.seg`-shaped name that is not a pool key.
    Garbage { seed: u64, len: usize },
}

/// Plants the files and returns how many distinct *intact* pool keys
/// ended up with a valid segment (duplicates of the same key collapse:
/// one file name per key) and how many corrupt files were planted.
fn plant(root: &PathBuf, files: &[Planted]) -> (usize, usize) {
    std::fs::create_dir_all(root).unwrap();
    let pool = trace_pool();
    let sealed: Vec<Vec<u8>> = pool
        .iter()
        .map(|(key, trace)| segment::seal(*key, &cachetime::codec::encode(trace)))
        .collect();
    let name_of = |ix: usize| format!("{:016x}.seg", pool[ix].0);
    let mut intact: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut corrupt = 0usize;
    for file in files {
        match file {
            Planted::Intact { ix } => {
                std::fs::write(root.join(name_of(*ix)), &sealed[*ix]).unwrap();
                intact.insert(*ix);
            }
            Planted::Truncated { ix, keep } => {
                let keep = *keep % sealed[*ix].len();
                // An honest truncation: if nothing survives there is no
                // file at all, which is the crash case rename prevents.
                std::fs::write(root.join(name_of(*ix)), &sealed[*ix][..keep]).unwrap();
                intact.remove(ix);
                corrupt += 1;
            }
            Planted::BitFlipped { ix, offset } => {
                let mut bytes = sealed[*ix].clone();
                let offset = *offset % bytes.len();
                bytes[offset] ^= 1;
                std::fs::write(root.join(name_of(*ix)), bytes).unwrap();
                intact.remove(ix);
                corrupt += 1;
            }
            Planted::ForeignMagic { ix } => {
                let mut bytes = sealed[*ix].clone();
                bytes[..8].copy_from_slice(b"NOTASEG!");
                std::fs::write(root.join(name_of(*ix)), bytes).unwrap();
                intact.remove(ix);
                corrupt += 1;
            }
            Planted::DuplicateKey { ix, name_ix } => {
                if name_ix == ix {
                    // Same name and key: actually an intact segment.
                    std::fs::write(root.join(name_of(*ix)), &sealed[*ix]).unwrap();
                    intact.insert(*ix);
                } else {
                    std::fs::write(root.join(name_of(*name_ix)), &sealed[*ix]).unwrap();
                    intact.remove(name_ix);
                    corrupt += 1;
                }
            }
            Planted::Garbage { seed, len } => {
                let mut rng = SplitMix64::from_seed(*seed);
                let mut bytes = vec![0u8; *len];
                rng.fill(&mut bytes);
                let name = format!("{:016x}.seg", rng.next_u64());
                std::fs::write(root.join(name), bytes).unwrap();
                corrupt += 1;
            }
        }
    }
    (intact.len(), corrupt)
}

#[test]
fn recovery_quarantines_exactly_the_corrupt_set() {
    let pool_len = trace_pool().len();
    check(
        "recovery_quarantines_exactly_the_corrupt_set",
        |rng| {
            let n = rng.gen_range(0..8usize);
            (0..n)
                .map(|_| {
                    let ix = rng.gen_range(0..pool_len);
                    match rng.gen_range(0..6u32) {
                        0 => Planted::Intact { ix },
                        1 => Planted::Truncated {
                            ix,
                            keep: rng.gen_range(0..4096usize),
                        },
                        2 => Planted::BitFlipped {
                            ix,
                            offset: rng.gen_range(0usize..1 << 20),
                        },
                        3 => Planted::ForeignMagic { ix },
                        4 => Planted::DuplicateKey {
                            ix,
                            name_ix: rng.gen_range(0..pool_len),
                        },
                        _ => Planted::Garbage {
                            seed: rng.next_u64(),
                            len: rng.gen_range(0..2048usize),
                        },
                    }
                })
                .collect::<Vec<_>>()
        },
        shrink::vec_linear,
        |files| {
            // Later plants overwrite earlier ones at the same name; keep
            // only the last file per name so the oracle matches the
            // filesystem. plant() handles this via its intact set, but
            // only when corruption follows intactness; normalize by
            // replaying names here.
            let mut last: std::collections::BTreeMap<String, Planted> =
                std::collections::BTreeMap::new();
            let pool = trace_pool();
            for f in files {
                let name = match f {
                    Planted::Intact { ix }
                    | Planted::Truncated { ix, .. }
                    | Planted::BitFlipped { ix, .. }
                    | Planted::ForeignMagic { ix } => format!("{:016x}.seg", pool[*ix].0),
                    Planted::DuplicateKey { name_ix, .. } => {
                        format!("{:016x}.seg", pool[*name_ix].0)
                    }
                    Planted::Garbage { seed, .. } => format!("garbage-{seed}"),
                };
                last.insert(name, f.clone());
            }
            let deduped: Vec<Planted> = last.into_values().collect();

            let root = scratch();
            let (intact, corrupt) = plant(&root, &deduped);
            let store = SegmentStore::open(DiskConfig {
                root: root.clone(),
                budget_bytes: 0,
                quarantine_cap_bytes: 0,
            })
            .map_err(|e| e.to_string())?;
            let mut recovered = Vec::new();
            let report = store
                .scan(|key, trace| recovered.push((key, trace)))
                .map_err(|e| e.to_string())?;
            let _ = std::fs::remove_dir_all(&root);

            if report.recovered != intact as u64 {
                return Err(format!(
                    "recovered {} segments, expected {intact}",
                    report.recovered
                ));
            }
            if report.quarantined != corrupt as u64 {
                return Err(format!(
                    "quarantined {} files, expected {corrupt}",
                    report.quarantined
                ));
            }
            if store.segments() != intact as u64 {
                return Err(format!(
                    "index holds {} segments, expected {intact}",
                    store.segments()
                ));
            }
            // Every recovered trace must be bit-identical to its source.
            for (key, trace) in &recovered {
                let (_, original) = pool
                    .iter()
                    .find(|(k, _)| k == key)
                    .ok_or_else(|| format!("recovered unknown key {key:016x}"))?;
                if trace != original {
                    return Err(format!("trace {key:016x} not bit-identical"));
                }
            }
            // Counters balance: every planted file is accounted exactly
            // once across recovered + quarantined.
            if report.recovered + report.quarantined != deduped.len() as u64 {
                return Err(format!(
                    "{} files planted but {} recovered + {} quarantined",
                    deduped.len(),
                    report.recovered,
                    report.quarantined
                ));
            }
            Ok(())
        },
    );
}
