//! The parallel sweep executor against the real simulator: results must
//! be bit-identical regardless of worker count, and failures must name
//! the offending configuration.

use cachetime::{simulate, sweep, SimResult, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_trace::catalog;
use cachetime_types::{CacheSize, CycleTime};

/// A Figure 3-1-style grid point: total cache size × cycle time.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    size_kib: u64,
    ct_ns: u32,
}

fn grid() -> Vec<GridPoint> {
    let mut points = Vec::new();
    for size_kib in [1, 2, 4, 8] {
        for ct_ns in [30, 40, 50] {
            points.push(GridPoint { size_kib, ct_ns });
        }
    }
    points
}

fn simulate_point(p: &GridPoint, trace: &cachetime_trace::Trace) -> SimResult {
    let l1 = CacheConfig::builder(CacheSize::from_kib(p.size_kib).expect("pow2"))
        .build()
        .expect("valid cache");
    let config = SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(p.ct_ns).expect("nonzero"))
        .l1_both(l1)
        .build()
        .expect("valid system");
    simulate(&config, trace)
}

/// The executor's core contract: any worker count produces the same
/// results in the same order as a serial run.
#[test]
fn job_count_never_changes_grid_results() {
    let trace = catalog::mu3(0.01).generate();
    let points = grid();
    let serial = sweep::run(&points, 1, |_, p| simulate_point(p, &trace))
        .expect("serial sweep succeeds");
    for jobs in [2, 3, 8, 0] {
        let parallel = sweep::run(&points, jobs, |_, p| simulate_point(p, &trace))
            .expect("parallel sweep succeeds");
        assert_eq!(
            serial.results, parallel.results,
            "results diverged at jobs={jobs}"
        );
    }
    // Per-task timing is recorded for every task.
    assert_eq!(serial.task_times.len(), points.len());
}

#[test]
fn empty_sweep_is_empty() {
    let tasks: Vec<GridPoint> = Vec::new();
    let run = sweep::run(&tasks, 4, |_, p| {
        let trace = catalog::mu3(0.01).generate();
        simulate_point(p, &trace)
    })
    .expect("empty sweep succeeds");
    assert!(run.results.is_empty());
    assert!(run.task_times.is_empty());
}

/// A panicking task surfaces as an error carrying the offending
/// configuration's Debug rendering, not a poisoned hang or a torn
/// result vector.
#[test]
fn panicking_task_names_its_config() {
    let trace = catalog::mu3(0.01).generate();
    let points = grid();
    let err = sweep::run(&points, 4, |i, p| {
        if p.size_kib == 4 && p.ct_ns == 40 {
            panic!("injected failure at task {i}");
        }
        simulate_point(p, &trace)
    })
    .expect_err("sweep must report the panic");
    assert_eq!(err.failures.len(), 1);
    let failure = &err.failures[0];
    assert!(
        failure.task.contains("size_kib: 4") && failure.task.contains("ct_ns: 40"),
        "failure must name the config, got: {}",
        failure.task
    );
    assert!(
        failure.message.contains("injected failure"),
        "panic payload must survive, got: {}",
        failure.message
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains("size_kib: 4"),
        "Display must include the config: {rendered}"
    );
}
