//! Associativity-threshold study: where does 2-way stop paying, and how
//! do organization features move the threshold?
//!
//! The paper's §4 tradeoff prices associativity in *cycle time*: the wider
//! tag mux and compare path slow every access, so a set-associative cache
//! runs on a degraded clock (one grid step, 44 ns vs 40 ns). On the
//! eight-trace workload that tax never pays — conflict-miss savings peak
//! near 2 ns/ref while the tax costs 3–10 ns/ref — which is the paper-era
//! case for direct-mapped caches. The organization features reopen the
//! question from both sides:
//!
//! * **Way prediction** serves predicted hits on the direct-mapped
//!   critical path, so a predicted set-associative cache keeps the 40 ns
//!   clock and pays only
//!   [`way_slow_hit_cycles`](cachetime::SystemConfig::way_slow_hit_cycles)
//!   on the mispredicted remainder.
//! * A **victim cache** soaks the direct-mapped baseline's conflict
//!   misses at [`victim_swap_cycles`](cachetime::SystemConfig::victim_swap_cycles)
//!   apiece — and at small sizes its handful of entries is a meaningful
//!   capacity bonus on top.
//!
//! The threshold this study locates is the rivalry between the *best
//! direct-mapped organization* (victim-cache variants included) and each
//! predicted set-associative challenger. Below the crossover the victim
//! buffer keeps direct-mapped ahead; above it the challenger's full-cache
//! associativity wins against workloads whose power-of-two strides
//! conflict in a direct-mapped array at any size.

use crate::runner::{aggregate, TraceSet, SIZES_PER_CACHE_KB};
use cachetime::{simulate, sweep, SimResult, SystemConfig};
use cachetime_analysis::crossing;
use cachetime_analysis::table::Table;
use cachetime_cache::{CacheConfig, VictimCacheConfig, WayPrediction};
use cachetime_types::{Assoc, CacheSize, CycleTime};

/// The baseline clock (the paper grid's 40 ns column).
pub const BASE_CT_NS: u32 = 40;
/// The degraded clock a set-associative cache without way prediction runs
/// at: one grid step of cycle-time tax for the mux/compare path.
pub const ASSOC_CT_NS: u32 = 44;

/// One machine variant of the study.
#[derive(Debug, Clone, Copy)]
pub struct Variant {
    /// Display name (also the CSV key).
    pub name: &'static str,
    /// L1 associativity.
    pub assoc: u32,
    /// Way predictor, if any (keeps the clock at [`BASE_CT_NS`]).
    pub way_prediction: Option<WayPrediction>,
    /// Victim-buffer entries, if any.
    pub victim_entries: Option<u32>,
    /// Clock this variant runs at.
    pub ct_ns: u32,
}

impl Variant {
    /// Direct-mapped variants compete on the baseline's side of the
    /// threshold; set-associative ones are the challengers.
    pub fn is_direct_mapped(&self) -> bool {
        self.assoc == 1
    }
}

/// The study's canonical variant set. Index 0 is the plain direct-mapped
/// baseline every advantage curve is measured against.
pub const VARIANTS: [Variant; 6] = [
    Variant {
        name: "1-way",
        assoc: 1,
        way_prediction: None,
        victim_entries: None,
        ct_ns: BASE_CT_NS,
    },
    Variant {
        name: "2-way",
        assoc: 2,
        way_prediction: None,
        victim_entries: None,
        ct_ns: ASSOC_CT_NS,
    },
    Variant {
        name: "2-way+mru",
        assoc: 2,
        way_prediction: Some(WayPrediction::Mru),
        victim_entries: None,
        ct_ns: BASE_CT_NS,
    },
    Variant {
        name: "4-way+mc",
        assoc: 4,
        way_prediction: Some(WayPrediction::MultiColumn),
        victim_entries: None,
        ct_ns: BASE_CT_NS,
    },
    Variant {
        name: "1-way+v8",
        assoc: 1,
        way_prediction: None,
        victim_entries: Some(8),
        ct_ns: BASE_CT_NS,
    },
    Variant {
        name: "1-way+v32",
        assoc: 1,
        way_prediction: None,
        victim_entries: Some(32),
        ct_ns: BASE_CT_NS,
    },
];

/// The full [`SystemConfig`] of one variant at one per-cache size.
fn variant_config(v: &Variant, size_per_cache_kb: u64) -> SystemConfig {
    let mut b = CacheConfig::builder(CacheSize::from_kib(size_per_cache_kb).expect("power of two"));
    b.assoc(Assoc::new(v.assoc).expect("power of two"));
    if let Some(kind) = v.way_prediction {
        b.way_prediction(kind);
    }
    if let Some(entries) = v.victim_entries {
        b.victim_cache(VictimCacheConfig::new(entries).expect("in range"));
    }
    SystemConfig::builder()
        .l1_both(b.build().expect("valid cache"))
        .cycle_time(CycleTime::from_ns(v.ct_ns).expect("nonzero"))
        .build()
        .expect("valid system")
}

/// Per-feature behavioral ratios of one (variant, size) cell, combined
/// over both L1s and all traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureRatios {
    /// Predicted-way first hits / all way-predicted hits (0 without a
    /// predictor).
    pub way_first_hit_ratio: f64,
    /// Victim-buffer hits / L1 misses (0 without a victim buffer).
    pub victim_hit_ratio: f64,
}

/// Where one challenger's rivalry with the best direct-mapped
/// organization lands on the size axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// The challenger loses below this total-L1 size (KB) and wins above
    /// it — the associativity threshold proper.
    StopsPayingBelowKb(f64),
    /// The challenger wins below this size and loses above it (a clock
    /// tax that only small caches can absorb).
    StopsPayingAboveKb(f64),
    /// The challenger wins at every size on the grid.
    PaysEverywhere,
    /// The challenger loses at every size on the grid.
    PaysNowhere,
}

/// The computed study.
#[derive(Debug, Clone)]
pub struct ThresholdStudy {
    /// Total L1 sizes (both caches), KB.
    pub sizes_total_kb: Vec<u64>,
    /// The variants, in [`VARIANTS`] order; index 0 is the baseline.
    pub variants: Vec<Variant>,
    /// `time_per_ref[variant][size]`, nanoseconds (geomean over traces).
    pub time_per_ref: Vec<Vec<f64>>,
    /// `feature_ratios[variant][size]`.
    pub feature_ratios: Vec<Vec<FeatureRatios>>,
}

impl ThresholdStudy {
    /// The advantage curve of one variant: baseline minus variant time
    /// per reference, in ns (positive = the variant pays).
    pub fn advantage(&self, variant: usize) -> Vec<f64> {
        self.time_per_ref[0]
            .iter()
            .zip(&self.time_per_ref[variant])
            .map(|(base, v)| base - v)
            .collect()
    }

    /// The best direct-mapped execution time at each size: the plain
    /// baseline and every victim-cache variant, pointwise minimum.
    pub fn best_direct_mapped(&self) -> Vec<f64> {
        let mut best = self.time_per_ref[0].clone();
        for (vi, v) in self.variants.iter().enumerate() {
            if v.is_direct_mapped() {
                for (b, &t) in best.iter_mut().zip(&self.time_per_ref[vi]) {
                    *b = b.min(t);
                }
            }
        }
        best
    }

    /// The rivalry curve of a set-associative challenger: best
    /// direct-mapped time minus challenger time, in ns (positive = the
    /// challenger beats every direct-mapped organization).
    pub fn rivalry(&self, variant: usize) -> Vec<f64> {
        self.best_direct_mapped()
            .iter()
            .zip(&self.time_per_ref[variant])
            .map(|(dm, v)| dm - v)
            .collect()
    }

    /// Classifies a rivalry (or advantage) curve along the size axis.
    /// Crossings are interpolated on log2(size); when the curve wiggles
    /// through zero more than once, the endpoints decide the direction
    /// and the first crossing locates the threshold.
    pub fn threshold_of(&self, curve: &[f64]) -> Threshold {
        let has_pos = curve.iter().any(|&a| a > 0.0);
        let has_neg = curve.iter().any(|&a| a < 0.0);
        match (has_pos, has_neg) {
            (true, false) => return Threshold::PaysEverywhere,
            (false, _) => return Threshold::PaysNowhere,
            (true, true) => {}
        }
        let xs: Vec<f64> = self
            .sizes_total_kb
            .iter()
            .map(|&kb| (kb as f64).log2())
            .collect();
        let kb = crossing(&xs, curve, 0.0)
            .map(f64::exp2)
            .expect("a sign change has a crossing");
        if curve[0] < 0.0 {
            Threshold::StopsPayingBelowKb(kb)
        } else {
            Threshold::StopsPayingAboveKb(kb)
        }
    }

    /// [`threshold_of`](Self::threshold_of) the challenger's rivalry with
    /// the best direct-mapped organization.
    pub fn rivalry_threshold(&self, variant: usize) -> Threshold {
        self.threshold_of(&self.rivalry(variant))
    }
}

/// Runs the study over the paper's size axis.
pub fn run(traces: &TraceSet, jobs: usize) -> ThresholdStudy {
    run_over(traces, &SIZES_PER_CACHE_KB, &VARIANTS, jobs)
}

/// Runs the study over explicit axes (tests and the verify leg use a
/// shorter size axis).
pub fn run_over(
    traces: &TraceSet,
    sizes_per_cache_kb: &[u64],
    variants: &[Variant],
    jobs: usize,
) -> ThresholdStudy {
    // One task per (variant, size, trace); the variant set is tiny and
    // each cell is a single-clock simulation, so a flat fan-out beats the
    // record/replay split (there is no timing axis to amortize).
    let n_traces = traces.traces().len();
    let mut tasks = Vec::with_capacity(variants.len() * sizes_per_cache_kb.len() * n_traces);
    for (vi, _) in variants.iter().enumerate() {
        for &kb in sizes_per_cache_kb {
            for t in 0..n_traces {
                tasks.push((vi, kb, t));
            }
        }
    }
    let run = sweep::run(&tasks, jobs, |_idx, &(vi, kb, t)| {
        let config = variant_config(&variants[vi], kb);
        simulate(&config, &traces.traces()[t])
    })
    .expect("simulation does not panic");

    let mut time_per_ref = Vec::new();
    let mut feature_ratios = Vec::new();
    for (vi, _) in variants.iter().enumerate() {
        let mut row_t = Vec::new();
        let mut row_f = Vec::new();
        for (si, _) in sizes_per_cache_kb.iter().enumerate() {
            let base = (vi * sizes_per_cache_kb.len() + si) * n_traces;
            let cell: Vec<SimResult> = (0..n_traces).map(|t| run.results[base + t]).collect();
            row_t.push(aggregate(&cell).time_per_ref_ns);
            row_f.push(ratios_of(&cell));
        }
        time_per_ref.push(row_t);
        feature_ratios.push(row_f);
    }
    ThresholdStudy {
        sizes_total_kb: sizes_per_cache_kb.iter().map(|&kb| 2 * kb).collect(),
        variants: variants.to_vec(),
        time_per_ref,
        feature_ratios,
    }
}

fn ratios_of(cell: &[SimResult]) -> FeatureRatios {
    let mut first = 0u64;
    let mut slow = 0u64;
    let mut victim = 0u64;
    let mut misses = 0u64;
    for r in cell {
        for s in [&r.l1i, &r.l1d] {
            first += s.way_first_hits;
            slow += s.way_slow_hits;
            victim += s.victim_hits;
            misses += s.read_misses + s.write_misses;
        }
    }
    let div = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    FeatureRatios {
        way_first_hit_ratio: div(first, first + slow),
        victim_hit_ratio: div(victim, misses),
    }
}

fn threshold_line(subject: &str, rival: &str, t: Threshold) -> String {
    match t {
        Threshold::StopsPayingBelowKb(kb) => format!(
            "crossover: {subject} stops paying below ~{kb:.0}KB total L1 ({rival} wins there)\n"
        ),
        Threshold::StopsPayingAboveKb(kb) => format!(
            "crossover: {subject} stops paying above ~{kb:.0}KB total L1 ({rival} wins there)\n"
        ),
        Threshold::PaysEverywhere => {
            format!("crossover: {subject} pays across the whole grid (vs {rival})\n")
        }
        Threshold::PaysNowhere => {
            format!("crossover: {subject} never pays on this grid (vs {rival})\n")
        }
    }
}

/// Renders the advantage table plus one `crossover:` line per variant —
/// the lines `scripts/verify.sh` asserts on.
pub fn render(s: &ThresholdStudy) -> String {
    let mut headers = vec![
        "Total L1".to_string(),
        format!("{} ns/ref", s.variants[0].name),
    ];
    for v in &s.variants[1..] {
        headers.push(format!("{} adv ns", v.name));
    }
    headers.push("first-hit %".into());
    headers.push("victim-hit %".into());
    let mut t = Table::new(headers);
    for (j, &kb) in s.sizes_total_kb.iter().enumerate() {
        let mut row = vec![format!("{kb}KB"), format!("{:.2}", s.time_per_ref[0][j])];
        for vi in 1..s.variants.len() {
            row.push(format!("{:+.3}", self_adv(s, vi, j)));
        }
        // The per-size feature columns summarize the *featured* variants:
        // best first-hit ratio among predictors, best victim ratio among
        // victim variants (the table would be unreadable with one column
        // per variant per ratio; the CSV export keeps them all).
        let best_first = (0..s.variants.len())
            .filter(|&vi| s.variants[vi].way_prediction.is_some())
            .map(|vi| s.feature_ratios[vi][j].way_first_hit_ratio)
            .fold(0.0, f64::max);
        let best_victim = (0..s.variants.len())
            .filter(|&vi| s.variants[vi].victim_entries.is_some())
            .map(|vi| s.feature_ratios[vi][j].victim_hit_ratio)
            .fold(0.0, f64::max);
        row.push(format!("{:.1}", 100.0 * best_first));
        row.push(format!("{:.1}", 100.0 * best_victim));
        t.row(row);
    }
    let mut out = format!(
        "Associativity threshold: execution-time advantage over {} @ {}ns\n{t}",
        s.variants[0].name, s.variants[0].ct_ns
    );
    // Plain advantage verdicts vs the unfeatured baseline.
    for vi in 1..s.variants.len() {
        out.push_str(&threshold_line(
            s.variants[vi].name,
            s.variants[0].name,
            s.threshold_of(&s.advantage(vi)),
        ));
    }
    // The threshold proper: every set-associative challenger against the
    // best direct-mapped organization (victim variants included).
    for (vi, v) in s.variants.iter().enumerate() {
        if v.is_direct_mapped() {
            continue;
        }
        out.push_str(&threshold_line(
            v.name,
            "best direct-mapped org",
            s.rivalry_threshold(vi),
        ));
    }
    out
}

fn self_adv(s: &ThresholdStudy, vi: usize, j: usize) -> f64 {
    s.time_per_ref[0][j] - s.time_per_ref[vi][j]
}

/// CSV export: long form, one row per (variant, size).
pub fn to_csv(s: &ThresholdStudy) -> String {
    let mut t = Table::new([
        "variant",
        "assoc",
        "ct_ns",
        "total_kb",
        "time_per_ref_ns",
        "advantage_ns",
        "rivalry_ns",
        "way_first_hit_ratio",
        "victim_hit_ratio",
    ]);
    for (vi, v) in s.variants.iter().enumerate() {
        let rivalry = s.rivalry(vi);
        for (j, &kb) in s.sizes_total_kb.iter().enumerate() {
            t.row([
                v.name.to_string(),
                v.assoc.to_string(),
                v.ct_ns.to_string(),
                kb.to_string(),
                s.time_per_ref[vi][j].to_string(),
                self_adv(s, vi, j).to_string(),
                rivalry[j].to_string(),
                s.feature_ratios[vi][j].way_first_hit_ratio.to_string(),
                s.feature_ratios[vi][j].victim_hit_ratio.to_string(),
            ]);
        }
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_threshold_exists_and_the_features_drive_it() {
        let traces = TraceSet::quick();
        // The small end (the victim buffer is a capacity bonus) through
        // the large end (persistent stride conflicts): enough of the axis
        // to see both regimes.
        let study = run_over(&traces, &[2, 8, 32, 256, 2048], &VARIANTS, 0);

        // The full one-grid-step mux tax never pays: the paper-era case
        // for direct-mapped caches.
        let adv_2way = study.advantage(1);
        assert!(
            adv_2way.iter().all(|&a| a < 0.0),
            "clock-taxed 2-way must lose everywhere: {adv_2way:?}"
        );
        assert_eq!(study.threshold_of(&adv_2way), Threshold::PaysNowhere);

        // The threshold proper: predicted 2-way loses to the best
        // direct-mapped org at 4KB total and beats it at 4MB.
        let rivalry = study.rivalry(2);
        assert!(
            rivalry[0] < 0.0,
            "victim-DM must win at 4KB total: {rivalry:?}"
        );
        assert!(
            *rivalry.last().unwrap() > 0.0,
            "predicted 2-way must win at 4MB total: {rivalry:?}"
        );
        match study.rivalry_threshold(2) {
            Threshold::StopsPayingBelowKb(kb) => {
                assert!(kb > 4.0 && kb < 4096.0, "threshold at {kb}KB")
            }
            other => panic!("expected a lower threshold, got {other:?}"),
        }

        // Featured cells actually exercised their features.
        let last = study.feature_ratios[2].last().unwrap();
        assert!(last.way_first_hit_ratio > 0.5, "{last:?}");
        let v8 = study.feature_ratios[4][0];
        assert!(v8.victim_hit_ratio > 0.0, "victim buffer never hit");
        // The victim variants lift the direct-mapped side above the plain
        // baseline at the small end.
        assert!(study.advantage(4)[0] > 0.0, "v8 must pay at 4KB total");

        // Render mentions the crossover for the verify leg to grep.
        let text = render(&study);
        assert!(
            text.contains("crossover: 2-way+mru stops paying below ~"),
            "{text}"
        );
    }

    #[test]
    fn job_count_does_not_change_the_study() {
        let traces = TraceSet::generate(0.005);
        let serial = run_over(&traces, &[2, 16], &VARIANTS[..3], 1);
        let parallel = run_over(&traces, &[2, 16], &VARIANTS[..3], 4);
        assert_eq!(serial.time_per_ref, parallel.time_per_ref);
    }
}
