//! `/v1/metrics` ⇄ `/v1/stats` consistency over real sockets.
//!
//! Both endpoints render the *same atomics* (the `App`'s registry hands
//! the identical `Arc`s to `ServerStats`/`StoreMetrics` and to the
//! Prometheus renderer), so after any workload — including errors,
//! panics, and coalesced recordings — the two scrapes must bit-match.

use cachetime_serve::client::HttpClient;
use cachetime_serve::fault::FaultPlan;
use cachetime_serve::{serve_with_app, App, ServerConfig};
use cachetime_types::Json;
use std::sync::{Arc, Barrier};

/// The value of one sample line (`<series> <value>`) in a Prometheus
/// text exposition. Panics if the series is missing — a scrape that
/// silently drops a family must fail the test, not skip it.
fn prom(text: &str, series: &str) -> i64 {
    for line in text.lines() {
        if let Some((name, value)) = line.rsplit_once(' ') {
            if name == series {
                return value
                    .parse()
                    .unwrap_or_else(|e| panic!("series {series} not an integer ({e}): {line}"));
            }
        }
    }
    panic!("series {series} missing from exposition:\n{text}");
}

#[test]
fn metrics_and_stats_bit_match_after_a_mixed_workload() {
    let app = Arc::new(
        App::new(64 * 1024 * 1024).with_faults(FaultPlan::inert().panic_once("serve.handle")),
    );
    let handle = serve_with_app(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..Default::default()
        },
        Arc::clone(&app),
    )
    .expect("bind an ephemeral port");
    let addr = handle.local_addr().to_string();

    // The armed fault: the first request panics in the handler → 500,
    // so the panic counter has something to disagree about.
    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 500, "{body}");

    // Cold + warm simulate, a replay hit, an unknown-key replay (404),
    // and a malformed body (400).
    let mut client = HttpClient::connect(&addr).unwrap();
    let sim_body = r#"{"trace": {"name": "mu3", "scale": 0.004}}"#;
    let (status, body) = client.post("/v1/simulate", sim_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let key = Json::parse(&body).unwrap().get("key").and_then(Json::as_str).unwrap().to_string();
    let (status, _) = client.post("/v1/simulate", sim_body).unwrap();
    assert_eq!(status, 200);
    let replay_body = format!(r#"{{"key": "{key}", "cycle_times_ns": [40, 80]}}"#);
    let (status, body) = client.post("/v1/replay", &replay_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, _) = client
        .post("/v1/replay", r#"{"key": "ffffffffffffffff", "cycle_times_ns": [40]}"#)
        .unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.post("/v1/simulate", "{not json").unwrap();
    assert_eq!(status, 400);

    // Concurrent cold simulates on one fresh trace so the single-flight
    // path (coalesced waits, in-flight recording gauge) contributes.
    const CLIENTS: usize = 3;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(&addr).unwrap();
                barrier.wait();
                let (status, body) = c
                    .post("/v1/simulate", r#"{"trace": {"name": "savec", "scale": 0.003}}"#)
                    .unwrap();
                assert_eq!(status, 200, "{body}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Back-to-back scrapes. Nothing between them touches the store or
    // the error counters, so every compared family is scrape-stable.
    // (Both scrapes self-count in the in-flight gauge: each sees 1.)
    let (status, stats_body) = client.get("/v1/stats").unwrap();
    assert_eq!(status, 200);
    let (status, metrics_body) = client.get("/v1/metrics").unwrap();
    assert_eq!(status, 200, "{metrics_body}");

    let stats = Json::parse(&stats_body).unwrap();
    let store = stats.get("store").unwrap();
    let server = stats.get("server").unwrap();
    let field = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap() as i64;

    for (json_value, series) in [
        (field(store, "hits"), "cachetime_store_hits_total"),
        (field(store, "misses"), "cachetime_store_misses_total"),
        (field(store, "coalesced"), "cachetime_store_coalesced_total"),
        (field(store, "evictions"), "cachetime_store_evictions_total"),
        (field(store, "entries"), "cachetime_store_entries"),
        (field(store, "bytes"), "cachetime_store_bytes"),
        (field(store, "recordings_in_flight"), "cachetime_store_recordings_in_flight"),
        (field(server, "errors"), "cachetime_server_errors_total"),
        (field(server, "shed"), "cachetime_server_shed_total"),
        (field(server, "timeouts"), "cachetime_server_timeouts_total"),
        (field(server, "panics"), "cachetime_server_panics_total"),
        (field(server, "in_flight"), "cachetime_server_in_flight"),
    ] {
        assert_eq!(
            prom(&metrics_body, series),
            json_value,
            "{series} drifted between /v1/metrics and /v1/stats"
        );
    }
    let degraded = server.get("degraded").and_then(Json::as_bool).unwrap();
    assert_eq!(prom(&metrics_body, "cachetime_server_degraded"), degraded as i64);

    // Absolute spot checks: the workload above fixes these exactly.
    assert_eq!(field(store, "misses"), 2, "mu3 and savec each recorded once");
    assert_eq!(field(server, "panics"), 1);
    assert_eq!(field(server, "errors"), 3, "500 + 404 + 400");
    assert_eq!(field(server, "shed"), 0);
    assert_eq!(field(server, "timeouts"), 0);

    // Latency histograms: per-endpoint counts agree between the JSON
    // report and the Prometheus `_count` samples, and the `+Inf` bucket
    // equals the count (cumulative rendering is complete).
    let latency = stats.get("latency").unwrap();
    for endpoint in ["simulate", "replay"] {
        let json_count = field(latency.get(endpoint).unwrap(), "count");
        let count = prom(
            &metrics_body,
            &format!("cachetime_request_duration_us_count{{endpoint=\"{endpoint}\"}}"),
        );
        let inf = prom(
            &metrics_body,
            &format!("cachetime_request_duration_us_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}}"),
        );
        assert_eq!(count, json_count, "{endpoint} count drifted");
        assert_eq!(inf, count, "{endpoint} +Inf bucket must equal the count");
    }
    assert!(
        prom(&metrics_body, "cachetime_request_duration_us_count{endpoint=\"simulate\"}") >= 6,
        "3 sequential + 3 concurrent simulate requests"
    );

    // Exposition hygiene: typed families, integer samples, no NaN.
    for ty in [
        "# TYPE cachetime_store_hits_total counter",
        "# TYPE cachetime_server_in_flight gauge",
        "# TYPE cachetime_request_duration_us histogram",
    ] {
        assert!(metrics_body.contains(ty), "missing {ty:?} in:\n{metrics_body}");
    }
    assert!(!metrics_body.contains("NaN"), "{metrics_body}");

    handle.shutdown();
    handle.join();
}

/// The `cachetime_fleet_*` families over a real socket: all six are
/// present on an idle fleet member (eager registration — dashboards see
/// zeros, not holes), and after a rebalance pull the peer-fetch
/// histogram carries an OpenMetrics exemplar naming the transferred
/// segment on its bucket line.
#[test]
fn fleet_families_expose_exemplars_over_a_socket() {
    use cachetime_serve::client::{ClientConfig, FleetClient};
    use cachetime_serve::FleetConfig;

    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "cachetime-metrics-fleet-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let roots = [scratch("donor"), scratch("adopter")];
    let addrs: Vec<String> = {
        let held: Vec<_> = (0..2)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        held.iter().map(|l| l.local_addr().unwrap().to_string()).collect()
    };
    let start = |ix: usize| {
        let disk = cachetime_disk::SegmentStore::open(cachetime_disk::DiskConfig {
            root: roots[ix].clone(),
            budget_bytes: 0,
            quarantine_cap_bytes: 0,
        })
        .unwrap();
        let app = App::new(usize::MAX)
            .with_disk(disk)
            .with_fleet(FleetConfig {
                peers: addrs.clone(),
                self_addr: addrs[ix].clone(),
                replication: 2,
                client: ClientConfig::default(),
            })
            .unwrap();
        serve_with_app(
            ServerConfig {
                addr: addrs[ix].clone(),
                workers: 2,
                ..Default::default()
            },
            Arc::new(app),
        )
        .unwrap()
    };
    let donor = start(0);
    let adopter = start(1);

    // Idle members already expose every fleet family, zero-valued.
    let mut fleet = FleetClient::new(addrs.clone(), ClientConfig::default()).unwrap();
    let (status, idle) = fleet.request_on(1, "GET", "/v1/metrics", "").unwrap();
    assert_eq!(status, 200, "{idle}");
    for series in [
        "cachetime_fleet_rebalance_total",
        "cachetime_fleet_segments_pulled_total",
        "cachetime_fleet_segments_dropped_total",
        "cachetime_fleet_transfers_rejected_total",
        "cachetime_fleet_fetch_failures_total",
    ] {
        assert_eq!(prom(&idle, series), 0, "idle scrape must carry {series}");
    }
    assert_eq!(prom(&idle, "cachetime_fleet_peer_fetch_us_count"), 0);

    // Record one pairing on the donor, then pull it over via rebalance.
    let (status, body) = fleet
        .request_on(0, "POST", "/v1/simulate", r#"{"trace": {"name": "mu3", "scale": 0.004}}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let key = Json::parse(&body).unwrap().get("key").and_then(Json::as_str).unwrap().to_string();
    let (status, body) = fleet.request_on(1, "POST", "/v1/rebalance", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let report = Json::parse(&body).unwrap();
    assert_eq!(report.get("pulled").and_then(Json::as_u64), Some(1), "{body}");

    // The pull shows up in the counters, and exactly one peer-fetch
    // bucket line carries the pulled segment's key as its exemplar.
    let (status, scraped) = fleet.request_on(1, "GET", "/v1/metrics", "").unwrap();
    assert_eq!(status, 200, "{scraped}");
    assert_eq!(prom(&scraped, "cachetime_fleet_rebalance_total"), 1);
    assert_eq!(prom(&scraped, "cachetime_fleet_segments_pulled_total"), 1);
    assert_eq!(prom(&scraped, "cachetime_fleet_peer_fetch_us_count"), 1);
    let exemplar_lines: Vec<&str> = scraped
        .lines()
        .filter(|l| {
            l.starts_with("cachetime_fleet_peer_fetch_us_bucket{le=")
                && l.contains(&format!(" # {{key=\"{key}\"}} "))
        })
        .collect();
    assert_eq!(
        exemplar_lines.len(),
        1,
        "exactly one bucket carries the exemplar:\n{scraped}"
    );

    for h in [donor, adopter] {
        h.shutdown();
        h.join();
    }
    for root in &roots {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// `?family=<prefix>` narrows the exposition to matching families over a
/// real socket; a misspelled parameter is a 400, not a full-size scrape.
#[test]
fn metrics_family_filter_over_a_socket() {
    let app = Arc::new(App::new(64 * 1024 * 1024));
    let handle = serve_with_app(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..Default::default()
        },
        Arc::clone(&app),
    )
    .expect("bind an ephemeral port");
    let addr = handle.local_addr().to_string();

    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, body) = client
        .post("/v1/simulate", r#"{"trace": {"name": "mu3", "scale": 0.004}}"#)
        .unwrap();
    assert_eq!(status, 200, "{body}");

    // The filtered scrape carries the store families and nothing else.
    let (status, filtered) = client.get("/v1/metrics?family=cachetime_store_").unwrap();
    assert_eq!(status, 200, "{filtered}");
    assert!(
        filtered.contains("cachetime_store_misses_total"),
        "{filtered}"
    );
    for line in filtered.lines() {
        let name = line.strip_prefix("# TYPE ").unwrap_or(line);
        assert!(
            name.starts_with("cachetime_store_"),
            "family leaked past the filter: {line}"
        );
    }
    // The filtered payload is a strict subset of the full scrape.
    let (_, full) = client.get("/v1/metrics").unwrap();
    assert!(full.len() > filtered.len());
    for line in filtered.lines() {
        assert!(full.contains(line), "filtered-only line: {line}");
    }

    // No filter and an empty filter are the whole exposition.
    let (status, empty_filter) = client.get("/v1/metrics?family=").unwrap();
    assert_eq!(status, 200);
    assert_eq!(empty_filter.lines().count(), full.lines().count());

    // An unmatched prefix is an empty-but-valid exposition, not an error.
    let (status, none) = client.get("/v1/metrics?family=nonesuch_").unwrap();
    assert_eq!(status, 200);
    assert!(none.is_empty(), "{none}");

    // A misspelled parameter must not silently return the full payload.
    let (status, body) = client.get("/v1/metrics?fam=oops").unwrap();
    assert_eq!(status, 400, "{body}");

    handle.shutdown();
    handle.join();
}
