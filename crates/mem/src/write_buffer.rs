//! The write-buffer queue: bounded FIFO entries with address matching.
//!
//! "Write buffers are included between every level of the modeled system.
//! … The write buffers check the addresses of reads to make sure that the
//! fetched data is not stale. In the case of a match, the read is delayed
//! until the write propagates out of the buffer and into the next level of
//! the hierarchy." (paper, section 2)
//!
//! [`WriteBuffer`] is a passive data structure: *when* entries drain is
//! decided by its owner ([`MemorySystem`](crate::MemorySystem) for the last
//! level, the hierarchy engine for inter-cache buffers), which keeps the
//! drain-scheduling policy next to the resource being scheduled.

use cachetime_types::{Pid, WordAddr};
use std::collections::VecDeque;

/// Maximum words coverable by a coalescing word-write entry (mask width).
const WORD_ENTRY_SPAN: u64 = 16;

/// What an entry carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbPayload {
    /// A whole victim block (write-back): `words` words transfer on drain.
    Block {
        /// Words in the block.
        words: u32,
    },
    /// Individual word writes within one aligned region, one mask bit per
    /// word; only the set words transfer on drain.
    Words {
        /// Bit `i` set means word `start + i` is pending.
        mask: u64,
    },
}

/// One pending downstream write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbEntry {
    /// Issuing process (virtual addresses are per-process).
    pub pid: Pid,
    /// First word of the region the entry covers.
    pub start: u64,
    /// Extent of the region in words (for overlap checks).
    pub span: u32,
    /// The data description.
    pub payload: WbPayload,
    /// Cycle at which the entry is fully inside the buffer and may start
    /// draining (a victim block arrives one word per cycle).
    pub ready_at: u64,
}

impl WbEntry {
    /// A whole-block write-back entry.
    pub fn block(pid: Pid, addr: WordAddr, words: u32, ready_at: u64) -> Self {
        WbEntry {
            pid,
            start: addr.value(),
            span: words,
            payload: WbPayload::Block { words },
            ready_at,
        }
    }

    /// A single-word write entry (region-aligned so later words can
    /// coalesce into it).
    pub fn word(pid: Pid, addr: WordAddr, ready_at: u64) -> Self {
        let start = addr.value() & !(WORD_ENTRY_SPAN - 1);
        WbEntry {
            pid,
            start,
            span: WORD_ENTRY_SPAN as u32,
            payload: WbPayload::Words {
                mask: 1u64 << (addr.value() - start),
            },
            ready_at,
        }
    }

    /// Words this entry transfers when it drains.
    #[inline]
    pub fn words(&self) -> u32 {
        match self.payload {
            WbPayload::Block { words } => words,
            WbPayload::Words { mask } => mask.count_ones(),
        }
    }

    /// Whether the entry holds pending data inside `[start, start + words)`
    /// of the same process. For word entries only the actually written
    /// words match — the surrounding coalescing region is not stale data.
    #[inline]
    pub fn overlaps(&self, pid: Pid, start: u64, words: u32) -> bool {
        if self.pid != pid
            || self.start >= start + words as u64
            || start >= self.start + self.span as u64
        {
            return false;
        }
        match self.payload {
            WbPayload::Block { .. } => true,
            WbPayload::Words { mask } => {
                let lo = start.saturating_sub(self.start).min(self.span as u64) as u32;
                let hi = (start + words as u64 - self.start).min(self.span as u64) as u32;
                (lo..hi).any(|bit| mask & (1u64 << bit) != 0)
            }
        }
    }
}

/// A bounded FIFO of pending downstream writes.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    entries: VecDeque<WbEntry>,
    capacity: usize,
}

impl WriteBuffer {
    /// Creates a buffer of `depth` entries; depth 0 means unbuffered.
    pub fn new(depth: u32) -> Self {
        WriteBuffer {
            entries: VecDeque::with_capacity(depth as usize),
            capacity: depth as usize,
        }
    }

    /// Number of pending entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no writes are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push would overflow.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured depth.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; the owner must drain first (stalling
    /// the CPU for the drain time).
    #[inline]
    pub fn push(&mut self, entry: WbEntry) {
        assert!(!self.is_full(), "write buffer overflow: owner must drain");
        self.entries.push_back(entry);
    }

    /// Returns the oldest entry without removing it.
    #[inline]
    pub fn front(&self) -> Option<&WbEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    #[inline]
    pub fn pop_front(&mut self) -> Option<WbEntry> {
        self.entries.pop_front()
    }

    /// Index of the youngest entry overlapping the read region, if any. The
    /// read must wait for that entry (and, FIFO, everything ahead of it).
    #[inline]
    pub fn find_overlap(&self, pid: Pid, start: WordAddr, words: u32) -> Option<usize> {
        self.entries
            .iter()
            .rposition(|e| e.overlaps(pid, start.value(), words))
    }

    /// Tries to merge a word write into the *tail* entry (only the tail:
    /// merging into older entries would reorder writes to the same
    /// address). Returns `true` on success.
    #[inline]
    pub fn try_coalesce(&mut self, pid: Pid, addr: WordAddr) -> bool {
        let Some(tail) = self.entries.back_mut() else {
            return false;
        };
        if tail.pid != pid {
            return false;
        }
        let a = addr.value();
        if a < tail.start || a >= tail.start + tail.span as u64 {
            return false;
        }
        match &mut tail.payload {
            // The block is transferred whole anyway; the word is absorbed.
            WbPayload::Block { .. } => true,
            WbPayload::Words { mask } => {
                *mask |= 1u64 << (a - tail.start);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(addr: u64) -> WordAddr {
        WordAddr::new(addr)
    }

    #[test]
    fn fifo_order() {
        let mut wb = WriteBuffer::new(4);
        wb.push(WbEntry::word(Pid(0), w(0), 0));
        wb.push(WbEntry::word(Pid(0), w(100), 1));
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.pop_front().unwrap().start, 0);
        assert_eq!(wb.pop_front().unwrap().start, 96); // region-aligned
        assert!(wb.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut wb = WriteBuffer::new(2);
        wb.push(WbEntry::word(Pid(0), w(0), 0));
        assert!(!wb.is_full());
        wb.push(WbEntry::word(Pid(0), w(100), 0));
        assert!(wb.is_full());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut wb = WriteBuffer::new(1);
        wb.push(WbEntry::word(Pid(0), w(0), 0));
        wb.push(WbEntry::word(Pid(0), w(100), 0));
    }

    #[test]
    fn zero_depth_always_full() {
        let wb = WriteBuffer::new(0);
        assert!(wb.is_full());
        assert!(wb.is_empty());
    }

    #[test]
    fn block_entry_words_and_overlap() {
        let e = WbEntry::block(Pid(1), w(64), 8, 5);
        assert_eq!(e.words(), 8);
        assert!(e.overlaps(Pid(1), 64, 4));
        assert!(e.overlaps(Pid(1), 71, 1));
        assert!(!e.overlaps(Pid(1), 72, 4));
        assert!(!e.overlaps(Pid(1), 60, 4));
        assert!(!e.overlaps(Pid(2), 64, 4), "different pid never matches");
    }

    #[test]
    fn find_overlap_returns_youngest() {
        let mut wb = WriteBuffer::new(4);
        wb.push(WbEntry::block(Pid(0), w(0), 4, 0));
        wb.push(WbEntry::block(Pid(0), w(64), 4, 0));
        wb.push(WbEntry::block(Pid(0), w(0), 4, 0));
        assert_eq!(wb.find_overlap(Pid(0), w(2), 1), Some(2));
        assert_eq!(wb.find_overlap(Pid(0), w(64), 4), Some(1));
        assert_eq!(wb.find_overlap(Pid(0), w(128), 4), None);
    }

    #[test]
    fn word_entry_masks_accumulate() {
        let mut wb = WriteBuffer::new(4);
        wb.push(WbEntry::word(Pid(0), w(33), 0));
        assert!(wb.try_coalesce(Pid(0), w(34)));
        assert!(wb.try_coalesce(Pid(0), w(33)), "re-writing a word is free");
        assert_eq!(wb.front().unwrap().words(), 2);
        // Outside the aligned 16-word region: no merge.
        assert!(!wb.try_coalesce(Pid(0), w(48)));
        // Different process: no merge.
        assert!(!wb.try_coalesce(Pid(1), w(35)));
    }

    #[test]
    fn coalesce_into_block_absorbs() {
        let mut wb = WriteBuffer::new(4);
        wb.push(WbEntry::block(Pid(0), w(64), 8, 0));
        assert!(wb.try_coalesce(Pid(0), w(70)));
        assert_eq!(wb.front().unwrap().words(), 8, "block already writes all");
    }

    #[test]
    fn coalesce_only_into_tail() {
        let mut wb = WriteBuffer::new(4);
        wb.push(WbEntry::word(Pid(0), w(0), 0));
        wb.push(WbEntry::word(Pid(0), w(100), 0));
        assert!(
            !wb.try_coalesce(Pid(0), w(1)),
            "head entry must not accept merges"
        );
    }

    #[test]
    fn empty_buffer_cannot_coalesce_or_match() {
        let mut wb = WriteBuffer::new(4);
        assert!(!wb.try_coalesce(Pid(0), w(0)));
        assert_eq!(wb.find_overlap(Pid(0), w(0), 4), None);
        assert!(wb.front().is_none());
        assert!(wb.pop_front().is_none());
    }
}
