//! Figure 3-2: normalized total cycle count across the speed–size space.
//!
//! "As the CPU/cache cycle time is varied over the range of 20ns through
//! 80ns, the total cycle count for the traces decreases, giving the
//! illusion of improved performance." Counts are normalized to the
//! smallest in the experiment — two 2 MB caches at 80 ns.

use crate::runner::SpeedSizeGrid;
use cachetime_analysis::table::Table;

/// The normalized cycle-count surface.
#[derive(Debug, Clone)]
pub struct CycleCounts {
    /// Total L1 sizes (KB), row axis.
    pub sizes_total_kb: Vec<u64>,
    /// Cycle times (ns), column axis.
    pub cts_ns: Vec<u32>,
    /// `normalized[size][ct]`, 1.0 at the global minimum.
    pub normalized: Vec<Vec<f64>>,
}

/// Normalizes the grid's cycle counts.
pub fn run(grid: &SpeedSizeGrid) -> CycleCounts {
    let min = grid
        .cycles_per_ref
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min);
    CycleCounts {
        sizes_total_kb: grid.sizes_total_kb.clone(),
        cts_ns: grid.cts_ns.clone(),
        normalized: grid
            .cycles_per_ref
            .iter()
            .map(|row| row.iter().map(|&c| c / min).collect())
            .collect(),
    }
}

/// Renders the surface with one row per size.
pub fn render(c: &CycleCounts) -> String {
    let mut headers = vec!["Total L1".to_string()];
    headers.extend(c.cts_ns.iter().map(|ct| format!("{ct}ns")));
    let mut t = Table::new(headers);
    for (i, &kb) in c.sizes_total_kb.iter().enumerate() {
        let mut row = vec![format!("{kb}KB")];
        row.extend(c.normalized[i].iter().map(|v| format!("{v:.3}")));
        t.row(row);
    }
    format!("Figure 3-2: relative total cycle count (normalized to the minimum)\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TraceSet;

    #[test]
    fn cycle_count_falls_with_cycle_time_and_size() {
        let traces = TraceSet::quick();
        let grid = SpeedSizeGrid::compute_over(&traces, 1, &[2, 32, 512], &[20, 40, 80]);
        let c = run(&grid);
        // Normalization: minimum is 1.0.
        let min = c
            .normalized
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-12);
        // For a fixed size, slower clocks mean fewer cycles (the paper's
        // "illusion of improved performance").
        for row in &c.normalized {
            assert!(row.first().unwrap() > row.last().unwrap());
        }
        // For a fixed clock, bigger caches mean fewer cycles.
        for j in 0..c.cts_ns.len() {
            assert!(c.normalized[0][j] > c.normalized[2][j]);
        }
        // The global minimum is at (largest size, slowest clock).
        assert!((c.normalized[2][2] - 1.0).abs() < 1e-12);
        assert!(render(&c).contains("80ns"));
    }
}
