//! `ctsim` — run one machine configuration over one or more traces and
//! print the full report, dinero-style.
//!
//! ```text
//! ctsim [options] (--din FILE | --workload NAMES)
//!
//!   --din FILE          din-format trace (0=read, 1=write, 2=ifetch, hex bytes)
//!   --workload NAMES    synthetic catalog trace(s): one name, a
//!                       comma-separated list, or `all` (mu3 mu6 mu10 savec
//!                       rd1n3 rd2n4 rd1n5 rd2n7)
//!   --jobs N            workers for multi-workload runs (default: all
//!                       cores; results are identical for every N)
//!   --scale F           catalog scale factor (default 0.1)
//!   --warm N            warm-start reference index for --din (default 0)
//!   --size KB           per-cache L1 size (default 64)
//!   --block W           block size in words (default 4)
//!   --assoc N           set associativity (default 1)
//!   --ct NS             cycle time (default 40)
//!   --unified           one unified L1 instead of split I/D
//!   --l2 KB             add a unified L2 of this size
//!   --mem-latency NS    DRAM read-operation time (default 180)
//!   --single-issue      serialize couplet halves
//!   --early-continuation resume on requested-word arrival
//!   --stream            stream a --din file through the simulator without
//!                       materializing it (skips the trace summary line)
//!   --histogram         print the couplet-latency histogram
//!   --profile PATH      append span timings (record/replay/sweep phases)
//!                       as JSONL trace records to PATH
//! ```

use cachetime::{simulate, sweep, LevelTwoConfig, SimResult, Simulator, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_mem::MemoryConfig;
use cachetime_trace::{catalog, io::read_din_trace, io::DinIter, Trace, WorkloadSpec};
use cachetime_types::{Assoc, BlockWords, CacheSize, CycleTime, Nanos};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    din: Option<std::path::PathBuf>,
    workload: Option<String>,
    jobs: usize,
    scale: f64,
    warm: usize,
    size_kb: u64,
    block_words: u32,
    assoc: u32,
    ct_ns: u32,
    unified: bool,
    l2_kb: Option<u64>,
    mem_latency_ns: u64,
    single_issue: bool,
    early_continuation: bool,
    stream: bool,
    histogram: bool,
    profile: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            din: None,
            workload: None,
            jobs: 0,
            scale: 0.1,
            warm: 0,
            size_kb: 64,
            block_words: 4,
            assoc: 1,
            ct_ns: 40,
            unified: false,
            l2_kb: None,
            mem_latency_ns: 180,
            single_issue: false,
            early_continuation: false,
            stream: false,
            histogram: false,
            profile: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut o = Options::default();
    let mut args = args;
    fn value<T: std::str::FromStr>(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        raw.parse()
            .map_err(|e| format!("bad value for {flag}: {e}"))
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--din" => o.din = Some(value::<String>(&mut args, "--din")?.into()),
            "--workload" => o.workload = Some(value(&mut args, "--workload")?),
            "--jobs" => o.jobs = value(&mut args, "--jobs")?,
            "--scale" => o.scale = value(&mut args, "--scale")?,
            "--warm" => o.warm = value(&mut args, "--warm")?,
            "--size" => o.size_kb = value(&mut args, "--size")?,
            "--block" => o.block_words = value(&mut args, "--block")?,
            "--assoc" => o.assoc = value(&mut args, "--assoc")?,
            "--ct" => o.ct_ns = value(&mut args, "--ct")?,
            "--unified" => o.unified = true,
            "--l2" => o.l2_kb = Some(value(&mut args, "--l2")?),
            "--mem-latency" => o.mem_latency_ns = value(&mut args, "--mem-latency")?,
            "--single-issue" => o.single_issue = true,
            "--early-continuation" => o.early_continuation = true,
            "--stream" => o.stream = true,
            "--histogram" => o.histogram = true,
            "--profile" => o.profile = Some(value::<String>(&mut args, "--profile")?.into()),
            "--help" | "-h" => {
                return Err("see the doc comment at the top of ctsim.rs or README".into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if o.din.is_some() == o.workload.is_some() {
        return Err("exactly one of --din and --workload is required".into());
    }
    Ok(o)
}

/// The catalog workload names, in canonical order (`--workload all`).
const CATALOG_NAMES: [&str; 8] = [
    "mu3", "mu6", "mu10", "savec", "rd1n3", "rd2n4", "rd1n5", "rd2n7",
];

fn workload_spec(name: &str, scale: f64) -> Result<WorkloadSpec, String> {
    Ok(match name {
        "mu3" => catalog::mu3(scale),
        "mu6" => catalog::mu6(scale),
        "mu10" => catalog::mu10(scale),
        "savec" => catalog::savec(scale),
        "rd1n3" => catalog::rd1n3(scale),
        "rd2n4" => catalog::rd2n4(scale),
        "rd1n5" => catalog::rd1n5(scale),
        "rd2n7" => catalog::rd2n7(scale),
        other => return Err(format!("unknown workload '{other}'")),
    })
}

/// Expands the `--workload` argument into catalog specs: a single name,
/// a comma-separated list, or `all`.
fn workload_specs(o: &Options) -> Result<Vec<WorkloadSpec>, String> {
    let raw = o.workload.as_deref().expect("checked by parse_args");
    if raw == "all" {
        return CATALOG_NAMES
            .iter()
            .map(|n| workload_spec(n, o.scale))
            .collect();
    }
    raw.split(',')
        .filter(|n| !n.is_empty())
        .map(|n| workload_spec(n, o.scale))
        .collect::<Result<Vec<_>, _>>()
        .and_then(|specs| {
            if specs.is_empty() {
                Err("--workload needs at least one name".into())
            } else {
                Ok(specs)
            }
        })
}

fn load_trace(o: &Options) -> Result<Trace, String> {
    if let Some(path) = &o.din {
        return read_din_trace(path, &path.display().to_string(), o.warm)
            .map_err(|e| e.to_string());
    }
    let specs = workload_specs(o)?;
    if specs.len() != 1 {
        return Err("load_trace expects exactly one workload".into());
    }
    Ok(specs[0].generate())
}

fn build_system(o: &Options) -> Result<SystemConfig, String> {
    let err = |e: cachetime_types::ConfigError| e.to_string();
    let l1 = CacheConfig::builder(CacheSize::from_kib(o.size_kb).map_err(err)?)
        .block(BlockWords::new(o.block_words).map_err(err)?)
        .assoc(Assoc::new(o.assoc).map_err(err)?)
        .build()
        .map_err(err)?;
    let memory = MemoryConfig::builder()
        .read_op(Nanos(o.mem_latency_ns))
        .build()
        .map_err(err)?;
    let mut b = SystemConfig::builder();
    b.cycle_time(CycleTime::from_ns(o.ct_ns).map_err(err)?)
        .l1_both(l1)
        .unified(o.unified)
        .memory(memory)
        .dual_issue(!o.single_issue)
        .early_continuation(o.early_continuation);
    if let Some(kb) = o.l2_kb {
        let l2block = BlockWords::new(o.block_words.max(16)).map_err(err)?;
        let l2 = CacheConfig::builder(CacheSize::from_kib(kb).map_err(err)?)
            .block(l2block)
            .build()
            .map_err(err)?;
        b.l2(LevelTwoConfig::new(l2));
    }
    b.build().map_err(err)
}

/// Streams a din file straight into the simulator at constant memory.
fn run_streaming(o: &Options, config: &SystemConfig) -> Result<SimResult, String> {
    let Some(path) = &o.din else {
        return Err("--stream requires --din".into());
    };
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let reader = std::io::BufReader::new(file);
    let mut failure: Option<String> = None;
    let refs = DinIter::new(reader).map_while(|r| match r {
        Ok(m) => Some(m),
        Err(e) => {
            failure = Some(e.to_string());
            None
        }
    });
    println!("trace:    {} (streamed)", path.display());
    let result = Simulator::new(config).run_refs(refs, o.warm);
    match failure {
        Some(e) => Err(e),
        None => Ok(result),
    }
}

fn report(r: &SimResult, histogram: bool) {
    println!();
    println!("cycles            {}", r.cycles.0);
    println!("couplets          {}", r.couplets);
    println!("cycles/ref        {:.4}", r.cycles_per_ref());
    println!("time/ref          {:.2} ns", r.time_per_ref_ns());
    println!("execution time    {}", r.exec_time());
    println!(
        "hierarchy stalls  {:.4} cycles/ref ({:.1}% of all cycles)",
        r.stalls_per_ref(),
        100.0 * r.stall_fraction()
    );
    println!();
    println!("read miss ratio   {:.4}%", 100.0 * r.read_miss_ratio());
    println!("  ifetch          {:.4}%", 100.0 * r.ifetch_miss_ratio());
    println!("  load            {:.4}%", 100.0 * r.load_miss_ratio());
    println!("read traffic      {:.4} words/ref", r.read_traffic_ratio());
    println!(
        "write traffic     {:.4} (blocks) / {:.4} (dirty words)",
        r.write_traffic_ratio_block(),
        r.write_traffic_ratio_dirty()
    );
    if let Some(l2) = r.l2 {
        println!(
            "L2                {} reads, {:.4}% miss",
            l2.reads,
            100.0 * l2.read_miss_ratio()
        );
    }
    println!(
        "memory            {} reads, {} writes, {} read-match stalls",
        r.mem.reads, r.mem.writes, r.mem.read_match_stalls
    );
    if histogram {
        println!("\n{}", r.latency);
    }
}

/// Runs several catalog workloads through one configuration on the sweep
/// executor and prints a report per workload, in catalog-argument order.
fn run_workloads(o: &Options, config: &SystemConfig, specs: &[WorkloadSpec]) -> Result<(), String> {
    let run = sweep::run(specs, o.jobs, |_idx, spec| {
        let trace = spec.generate();
        let stats = trace.stats().to_string();
        (stats, simulate(config, &trace))
    })
    .map_err(|e| e.to_string())?;
    let mut total_refs = 0u64;
    for ((spec, (stats, r)), task_time) in specs
        .iter()
        .zip(&run.results)
        .zip(&run.task_times)
    {
        println!();
        println!("=== {} [{task_time:.1?}] ===", spec.name);
        println!("trace:    {} ({stats})", spec.name);
        total_refs += r.refs;
        report(r, o.histogram);
    }
    eprintln!(
        "[{} workloads on {} workers in {:.1?}; {:.0} refs/sec simulated]",
        specs.len(),
        run.jobs,
        run.wall_time,
        run.throughput(total_refs)
    );
    Ok(())
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match build_system(&o) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &o.profile {
        match cachetime_obs::JsonlSink::create(path) {
            Ok(sink) => cachetime_obs::global().set_sink(Some(std::sync::Arc::new(sink))),
            Err(e) => {
                eprintln!("cannot open profile file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    println!("machine:  {config}");
    if o.stream {
        match run_streaming(&o, &config) {
            Ok(r) => report(&r, o.histogram),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else if o.din.is_some() {
        let trace = match load_trace(&o) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("trace:    {} ({})", trace.name(), trace.stats());
        report(&simulate(&config, &trace), o.histogram);
    } else {
        let specs = match workload_specs(&o) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let [spec] = specs.as_slice() {
            // Single workload: identical output shape to earlier versions.
            let trace = spec.generate();
            println!("trace:    {} ({})", trace.name(), trace.stats());
            report(&simulate(&config, &trace), o.histogram);
        } else if let Err(e) = run_workloads(&o, &config, &specs) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn requires_exactly_one_source() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--din", "x", "--workload", "mu3"]).is_err());
        assert!(parse(&["--workload", "mu3"]).is_ok());
        assert!(parse(&["--din", "x.din"]).is_ok());
    }

    #[test]
    fn flags_round_trip() {
        let o = parse(&[
            "--workload",
            "savec",
            "--size",
            "16",
            "--block",
            "8",
            "--assoc",
            "2",
            "--ct",
            "32",
            "--l2",
            "256",
            "--mem-latency",
            "260",
            "--single-issue",
            "--early-continuation",
            "--stream",
            "--histogram",
            "--warm",
            "100",
            "--profile",
            "spans.jsonl",
        ])
        .unwrap();
        assert_eq!(o.size_kb, 16);
        assert_eq!(o.block_words, 8);
        assert_eq!(o.assoc, 2);
        assert_eq!(o.ct_ns, 32);
        assert_eq!(o.l2_kb, Some(256));
        assert_eq!(o.mem_latency_ns, 260);
        assert!(o.single_issue && o.early_continuation && o.stream && o.histogram);
        assert_eq!(o.warm, 100);
        assert_eq!(o.profile.as_deref(), Some(std::path::Path::new("spans.jsonl")));
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse(&["--workload", "mu3", "--size", "abc"]).is_err());
        assert!(parse(&["--workload", "mu3", "--size"]).is_err());
        assert!(parse(&["--workload", "mu3", "--bogus"]).is_err());
    }

    #[test]
    fn build_system_validates() {
        let mut o = parse(&["--workload", "mu3"]).unwrap();
        o.size_kb = 3; // not a power of two
        assert!(build_system(&o).is_err());
        o.size_kb = 64;
        assert!(build_system(&o).is_ok());
    }

    #[test]
    fn load_trace_rejects_unknown_workload() {
        let o = parse(&["--workload", "nonesuch"]).unwrap();
        assert!(load_trace(&o).is_err());
    }
}
