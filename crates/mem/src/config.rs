//! Main-memory and write-buffer configuration.

use cachetime_types::{ConfigError, Nanos, StableHash, StableHasher};
use std::fmt;

/// The backplane transfer rate between memory and cache.
///
/// The paper sweeps this from four words per cycle down to one word every
/// four cycles (peak bandwidths of 400 MB/s to 25 MB/s at 40 ns). The
/// default is one word per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferRate {
    /// `n` words move per cycle (`n ≥ 1`). A partial bus-width transfer
    /// still takes a full cycle.
    WordsPerCycle(u32),
    /// Each word takes `n` cycles (`n ≥ 1`).
    CyclesPerWord(u32),
}

impl TransferRate {
    /// Cycles needed to move `words` words (at least one cycle for any
    /// nonzero transfer).
    #[inline]
    pub const fn cycles_for_words(self, words: u32) -> u64 {
        match self {
            TransferRate::WordsPerCycle(n) => words.div_ceil(n) as u64,
            TransferRate::CyclesPerWord(n) => words as u64 * n as u64,
        }
    }

    /// The rate as words per cycle (fractional for slow buses); `tr` in the
    /// paper's `la × tr` memory-speed product.
    #[inline]
    pub fn words_per_cycle(self) -> f64 {
        match self {
            TransferRate::WordsPerCycle(n) => n as f64,
            TransferRate::CyclesPerWord(n) => 1.0 / n as f64,
        }
    }

    fn validate(self) -> Result<Self, ConfigError> {
        let n = match self {
            TransferRate::WordsPerCycle(n) | TransferRate::CyclesPerWord(n) => n,
        };
        if n == 0 {
            Err(ConfigError::OutOfRange {
                what: "transfer rate",
                value: 0,
                min: 1,
                max: u32::MAX as u64,
            })
        } else {
            Ok(self)
        }
    }
}

impl Default for TransferRate {
    fn default() -> Self {
        TransferRate::WordsPerCycle(1)
    }
}

impl fmt::Display for TransferRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferRate::WordsPerCycle(n) => write!(f, "{n}W/cycle"),
            TransferRate::CyclesPerWord(n) => write!(f, "1W/{n}cycles"),
        }
    }
}

/// Complete description of the main-memory system and the write buffer in
/// front of it.
///
/// The paper's defaults (section 2): 180 ns read operation, 100 ns write
/// operation, 120 ns recovery, one address cycle, one word per cycle
/// transfer, and a four-block write buffer deep enough that it "essentially
/// never fills up".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    read_op: Nanos,
    write_op: Nanos,
    recovery: Nanos,
    transfer: TransferRate,
    addr_cycles: u64,
    wb_depth: u32,
    wb_coalesce: bool,
    wb_drain_delay: u64,
    read_priority: bool,
}

impl MemoryConfig {
    /// The paper's default memory system.
    pub fn paper_default() -> Self {
        MemoryConfig {
            read_op: Nanos(180),
            write_op: Nanos(100),
            recovery: Nanos(120),
            transfer: TransferRate::WordsPerCycle(1),
            addr_cycles: 1,
            wb_depth: 4,
            wb_coalesce: true,
            wb_drain_delay: 32,
            read_priority: true,
        }
    }

    /// The section-5 variation: "the read and write operation times and the
    /// recovery time, all three of which are made equal" to `latency`, with
    /// the given transfer rate.
    pub fn uniform_latency(latency: Nanos, transfer: TransferRate) -> Result<Self, ConfigError> {
        Self::builder()
            .read_op(latency)
            .write_op(latency)
            .recovery(latency)
            .transfer(transfer)
            .build()
    }

    /// Starts a builder initialized to [`MemoryConfig::paper_default`].
    pub fn builder() -> MemoryConfigBuilder {
        MemoryConfigBuilder {
            inner: Self::paper_default(),
        }
    }

    /// DRAM read-operation time (the asynchronous latency component).
    pub const fn read_op(&self) -> Nanos {
        self.read_op
    }

    /// DRAM write-operation time.
    pub const fn write_op(&self) -> Nanos {
        self.write_op
    }

    /// Recovery time between consecutive memory operations.
    pub const fn recovery(&self) -> Nanos {
        self.recovery
    }

    /// Backplane transfer rate.
    pub const fn transfer(&self) -> TransferRate {
        self.transfer
    }

    /// Cycles to present an address to the memory (1 in the paper).
    pub const fn addr_cycles(&self) -> u64 {
        self.addr_cycles
    }

    /// Write-buffer depth in entries; 0 disables buffering (the CPU waits
    /// for every downstream write).
    pub const fn wb_depth(&self) -> u32 {
        self.wb_depth
    }

    /// Whether consecutive word writes to the same region merge into one
    /// write-buffer entry.
    pub const fn wb_coalesce(&self) -> bool {
        self.wb_coalesce
    }

    /// Cycles a buffered write lingers (aggregating coalescible
    /// neighbours) before the controller launches it to an idle memory.
    /// Reads overtake pending writes regardless, so a generous delay
    /// mostly improves coalescing; pressure (a full buffer or a read
    /// address match) forces immediate drains.
    pub const fn wb_drain_delay(&self) -> u64 {
        self.wb_drain_delay
    }

    /// Whether a fill may overtake buffered writes (true in the paper's
    /// model; the buffer still drains first on an address match).
    pub const fn read_priority(&self) -> bool {
        self.read_priority
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl StableHash for TransferRate {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            TransferRate::WordsPerCycle(n) => {
                h.write_u64(0);
                n.stable_hash(h);
            }
            TransferRate::CyclesPerWord(n) => {
                h.write_u64(1);
                n.stable_hash(h);
            }
        }
    }
}

impl StableHash for MemoryConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.read_op.stable_hash(h);
        self.write_op.stable_hash(h);
        self.recovery.stable_hash(h);
        self.transfer.stable_hash(h);
        self.addr_cycles.stable_hash(h);
        self.wb_depth.stable_hash(h);
        self.wb_coalesce.stable_hash(h);
        self.wb_drain_delay.stable_hash(h);
        self.read_priority.stable_hash(h);
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory: read {}, write {}, recovery {}, {}, wb depth {}",
            self.read_op, self.write_op, self.recovery, self.transfer, self.wb_depth
        )
    }
}

/// Builder for [`MemoryConfig`]; see [`MemoryConfig::builder`].
#[derive(Debug, Clone)]
pub struct MemoryConfigBuilder {
    inner: MemoryConfig,
}

impl MemoryConfigBuilder {
    /// Sets the DRAM read-operation time. Default 180 ns.
    pub fn read_op(&mut self, ns: Nanos) -> &mut Self {
        self.inner.read_op = ns;
        self
    }

    /// Sets the DRAM write-operation time. Default 100 ns.
    pub fn write_op(&mut self, ns: Nanos) -> &mut Self {
        self.inner.write_op = ns;
        self
    }

    /// Sets the recovery time. Default 120 ns.
    pub fn recovery(&mut self, ns: Nanos) -> &mut Self {
        self.inner.recovery = ns;
        self
    }

    /// Sets the transfer rate. Default one word per cycle.
    pub fn transfer(&mut self, rate: TransferRate) -> &mut Self {
        self.inner.transfer = rate;
        self
    }

    /// Sets the address-presentation cycles. Default 1.
    pub fn addr_cycles(&mut self, cycles: u64) -> &mut Self {
        self.inner.addr_cycles = cycles;
        self
    }

    /// Sets the write-buffer depth. Default 4.
    pub fn wb_depth(&mut self, depth: u32) -> &mut Self {
        self.inner.wb_depth = depth;
        self
    }

    /// Enables or disables write coalescing. Default enabled.
    pub fn wb_coalesce(&mut self, coalesce: bool) -> &mut Self {
        self.inner.wb_coalesce = coalesce;
        self
    }

    /// Sets the drain delay in cycles. Default 32.
    pub fn wb_drain_delay(&mut self, cycles: u64) -> &mut Self {
        self.inner.wb_drain_delay = cycles;
        self
    }

    /// Enables or disables read priority over buffered writes. Default
    /// enabled.
    pub fn read_priority(&mut self, priority: bool) -> &mut Self {
        self.inner.read_priority = priority;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] for a zero transfer rate or a
    /// write-buffer depth above 1024.
    pub fn build(&self) -> Result<MemoryConfig, ConfigError> {
        self.inner.transfer.validate()?;
        if self.inner.wb_depth > 1024 {
            return Err(ConfigError::OutOfRange {
                what: "write buffer depth",
                value: self.inner.wb_depth as u64,
                min: 0,
                max: 1024,
            });
        }
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = MemoryConfig::paper_default();
        assert_eq!(c.read_op(), Nanos(180));
        assert_eq!(c.write_op(), Nanos(100));
        assert_eq!(c.recovery(), Nanos(120));
        assert_eq!(c.transfer(), TransferRate::WordsPerCycle(1));
        assert_eq!(c.addr_cycles(), 1);
        assert_eq!(c.wb_depth(), 4);
    }

    #[test]
    fn uniform_latency_sets_all_three() {
        let c = MemoryConfig::uniform_latency(Nanos(260), TransferRate::WordsPerCycle(2)).unwrap();
        assert_eq!(c.read_op(), Nanos(260));
        assert_eq!(c.write_op(), Nanos(260));
        assert_eq!(c.recovery(), Nanos(260));
        assert_eq!(c.transfer(), TransferRate::WordsPerCycle(2));
    }

    #[test]
    fn transfer_cycles_fast_bus() {
        let t = TransferRate::WordsPerCycle(4);
        assert_eq!(t.cycles_for_words(4), 1);
        assert_eq!(t.cycles_for_words(5), 2);
        // "for very small block sizes, having a large tr is of no benefit,
        // as the minimum transfer time is one cycle"
        assert_eq!(t.cycles_for_words(1), 1);
    }

    #[test]
    fn transfer_cycles_slow_bus() {
        let t = TransferRate::CyclesPerWord(4);
        assert_eq!(t.cycles_for_words(1), 4);
        assert_eq!(t.cycles_for_words(8), 32);
    }

    #[test]
    fn words_per_cycle_fractional() {
        assert_eq!(TransferRate::WordsPerCycle(4).words_per_cycle(), 4.0);
        assert_eq!(TransferRate::CyclesPerWord(4).words_per_cycle(), 0.25);
    }

    #[test]
    fn zero_transfer_rejected() {
        assert!(MemoryConfig::builder()
            .transfer(TransferRate::WordsPerCycle(0))
            .build()
            .is_err());
        assert!(MemoryConfig::builder()
            .transfer(TransferRate::CyclesPerWord(0))
            .build()
            .is_err());
    }

    #[test]
    fn oversized_wb_rejected() {
        assert!(MemoryConfig::builder().wb_depth(4096).build().is_err());
        assert!(MemoryConfig::builder().wb_depth(0).build().is_ok());
    }
}
