//! Main-memory traffic and contention statistics.

use std::ops::AddAssign;

/// Event counts accumulated by a [`MemorySystem`](crate::MemorySystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Block-read operations (cache fills).
    pub reads: u64,
    /// Words delivered by reads.
    pub read_words: u64,
    /// Write operations drained from the write buffer.
    pub writes: u64,
    /// Words transferred by drained writes.
    pub write_words: u64,
    /// Reads delayed because they matched a buffered write's address.
    pub read_match_stalls: u64,
    /// Pushes that found the write buffer full and had to force a drain.
    pub full_stalls: u64,
    /// Word writes merged into an existing buffer entry.
    pub coalesced_writes: u64,
}

impl MemStats {
    /// Total memory operations.
    pub fn operations(&self) -> u64 {
        self.reads + self.writes
    }
}

impl AddAssign for MemStats {
    fn add_assign(&mut self, rhs: MemStats) {
        self.reads += rhs.reads;
        self.read_words += rhs.read_words;
        self.writes += rhs.writes;
        self.write_words += rhs.write_words;
        self.read_match_stalls += rhs.read_match_stalls;
        self.full_stalls += rhs.full_stalls;
        self.coalesced_writes += rhs.coalesced_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = MemStats {
            reads: 1,
            write_words: 4,
            ..MemStats::default()
        };
        a += MemStats {
            reads: 2,
            writes: 3,
            ..MemStats::default()
        };
        assert_eq!(a.reads, 3);
        assert_eq!(a.writes, 3);
        assert_eq!(a.write_words, 4);
        assert_eq!(a.operations(), 6);
    }
}
