//! Time-independent cache statistics.

use std::ops::AddAssign;

/// Event counts accumulated by a [`Cache`](crate::Cache).
///
/// These are the classic *time-independent* metrics the paper starts from
/// (miss ratios, traffic ratios). Ratios are computed on demand; the paper's
/// miss ratios are "read misses per read request, as opposed to being
/// relative to the total number of references".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Read accesses presented to the cache.
    pub reads: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses presented to the cache.
    pub writes: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Block fills performed (whole- or sub-block).
    pub fills: u64,
    /// Words fetched from the next level by fills.
    pub fill_words: u64,
    /// Valid blocks displaced (clean or dirty).
    pub evictions: u64,
    /// Displaced blocks that were dirty (write-backs issued).
    pub dirty_evictions: u64,
    /// Words transferred by write-backs: the whole victim block each time
    /// ("on write backs, the entire block is transferred, regardless of
    /// which words were dirty").
    pub write_back_words: u64,
    /// Of those, words that were actually dirty (the paper's smaller write
    /// traffic ratio counts only these).
    pub dirty_words_written_back: u64,
    /// Words sent downstream by write-through or write-around (no-allocate
    /// write misses) word writes.
    pub word_writes_downstream: u64,
    /// Misses served by the victim buffer instead of the next level
    /// (victim-hit attribution: these are counted in `read_misses` /
    /// `write_misses` too, so `victim_hits / read_misses` is the
    /// fraction of misses the buffer absorbed).
    pub victim_hits: u64,
    /// Way-predicted read hits that found the block in the predicted
    /// way (direct-mapped-speed "first hits").
    pub way_first_hits: u64,
    /// Way-predicted read hits that needed a second probe round
    /// (non-first, "slow" hits).
    pub way_slow_hits: u64,
    /// Total probe rounds issued by way-predicted read hits (one for a
    /// first hit, two for a slow hit) — the search-length numerator.
    pub way_probe_rounds: u64,
}

impl CacheStats {
    /// Total accesses (reads plus writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read misses per read request (the paper's miss-ratio definition).
    ///
    /// Returns 0 when no reads occurred.
    pub fn read_miss_ratio(&self) -> f64 {
        ratio(self.read_misses, self.reads)
    }

    /// Write misses per write request. "In the system modeled, no fetching
    /// occurs on a write miss, so the write miss ratio is not interesting" —
    /// but it is exposed for completeness.
    pub fn write_miss_ratio(&self) -> f64 {
        ratio(self.write_misses, self.writes)
    }

    /// Words fetched per read request. With whole-block fetching this is
    /// exactly `block_words × read_miss_ratio` (paper: "the read traffic
    /// ratio is simply four times the miss ratio" for 4-word blocks).
    pub fn read_traffic_ratio(&self) -> f64 {
        ratio(self.fill_words, self.reads)
    }

    /// The larger write traffic ratio: all words of blocks dirty at
    /// replacement (plus word writes sent around/through the cache),
    /// relative to `denominator` references.
    pub fn write_traffic_ratio_block(&self, denominator: u64) -> f64 {
        ratio(
            self.write_back_words + self.word_writes_downstream,
            denominator,
        )
    }

    /// The smaller write traffic ratio: only the dirty words themselves
    /// (plus downstream word writes), relative to `denominator` references.
    pub fn write_traffic_ratio_dirty(&self, denominator: u64) -> f64 {
        ratio(
            self.dirty_words_written_back + self.word_writes_downstream,
            denominator,
        )
    }

    /// Of way-predicted read hits, the fraction found on the first
    /// probe. Returns 0 when way prediction never fired.
    pub fn way_first_hit_ratio(&self) -> f64 {
        ratio(self.way_first_hits, self.way_first_hits + self.way_slow_hits)
    }

    /// Of all misses, the fraction served by the victim buffer.
    pub fn victim_hit_ratio(&self) -> f64 {
        ratio(self.victim_hits, self.read_misses + self.write_misses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.reads += rhs.reads;
        self.read_misses += rhs.read_misses;
        self.writes += rhs.writes;
        self.write_misses += rhs.write_misses;
        self.fills += rhs.fills;
        self.fill_words += rhs.fill_words;
        self.evictions += rhs.evictions;
        self.dirty_evictions += rhs.dirty_evictions;
        self.write_back_words += rhs.write_back_words;
        self.dirty_words_written_back += rhs.dirty_words_written_back;
        self.word_writes_downstream += rhs.word_writes_downstream;
        self.victim_hits += rhs.victim_hits;
        self.way_first_hits += rhs.way_first_hits;
        self.way_slow_hits += rhs.way_slow_hits;
        self.way_probe_rounds += rhs.way_probe_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_with_zero_denominator_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.read_miss_ratio(), 0.0);
        assert_eq!(s.write_miss_ratio(), 0.0);
        assert_eq!(s.read_traffic_ratio(), 0.0);
        assert_eq!(s.write_traffic_ratio_block(0), 0.0);
    }

    #[test]
    fn read_traffic_is_block_size_times_miss_ratio() {
        let s = CacheStats {
            reads: 1000,
            read_misses: 50,
            fills: 50,
            fill_words: 200, // 4-word blocks
            ..CacheStats::default()
        };
        assert!((s.read_traffic_ratio() - 4.0 * s.read_miss_ratio()).abs() < 1e-12);
    }

    #[test]
    fn write_traffic_ratios_ordered() {
        let s = CacheStats {
            dirty_evictions: 10,
            write_back_words: 40,
            dirty_words_written_back: 13,
            word_writes_downstream: 5,
            ..CacheStats::default()
        };
        assert!(s.write_traffic_ratio_block(100) >= s.write_traffic_ratio_dirty(100));
        assert!((s.write_traffic_ratio_block(100) - 0.45).abs() < 1e-12);
        assert!((s.write_traffic_ratio_dirty(100) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CacheStats {
            reads: 1,
            writes: 2,
            ..CacheStats::default()
        };
        a += CacheStats {
            reads: 10,
            read_misses: 3,
            ..CacheStats::default()
        };
        assert_eq!(a.reads, 11);
        assert_eq!(a.writes, 2);
        assert_eq!(a.read_misses, 3);
        assert_eq!(a.accesses(), 13);
    }
}
