//! Reading and writing traces in the classic `din` (DineroIV) format.
//!
//! The synthetic catalog stands in for the paper's unavailable traces, but
//! the simulator is format-agnostic: any address trace in the widely used
//! `din` ASCII format can be fed in. Each line is
//!
//! ```text
//! <label> <hex-address> [pid]
//! ```
//!
//! with label `0` = data read, `1` = data write, `2` = instruction fetch,
//! and the address in (optionally `0x`-prefixed) hexadecimal **bytes**.
//! The optional third field is a `cachetime` extension carrying the
//! process id (default 0) so multiprogrammed traces round-trip; `#`-prefix
//! comment lines and blank lines are ignored.
//!
//! The simulator is word-granular ([`WordAddr`]), so a byte address that
//! is not a multiple of [`BYTES_PER_WORD`](cachetime_types::BYTES_PER_WORD)
//! cannot round-trip: `write_din` would emit the word-aligned address and
//! `write_din(parse_din(x)) != x`. Rather than corrupt silently, the
//! parser takes an explicit [`Alignment`] policy: the default
//! ([`Alignment::Reject`]) errors on sub-word offsets, so everything a
//! strict parse accepts round-trips byte-identically; byte-granular
//! sources (valgrind lackey, ChampSim) opt into [`Alignment::Truncate`],
//! which drops the sub-word bits and counts how many lines were affected
//! so callers can surface the loss instead of hiding it.

use crate::trace::Trace;
use cachetime_types::{AccessKind, MemRef, Pid, WordAddr, BYTES_PER_WORD};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// What to do with byte addresses that are not word-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Alignment {
    /// Error on sub-word byte addresses (the default): every reference a
    /// strict parse accepts serializes back to the identical text, so
    /// `write_din ∘ parse_din` is the identity on accepted input.
    #[default]
    Reject,
    /// Drop the sub-word bits (what `WordAddr::from_byte_addr` does) and
    /// count the affected lines. For byte-granular formats where sub-word
    /// offsets are expected, not suspicious.
    Truncate,
}

/// A malformed `din` line.
#[derive(Debug)]
pub struct ParseDinError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseDinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "din parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDinError {}

impl From<ParseDinError> for io::Error {
    fn from(e: ParseDinError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Parses a `din` stream into references under the strict (default)
/// [`Alignment::Reject`] policy.
///
/// # Errors
///
/// Returns [`ParseDinError`] (wrapped in `io::Error` by the `From` impl
/// where convenient) on unknown labels, bad hex, sub-word addresses, or
/// trailing junk; plain `io::Error` on read failures is surfaced as a
/// parse error with the offending line number.
pub fn parse_din<R: BufRead>(reader: R) -> Result<Vec<MemRef>, ParseDinError> {
    DinIter::new(reader).collect()
}

/// Parses one non-comment, non-blank `din` line. The `bool` reports
/// whether the address lost sub-word bits (always `false` under
/// [`Alignment::Reject`], which errors instead).
fn parse_line(
    trimmed: &str,
    lineno: usize,
    alignment: Alignment,
) -> Result<(MemRef, bool), ParseDinError> {
    let mut fields = trimmed.split_whitespace();
    let label = fields.next().expect("nonempty line has a field");
    let kind = match label {
        "0" => AccessKind::Load,
        "1" => AccessKind::Store,
        "2" => AccessKind::IFetch,
        other => {
            return Err(ParseDinError {
                line: lineno,
                message: format!("unknown label '{other}' (expected 0, 1, or 2)"),
            })
        }
    };
    let addr_str = fields.next().ok_or_else(|| ParseDinError {
        line: lineno,
        message: "missing address field".into(),
    })?;
    let hex = addr_str
        .strip_prefix("0x")
        .or_else(|| addr_str.strip_prefix("0X"))
        .unwrap_or(addr_str);
    let byte_addr = u64::from_str_radix(hex, 16).map_err(|e| ParseDinError {
        line: lineno,
        message: format!("bad hex address '{addr_str}': {e}"),
    })?;
    let pid = match fields.next() {
        None => Pid(0),
        Some(p) => Pid(p.parse().map_err(|e| ParseDinError {
            line: lineno,
            message: format!("bad pid '{p}': {e}"),
        })?),
    };
    if let Some(junk) = fields.next() {
        return Err(ParseDinError {
            line: lineno,
            message: format!("trailing junk '{junk}'"),
        });
    }
    let truncated = byte_addr % BYTES_PER_WORD != 0;
    if truncated && alignment == Alignment::Reject {
        return Err(ParseDinError {
            line: lineno,
            message: format!(
                "sub-word byte address {byte_addr:#x} (not a multiple of {BYTES_PER_WORD}); \
                 word-truncating it would break the write/parse roundtrip — \
                 use Alignment::Truncate to accept byte-granular input"
            ),
        });
    }
    Ok((
        MemRef::new(WordAddr::from_byte_addr(byte_addr), kind, pid),
        truncated,
    ))
}

/// Writes references as `din` lines (with the pid extension field whenever
/// a reference carries a nonzero pid).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_din<W: Write>(mut writer: W, refs: &[MemRef]) -> io::Result<()> {
    for r in refs {
        let label = match r.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
            AccessKind::IFetch => 2,
        };
        if r.pid.0 == 0 {
            writeln!(writer, "{label} {:x}", r.addr.to_byte_addr())?;
        } else {
            writeln!(writer, "{label} {:x} {}", r.addr.to_byte_addr(), r.pid.0)?;
        }
    }
    Ok(())
}

/// A streaming `din` parser: yields one [`MemRef`] per data line without
/// materializing the file.
///
/// Pair with `Simulator::run_refs` to drive arbitrarily large traces at
/// constant memory. Errors surface as the iterator's `Err` items; parsing
/// stops at the first error — the iterator is fused, so after yielding an
/// `Err` (or reaching end of input) every subsequent `next()` is `None`.
///
/// # Examples
///
/// ```
/// use cachetime_trace::io::DinIter;
///
/// let refs: Result<Vec<_>, _> = DinIter::new("2 1000\n0 2004\n".as_bytes()).collect();
/// assert_eq!(refs.unwrap().len(), 2);
/// ```
#[derive(Debug)]
pub struct DinIter<R> {
    lines: io::Lines<R>,
    lineno: usize,
    alignment: Alignment,
    truncated: u64,
    done: bool,
}

impl<R: BufRead> DinIter<R> {
    /// Wraps a buffered reader with the strict default policy
    /// ([`Alignment::Reject`]).
    pub fn new(reader: R) -> Self {
        Self::with_alignment(reader, Alignment::Reject)
    }

    /// Wraps a buffered reader with an explicit sub-word address policy.
    pub fn with_alignment(reader: R, alignment: Alignment) -> Self {
        DinIter {
            lines: reader.lines(),
            lineno: 0,
            alignment,
            truncated: 0,
            done: false,
        }
    }

    /// How many yielded references lost sub-word address bits so far
    /// (always 0 under [`Alignment::Reject`]).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// The 1-based number of the last line examined.
    pub fn line(&self) -> usize {
        self.lineno
    }
}

impl<R: BufRead> Iterator for DinIter<R> {
    type Item = Result<MemRef, ParseDinError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.lineno += 1;
            let line = match self.lines.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Ok(l)) => l,
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(ParseDinError {
                        line: self.lineno,
                        message: format!("read failed: {e}"),
                    }));
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return match parse_line(trimmed, self.lineno, self.alignment) {
                Ok((r, truncated)) => {
                    self.truncated += u64::from(truncated);
                    Some(Ok(r))
                }
                Err(e) => {
                    self.done = true;
                    Some(Err(e))
                }
            };
        }
    }
}

impl<R: BufRead> std::iter::FusedIterator for DinIter<R> {}

/// Reads a whole `din` file into a [`Trace`].
///
/// # Errors
///
/// I/O errors and [`ParseDinError`]s, both as `io::Error`.
pub fn read_din_trace(path: &std::path::Path, name: &str, warm_start: usize) -> io::Result<Trace> {
    let file = std::fs::File::open(path)?;
    let refs = parse_din(io::BufReader::new(file))?;
    if warm_start > refs.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("warm start {warm_start} beyond trace length {}", refs.len()),
        ));
    }
    Ok(Trace::new(name, refs, warm_start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_labels() {
        let input = "0 1000\n1 0x2004\n2 3ffc\n";
        let refs = parse_din(input.as_bytes()).unwrap();
        assert_eq!(refs.len(), 3);
        assert_eq!(
            refs[0],
            MemRef::load(WordAddr::from_byte_addr(0x1000), Pid(0))
        );
        assert_eq!(
            refs[1],
            MemRef::store(WordAddr::from_byte_addr(0x2004), Pid(0))
        );
        assert_eq!(
            refs[2],
            MemRef::ifetch(WordAddr::from_byte_addr(0x3ffc), Pid(0))
        );
    }

    #[test]
    fn pid_extension_and_comments() {
        let input = "# a comment\n\n0 100 7\n";
        let refs = parse_din(input.as_bytes()).unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].pid, Pid(7));
    }

    #[test]
    fn rejects_bad_input_with_line_numbers() {
        for (input, needle) in [
            ("3 100\n", "unknown label"),
            ("0\n", "missing address"),
            ("0 zzz\n", "bad hex"),
            ("0 100 1 extra\n", "trailing junk"),
            ("0 100 notanum\n", "bad pid"),
        ] {
            let err = parse_din(format!("0 0\n{input}").as_bytes()).unwrap_err();
            assert_eq!(err.line, 2, "{input}");
            assert!(err.to_string().contains(needle), "{input}: {err}");
        }
    }

    #[test]
    fn round_trips() {
        let refs = vec![
            MemRef::load(WordAddr::new(0x40), Pid(0)),
            MemRef::store(WordAddr::new(0x41), Pid(3)),
            MemRef::ifetch(WordAddr::new(0x1000), Pid(1)),
        ];
        let mut buf = Vec::new();
        write_din(&mut buf, &refs).unwrap();
        let back = parse_din(buf.as_slice()).unwrap();
        assert_eq!(refs, back);
    }

    #[test]
    fn strict_parse_rejects_sub_word_byte_addresses() {
        // Regression: the old parser word-truncated "1001" silently, so
        // write_din(parse_din(x)) was not identity. Strict mode now errors.
        let err = parse_din("0 1000\n0 1001\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("sub-word"), "{err}");
    }

    #[test]
    fn truncate_policy_accepts_and_counts_sub_word_addresses() {
        let mut it = DinIter::with_alignment("0 1001\n0 1002\n0 1004\n".as_bytes(), Alignment::Truncate);
        let refs: Vec<MemRef> = it.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(refs[0].addr, refs[1].addr, "same word");
        assert_ne!(refs[1].addr, refs[2].addr);
        assert_eq!(it.truncated(), 2, "two of three lines lost sub-word bits");
    }

    #[test]
    fn strict_roundtrip_is_identity_on_accepted_input() {
        // Everything strict parse accepts must serialize back to the same
        // bytes (modulo the canonical single-space/no-0x formatting, which
        // this input already uses).
        let text = "0 1000\n1 2004 3\n2 3ffc\n";
        let refs = parse_din(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_din(&mut buf, &refs).unwrap();
        assert_eq!(std::str::from_utf8(&buf).unwrap(), text);
    }

    #[test]
    fn streaming_iterator_matches_batch_parse() {
        let input = "# c\n2 1000\n\n0 2004 3\n1 abc0\n";
        let batch = parse_din(input.as_bytes()).unwrap();
        let streamed: Result<Vec<_>, _> = DinIter::new(input.as_bytes()).collect();
        assert_eq!(batch, streamed.unwrap());
    }

    #[test]
    fn streaming_iterator_reports_error_line() {
        let mut it = DinIter::new("0 10\n5 20\n".as_bytes());
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn streaming_iterator_is_fused_after_an_error() {
        // Regression: the doc promises parsing stops at the first error,
        // but the iterator used to keep yielding refs from lines after the
        // malformed one.
        let mut it = DinIter::new("0 10\n5 20\n0 30\n0 40\n".as_bytes());
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "fused after the first error");
        assert!(it.next().is_none(), "stays fused");
    }

    #[test]
    fn streaming_iterator_is_fused_after_end() {
        let mut it = DinIter::new("0 10\n".as_bytes());
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn file_round_trip_with_warm_start() {
        let dir = std::env::temp_dir().join("cachetime-din-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.din");
        let refs: Vec<MemRef> = (0..10)
            .map(|i| MemRef::load(WordAddr::new(i), Pid(0)))
            .collect();
        let mut buf = Vec::new();
        write_din(&mut buf, &refs).unwrap();
        std::fs::write(&path, buf).unwrap();
        let trace = read_din_trace(&path, "t", 4).unwrap();
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.warm_start(), 4);
        assert!(read_din_trace(&path, "t", 11).is_err());
        std::fs::remove_file(&path).ok();
    }
}
