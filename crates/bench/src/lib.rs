//! Shared helpers for the `cachetime` Criterion benches.
//!
//! The benches regenerate every table and figure of the paper at a small
//! trace scale (benchmarks measure the *harness*; the full-scale numbers
//! come from the `repro` binary) and measure the simulator's raw
//! throughput and its design ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cachetime_experiments::runner::TraceSet;
use std::sync::OnceLock;

/// The trace scale used by benches: small enough for tight iteration.
pub const BENCH_SCALE: f64 = 0.02;

/// A process-wide trace set shared by every bench (generation is
/// deterministic, so sharing does not couple measurements).
pub fn traces() -> &'static TraceSet {
    static TRACES: OnceLock<TraceSet> = OnceLock::new();
    TRACES.get_or_init(|| TraceSet::generate(BENCH_SCALE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_traces_are_generated_once() {
        let a = traces() as *const TraceSet;
        let b = traces() as *const TraceSet;
        assert_eq!(a, b);
        assert_eq!(traces().traces().len(), 8);
    }
}
