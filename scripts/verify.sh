#!/usr/bin/env bash
# Tier-1 verification gate: everything must pass before merging.
#
#   ./scripts/verify.sh
#
# 1. Release build of the whole workspace.
# 2. Full test suite (unit + property + integration).
# 3. Offline-build guard: the workspace must build with no registry
#    access at all (zero external dependencies is a hard invariant).
# 4. Two-phase equivalence cross-check: direct simulation vs the
#    record/replay pipeline must be bit-identical per grid cell.
# 5. Small-scale `cachetime-bench sweep`: re-asserts equivalence over the
#    full speed-size grid and refreshes BENCH_sweep.json with the current
#    grid-repricing numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build --offline --workspace (zero-dependency guard)"
cargo build --offline --workspace

echo "==> two-phase equivalence cross-check (direct vs record/replay)"
cargo test --release -q -p cachetime --test two_phase --test two_phase_prop

echo "==> cachetime-bench sweep (small scale; writes BENCH_sweep.json)"
cargo run --release -q -p cachetime-bench -- sweep "${BENCH_SCALE:-0.05}"

echo "==> verify OK"
