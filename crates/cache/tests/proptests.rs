//! Property-based tests for the cache substrate.

use cachetime_cache::{Cache, CacheConfig, ReadOutcome, ReplacementPolicy, WriteOutcome};
use cachetime_types::{Assoc, BlockWords, CacheSize, Pid, WordAddr};
use proptest::prelude::*;

/// An arbitrary small-but-valid cache configuration.
fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        0u32..=6,  // size: 64B..4KB
        0u32..=4,  // block: 1..16 words
        0u32..=3,  // assoc: 1..8
        0usize..4, // replacement policy
        any::<bool>(),
    )
        .prop_filter_map(
            "cache must hold at least one set",
            |(size_log, block_log, assoc_log, repl, virtual_tags)| {
                let size = CacheSize::from_bytes(64u64 << size_log).ok()?;
                let block = BlockWords::new(1 << block_log).ok()?;
                let assoc = Assoc::new(1 << assoc_log).ok()?;
                let repl = [
                    ReplacementPolicy::Random,
                    ReplacementPolicy::Lru,
                    ReplacementPolicy::Fifo,
                    ReplacementPolicy::TreePlru,
                ][repl];
                CacheConfig::builder(size)
                    .block(block)
                    .assoc(assoc)
                    .replacement(repl)
                    .virtual_tags(virtual_tags)
                    .build()
                    .ok()
            },
        )
}

/// A short access pattern within a small address range (to force reuse).
fn arb_accesses() -> impl Strategy<Value = Vec<(u64, bool, u16)>> {
    prop::collection::vec((0u64..512, any::<bool>(), 0u16..3), 1..400)
}

proptest! {
    /// A read immediately after a read of the same word by the same process
    /// always hits (nothing intervenes to displace it).
    #[test]
    fn read_read_same_word_hits(config in arb_config(), addr in 0u64..1024, pid in 0u16..4) {
        let mut cache = Cache::new(config);
        let a = WordAddr::new(addr);
        cache.read(a, Pid(pid));
        prop_assert!(cache.read(a, Pid(pid)).is_hit());
    }

    /// Statistics identities hold for arbitrary access sequences.
    #[test]
    fn stats_identities(config in arb_config(), accesses in arb_accesses()) {
        let mut cache = Cache::new(config);
        for &(addr, is_write, pid) in &accesses {
            let a = WordAddr::new(addr);
            if is_write {
                cache.write(a, Pid(pid));
            } else {
                cache.read(a, Pid(pid));
            }
        }
        let s = *cache.stats();
        let n_reads = accesses.iter().filter(|&&(_, w, _)| !w).count() as u64;
        let n_writes = accesses.len() as u64 - n_reads;
        prop_assert_eq!(s.reads, n_reads);
        prop_assert_eq!(s.writes, n_writes);
        prop_assert!(s.read_misses <= s.reads);
        prop_assert!(s.write_misses <= s.writes);
        prop_assert!(s.dirty_evictions <= s.evictions);
        prop_assert!(s.dirty_words_written_back <= s.write_back_words);
        // Whole blocks are written back.
        if config.fetch() == config.block() {
            prop_assert_eq!(
                s.write_back_words,
                s.dirty_evictions * config.block().words() as u64
            );
        }
        // Every fill moves exactly the fetch size.
        prop_assert_eq!(s.fill_words, s.fills * config.fetch().words() as u64);
        // Occupancy bounded by capacity.
        prop_assert!(cache.valid_blocks() <= config.blocks());
        // Ratios live in [0, 1] for miss ratios.
        prop_assert!((0.0..=1.0).contains(&s.read_miss_ratio()));
        prop_assert!((0.0..=1.0).contains(&s.write_miss_ratio()));
    }

    /// `probe` never changes observable behaviour: interleaving probes into
    /// an access sequence yields identical statistics.
    #[test]
    fn probe_is_pure(config in arb_config(), accesses in arb_accesses()) {
        let mut plain = Cache::new(config);
        let mut probed = Cache::new(config);
        for &(addr, is_write, pid) in &accesses {
            let a = WordAddr::new(addr);
            probed.probe(a, Pid(pid));
            probed.probe(WordAddr::new(addr ^ 0xff), Pid(pid));
            if is_write {
                plain.write(a, Pid(pid));
                probed.write(a, Pid(pid));
            } else {
                plain.read(a, Pid(pid));
                probed.read(a, Pid(pid));
            }
        }
        prop_assert_eq!(plain.stats(), probed.stats());
    }

    /// After a miss is filled, a probe of the same word hits; after a
    /// no-allocate write miss, it does not.
    #[test]
    fn outcome_matches_probe(config in arb_config(), addr in 0u64..1024, pid in 0u16..4) {
        let mut cache = Cache::new(config);
        let a = WordAddr::new(addr);
        match cache.read(a, Pid(pid)) {
            ReadOutcome::Miss { .. } | ReadOutcome::Hit => {
                prop_assert!(cache.probe(a, Pid(pid)));
            }
        }
        let mut cache = Cache::new(config);
        match cache.write(a, Pid(pid)) {
            WriteOutcome::MissNoAllocate => prop_assert!(!cache.probe(a, Pid(pid))),
            WriteOutcome::MissAllocate { .. } | WriteOutcome::Hit { .. } => {
                prop_assert!(cache.probe(a, Pid(pid)));
            }
        }
    }

    /// Flushing after any sequence leaves no dirty blocks, and the flushed
    /// dirty-word totals never exceed the words written.
    #[test]
    fn flush_bounds(config in arb_config(), accesses in arb_accesses()) {
        let mut cache = Cache::new(config);
        let mut stores = 0u64;
        for &(addr, is_write, pid) in &accesses {
            let a = WordAddr::new(addr);
            if is_write {
                cache.write(a, Pid(pid));
                stores += 1;
            } else {
                cache.read(a, Pid(pid));
            }
        }
        let flushed = cache.flush_dirty();
        let flushed_dirty: u64 = flushed.iter().map(|e| e.dirty_words as u64).sum();
        let prior_dirty = cache.stats().dirty_words_written_back;
        prop_assert!(flushed_dirty + prior_dirty <= stores,
            "dirty words ({flushed_dirty} + {prior_dirty}) cannot exceed stores ({stores})");
        prop_assert!(cache.flush_dirty().is_empty());
    }

    /// Two identically configured caches fed the same sequence agree
    /// event-for-event (determinism, including random replacement).
    #[test]
    fn deterministic_replay(config in arb_config(), accesses in arb_accesses()) {
        let mut a = Cache::new(config);
        let mut b = Cache::new(config);
        for &(addr, is_write, pid) in &accesses {
            let w = WordAddr::new(addr);
            if is_write {
                prop_assert_eq!(a.write(w, Pid(pid)), b.write(w, Pid(pid)));
            } else {
                prop_assert_eq!(a.read(w, Pid(pid)), b.read(w, Pid(pid)));
            }
        }
    }

    /// In a virtual cache, relabeling the single process id leaves the
    /// miss sequence unchanged.
    #[test]
    fn pid_relabel_invariance(config in arb_config(), accesses in arb_accesses()) {
        let mut a = Cache::new(config);
        let mut b = Cache::new(config);
        for &(addr, is_write, _) in &accesses {
            let w = WordAddr::new(addr);
            if is_write {
                prop_assert_eq!(a.write(w, Pid(1)).is_hit(), b.write(w, Pid(9)).is_hit());
            } else {
                prop_assert_eq!(a.read(w, Pid(1)).is_hit(), b.read(w, Pid(9)).is_hit());
            }
        }
    }
}
