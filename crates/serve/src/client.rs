//! A tiny blocking HTTP/1.1 client for talking to `ctserve` — used by the
//! bench load generator and the verify smoke test, so neither needs curl
//! or an HTTP crate. Keep-alive: one [`HttpClient`] holds one connection
//! and issues requests serially over it.
//!
//! The client is deliberately retry-aware but conservative about it:
//! only **idempotent** requests (`GET`s, and `POST /v1/replay`, which is
//! a pure read of the content-addressed store) are retried. A `POST
//! /v1/simulate` is never resent automatically — a shed simulate is the
//! server telling the caller to back off, and the caller decides.
//! Backoff is exponential with seeded jitter ([`ClientConfig::retry_seed`]),
//! and a server-sent `Retry-After` overrides the computed delay (capped
//! by [`ClientConfig::backoff_cap`]).

use cachetime_testkit::SplitMix64;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Tuning for [`HttpClient`]; the [`Default`] matches the pre-config
/// behavior (120 s read timeout, no retries).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-read socket timeout. A hung server fails the caller instead of
    /// wedging it; simulate on a full-scale trace stays well under 120 s.
    pub read_timeout: Duration,
    /// Retry attempts *after* the first try, for idempotent requests only.
    pub retries: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: Duration,
    /// Ceiling on any single delay, including server-sent `Retry-After`.
    pub backoff_cap: Duration,
    /// Seed for the jitter stream, so retry schedules are reproducible in
    /// tests and benches.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(120),
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            retry_seed: 0,
        }
    }
}

/// One keep-alive connection to a `ctserve` instance.
pub struct HttpClient {
    addr: String,
    stream: TcpStream,
    buf: Vec<u8>,
    config: ClientConfig,
    rng: SplitMix64,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:8080"`) with the default
    /// [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Connection failures from the OS.
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit tuning.
    ///
    /// # Errors
    ///
    /// Connection failures from the OS.
    pub fn connect_with(addr: &str, config: ClientConfig) -> std::io::Result<HttpClient> {
        let stream = open_stream(addr, &config)?;
        let rng = SplitMix64::from_seed(config.retry_seed);
        Ok(HttpClient {
            addr: addr.to_string(),
            stream,
            buf: Vec::new(),
            config,
            rng,
        })
    }

    /// Sends one request and reads one response; returns `(status, body)`.
    ///
    /// Idempotent requests (`GET`, `POST /v1/replay`) are retried up to
    /// [`ClientConfig::retries`] times on I/O failure or a `503`, with
    /// exponential backoff + jitter; a `503`'s `Retry-After` (capped)
    /// overrides the computed delay. Anything else gets exactly one try.
    ///
    /// # Errors
    ///
    /// I/O failures, or a response the client cannot frame, after retries
    /// (if any) are exhausted.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let idempotent = method == "GET" || (method == "POST" && path == "/v1/replay");
        let tries = if idempotent { self.config.retries + 1 } else { 1 };
        let mut delay = self.config.backoff_base;
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..tries {
            if attempt > 0 {
                std::thread::sleep(self.jittered(delay));
                delay = (delay * 2).min(self.config.backoff_cap);
            }
            match self.try_once(method, path, body) {
                Ok((status, retry_after, resp_body)) => {
                    if status == 503 && attempt + 1 < tries {
                        // The server told us to come back; honor its
                        // Retry-After (capped) over our own schedule.
                        if let Some(secs) = retry_after {
                            delay = Duration::from_secs(u64::from(secs))
                                .min(self.config.backoff_cap);
                        }
                        continue;
                    }
                    return Ok((status, resp_body));
                }
                Err(e) => {
                    // The connection is in an unknown state (torn response,
                    // reset): reconnect before any further attempt, even if
                    // this request is out of retries, so the next call on
                    // this client starts clean.
                    self.buf.clear();
                    match open_stream(&self.addr, &self.config) {
                        Ok(s) => self.stream = s,
                        Err(conn_err) => last_err = Some(conn_err),
                    }
                    if last_err.is_none() {
                        last_err = Some(e);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::Other, "request failed")
        }))
    }

    /// `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// `GET` with an empty body.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    fn try_once(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, Option<u32>, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: ctserve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Backoff jitter: uniform in `[0.5, 1.5) × delay`, from the seeded
    /// stream so schedules replay identically for a given seed.
    fn jittered(&mut self, delay: Duration) -> Duration {
        delay.mul_f64(0.5 + self.rng.next_f64())
    }

    fn read_response(&mut self) -> std::io::Result<(u16, Option<u32>, String)> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((consumed, status, retry_after, body)) = frame_response(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok((status, retry_after, body));
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }
}

fn open_stream(addr: &str, config: &ClientConfig) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    Ok(stream)
}

/// Frames one `Content-Length` response at the front of `buf`; returns
/// `(bytes consumed, status, Retry-After secs, body)` when complete.
fn frame_response(buf: &[u8]) -> std::io::Result<Option<(usize, u16, Option<u32>, String)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| invalid("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .map_err(|_| invalid("non-UTF-8 response body"))?;
    Ok(Some((body_start + content_length, status, retry_after, body)))
}

fn invalid(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_a_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}tail";
        let (consumed, status, retry_after, body) = frame_response(raw).unwrap().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert!(retry_after.is_none());
        assert_eq!(&raw[consumed..], b"tail");
    }

    #[test]
    fn waits_for_the_full_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab";
        assert!(frame_response(raw).unwrap().is_none());
    }

    #[test]
    fn error_statuses_come_through() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let (_, status, _, body) = frame_response(raw).unwrap().unwrap();
        assert_eq!(status, 404);
        assert!(body.is_empty());
    }

    #[test]
    fn retry_after_is_parsed() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n";
        let (_, status, retry_after, _) = frame_response(raw).unwrap().unwrap();
        assert_eq!(status, 503);
        assert_eq!(retry_after, Some(1));
    }

    #[test]
    fn jitter_is_seed_deterministic_and_bounded() {
        let cfg = ClientConfig {
            retry_seed: 42,
            ..ClientConfig::default()
        };
        let mut a = SplitMix64::from_seed(cfg.retry_seed);
        let mut b = SplitMix64::from_seed(cfg.retry_seed);
        for _ in 0..100 {
            let fa = 0.5 + a.next_f64();
            let fb = 0.5 + b.next_f64();
            assert!((0.5..1.5).contains(&fa));
            assert_eq!(fa.to_bits(), fb.to_bits());
        }
    }
}
