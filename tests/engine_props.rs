//! Property-based tests over the whole simulator: arbitrary small traces
//! against arbitrary machine configurations, on the hermetic testkit
//! runner.

use cachetime::{LevelTwoConfig, SimResult, Simulator, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_mem::MemoryConfig;
use cachetime_testkit::{check, prop_assert, prop_assert_eq, shrink, CaseResult, SplitMix64};
use cachetime_trace::Trace;
use cachetime_types::{
    AccessKind, Assoc, BlockWords, CacheSize, CycleTime, MemRef, Nanos, Pid, WordAddr,
};

fn gen_ref(rng: &mut SplitMix64) -> MemRef {
    let a = WordAddr::new(rng.gen_range(0u64..2048));
    let pid = Pid(rng.gen_range(0u16..3));
    match rng.gen_range(0u8..3) {
        0 => MemRef::ifetch(a, pid),
        1 => MemRef::load(a, pid),
        _ => MemRef::store(a, pid),
    }
}

fn gen_refs(rng: &mut SplitMix64) -> Vec<MemRef> {
    let n = rng.gen_range(1usize..300);
    (0..n).map(|_| gen_ref(rng)).collect()
}

fn try_gen_system(rng: &mut SplitMix64) -> Option<SystemConfig> {
    let l1 = CacheConfig::builder(CacheSize::from_kib(1 << rng.gen_range(1u32..4)).ok()?)
        .block(BlockWords::new(1 << rng.gen_range(0u32..4)).ok()?)
        .assoc(Assoc::new(1 << rng.gen_range(0u32..3)).ok()?)
        .build()
        .ok()?;
    let mut b = SystemConfig::builder();
    b.cycle_time(CycleTime::from_ns(rng.gen_range(5u32..81)).ok()?)
        .l1_both(l1)
        .dual_issue(rng.gen_bool(0.5))
        .early_continuation(rng.gen_bool(0.5))
        .memory(
            MemoryConfig::builder()
                .wb_depth(rng.gen_range(0u32..6))
                .build()
                .ok()?,
        );
    if rng.gen_bool(0.5) {
        let l2 = CacheConfig::builder(CacheSize::from_kib(64).ok()?)
            .block(BlockWords::new(16).ok()?)
            .build()
            .ok()?;
        b.l2(LevelTwoConfig::new(l2));
    }
    b.build().ok()
}

fn gen_system(rng: &mut SplitMix64) -> SystemConfig {
    loop {
        // Rejection-sample the rare invalid combination.
        if let Some(config) = try_gen_system(rng) {
            return config;
        }
    }
}

fn check_result(r: &SimResult, refs: &[MemRef]) -> CaseResult {
    let n = refs.len() as u64;
    prop_assert_eq!(r.refs, n);
    prop_assert!(r.couplets >= n.div_ceil(2), "pairing at most halves slots");
    prop_assert!(r.couplets <= n);
    prop_assert!(r.cycles.0 >= r.couplets, "every couplet costs a cycle");
    prop_assert_eq!(r.latency.count(), r.couplets);
    // A generous per-reference upper bound: worst path is a TLB-less
    // dirty miss through two levels with giant blocks.
    prop_assert!(
        r.cycles.0 <= n * 2_000,
        "cycles {} absurd for {} refs",
        r.cycles.0,
        n
    );
    let stores = refs.iter().filter(|r| r.kind == AccessKind::Store).count() as u64;
    prop_assert_eq!(r.l1d.writes, stores);
    prop_assert_eq!(r.l1i.reads + r.l1d.reads, n - stores);
    Ok(())
}

/// Structural invariants hold for any machine on any trace.
#[test]
fn simulator_invariants() {
    check(
        "simulator_invariants",
        |rng| (gen_system(rng), gen_refs(rng)),
        shrink::pair_vec,
        |(config, refs)| {
            if refs.is_empty() {
                return Ok(()); // shrunk away; invariants need >= 1 ref
            }
            let trace = Trace::new("prop", refs.clone(), 0);
            let r = Simulator::new(config).run(&trace);
            check_result(&r, refs)
        },
    );
}

/// Simulation is a pure function of (config, trace).
#[test]
fn simulation_is_deterministic() {
    check(
        "simulation_is_deterministic",
        |rng| (gen_system(rng), gen_refs(rng)),
        shrink::pair_vec,
        |(config, refs)| {
            let trace = Trace::new("prop", refs.clone(), 0);
            let a = Simulator::new(config).run(&trace);
            let b = Simulator::new(config).run(&trace);
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

/// Appending references never reduces the total cycle count (time is
/// monotone in work).
#[test]
fn cycles_monotone_in_trace_prefix() {
    check(
        "cycles_monotone_in_trace_prefix",
        |rng| (gen_system(rng), gen_refs(rng)),
        shrink::pair_vec,
        |(config, refs)| {
            let half = refs.len() / 2;
            if half == 0 {
                return Ok(());
            }
            let t_half = Trace::new("half", refs[..half].to_vec(), 0);
            let t_full = Trace::new("full", refs.clone(), 0);
            let c_half = Simulator::new(config).run(&t_half).cycles;
            let c_full = Simulator::new(config).run(&t_full).cycles;
            prop_assert!(c_full >= c_half, "{c_full} < {c_half}");
            Ok(())
        },
    );
}

/// A slower clock never increases the cycle count (quantized costs are
/// non-increasing in cycle time), and never decreases execution time
/// by more than the pure clock ratio.
#[test]
fn slower_clock_needs_no_more_cycles() {
    check(
        "slower_clock_needs_no_more_cycles",
        |rng| {
            (
                (rng.gen_range(10u32..40), rng.gen_range(2u32..4)),
                gen_refs(rng),
            )
        },
        shrink::pair_vec,
        |((ct_a, mult), refs)| {
            let ct_b = ct_a * mult;
            let mk = |ns: u32| {
                let l1 = CacheConfig::builder(CacheSize::from_kib(4).expect("pow2"))
                    .build()
                    .expect("valid");
                SystemConfig::builder()
                    .cycle_time(CycleTime::from_ns(ns).expect("nonzero"))
                    .l1_both(l1)
                    .build()
                    .expect("valid")
            };
            let trace = Trace::new("prop", refs.clone(), 0);
            let fast = Simulator::new(&mk(*ct_a)).run(&trace);
            let slow = Simulator::new(&mk(ct_b)).run(&trace);
            prop_assert!(
                slow.cycles <= fast.cycles,
                "slower clock took more cycles: {} vs {}",
                slow.cycles,
                fast.cycles
            );
            // And execution time cannot shrink when the clock slows by an
            // integer multiple: every quantized cost in ns is
            // non-decreasing.
            prop_assert!(
                slow.exec_time() >= fast.exec_time(),
                "slower clock finished sooner: {} vs {}",
                slow.exec_time(),
                fast.exec_time()
            );
            Ok(())
        },
    );
}

/// Miss behaviour is organizational: cycle time never changes miss
/// counts (only their cost).
#[test]
fn miss_counts_independent_of_clock() {
    check(
        "miss_counts_independent_of_clock",
        |rng| (rng.gen_range(10u32..80), gen_refs(rng)),
        shrink::pair_vec,
        |(ct, refs)| {
            let mk = |ns: u32| {
                let l1 = CacheConfig::builder(CacheSize::from_kib(2).expect("pow2"))
                    .build()
                    .expect("valid");
                SystemConfig::builder()
                    .cycle_time(CycleTime::from_ns(ns).expect("nonzero"))
                    .l1_both(l1)
                    .build()
                    .expect("valid")
            };
            let trace = Trace::new("prop", refs.clone(), 0);
            let a = Simulator::new(&mk(40)).run(&trace);
            let b = Simulator::new(&mk(*ct)).run(&trace);
            prop_assert_eq!(a.l1d.read_misses, b.l1d.read_misses);
            prop_assert_eq!(a.l1i.read_misses, b.l1i.read_misses);
            prop_assert_eq!(a.l1d.write_misses, b.l1d.write_misses);
            Ok(())
        },
    );
}

/// A slower memory never speeds the machine up.
#[test]
fn slower_memory_never_helps() {
    check(
        "slower_memory_never_helps",
        |rng| (rng.gen_range(0u64..400), gen_refs(rng)),
        shrink::pair_vec,
        |(extra, refs)| {
            let mk = |lat: u64| {
                let l1 = CacheConfig::builder(CacheSize::from_kib(2).expect("pow2"))
                    .build()
                    .expect("valid");
                SystemConfig::builder()
                    .l1_both(l1)
                    .memory(
                        MemoryConfig::builder()
                            .read_op(Nanos(180 + lat))
                            .build()
                            .expect("valid"),
                    )
                    .build()
                    .expect("valid")
            };
            let trace = Trace::new("prop", refs.clone(), 0);
            let base = Simulator::new(&mk(0)).run(&trace);
            let slow = Simulator::new(&mk(*extra)).run(&trace);
            prop_assert!(slow.cycles >= base.cycles);
            Ok(())
        },
    );
}
