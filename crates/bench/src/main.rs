//! In-tree throughput harness — no external benchmark framework needed.
//!
//! `cargo run -p cachetime-bench --release -- sweep [scale]` times a
//! Figure 3-1-style speed–size grid three ways — direct single-pass
//! simulation of every cell, the two-phase record-once/replay-per-cell
//! pipeline, and the two-phase pipeline on a worker pool — prints
//! cells/sec for each, and writes the numbers to `BENCH_sweep.json` for
//! tracking across commits. The Criterion benches (`benches/`) remain
//! available behind the `criterion` feature for statistically rigorous
//! comparisons; this harness is the one that runs offline with zero
//! dependencies.

use cachetime::{replay_many, simulate, sweep, BehavioralSim, SimResult, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_trace::{catalog, Trace};
use cachetime_types::{CacheSize, CycleTime};
use std::time::Duration;

const DEFAULT_SCALE: f64 = 0.05;

/// The paper's §3 per-cache size axis: 2 KB through 2 MB. With the 16
/// cycle times below this is exactly the 11×16 speed–size grid the
/// two-phase pipeline was built for: 176 simulations per trace become 11
/// behavioral passes plus 176 replays.
const SIZES_KIB: [u64; 11] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// The paper's full cycle-time axis — the dimension repricing collapses.
const CYCLE_TIMES_NS: [u32; 16] = [
    20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64, 68, 72, 76, 80,
];

fn build_config(size_kib: u64, ct_ns: u32) -> SystemConfig {
    let l1 = CacheConfig::builder(CacheSize::from_kib(size_kib).expect("pow2"))
        .build()
        .expect("valid cache");
    SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(ct_ns).expect("nonzero"))
        .l1_both(l1)
        .build()
        .expect("valid system")
}

/// One grid cell: per-cache size × cycle time × trace index.
#[derive(Debug, Clone, Copy)]
struct Cell {
    size_kib: u64,
    ct_ns: u32,
    trace: usize,
}

fn build_cells(n_traces: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for size_kib in SIZES_KIB {
        for ct_ns in CYCLE_TIMES_NS {
            for trace in 0..n_traces {
                cells.push(Cell {
                    size_kib,
                    ct_ns,
                    trace,
                });
            }
        }
    }
    cells
}

/// One two-phase unit: an organization × trace pairing whose task records
/// the behavioral events once and replays every cycle time.
#[derive(Debug, Clone, Copy)]
struct OrgTask {
    size_kib: u64,
    trace: usize,
}

fn build_org_tasks(n_traces: usize) -> Vec<OrgTask> {
    let mut tasks = Vec::new();
    for size_kib in SIZES_KIB {
        for trace in 0..n_traces {
            tasks.push(OrgTask { size_kib, trace });
        }
    }
    tasks
}

struct Measurement {
    jobs: usize,
    wall: Duration,
    cells: usize,
    results: Vec<SimResult>,
}

impl Measurement {
    fn cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.wall.as_secs_f64()
    }
}

/// Times the pre-refactor path: one full simulation per grid cell.
fn measure_direct(cells: &[Cell], traces: &[Trace], jobs: usize) -> Measurement {
    let run = sweep::run(cells, jobs, |_, c| {
        simulate(&build_config(c.size_kib, c.ct_ns), &traces[c.trace])
    })
    .expect("sweep succeeds");
    Measurement {
        jobs: run.jobs,
        wall: run.wall_time,
        cells: cells.len(),
        results: run.results,
    }
}

/// Times the two-phase path: per organization×trace, one behavioral pass
/// plus a timing replay per cycle time.
fn measure_two_phase(tasks: &[OrgTask], traces: &[Trace], jobs: usize) -> Measurement {
    let run = sweep::run(tasks, jobs, |_, t| {
        let configs: Vec<SystemConfig> = CYCLE_TIMES_NS
            .iter()
            .map(|&ct| build_config(t.size_kib, ct))
            .collect();
        let events = BehavioralSim::new(&configs[0].organization()).record(&traces[t.trace]);
        replay_many(&events, &configs).expect("same organization")
    })
    .expect("sweep succeeds");
    Measurement {
        jobs: run.jobs,
        wall: run.wall_time,
        cells: tasks.len() * CYCLE_TIMES_NS.len(),
        results: run.results.into_iter().flatten().collect(),
    }
}

/// The direct grid is cell-major (sizes × cts × traces); the two-phase
/// grid is task-major (sizes × traces, cts inside). Reindex and compare —
/// the bench doubles as a full-grid equivalence check.
fn assert_equivalent(direct: &Measurement, two_phase: &Measurement, n_traces: usize) {
    let n_cts = CYCLE_TIMES_NS.len();
    for (si, _) in SIZES_KIB.iter().enumerate() {
        for ci in 0..n_cts {
            for t in 0..n_traces {
                let d = &direct.results[(si * n_cts + ci) * n_traces + t];
                let p = &two_phase.results[(si * n_traces + t) * n_cts + ci];
                assert_eq!(d, p, "divergence at size[{si}] ct[{ci}] trace[{t}]");
            }
        }
    }
}

fn run_sweep_bench(scale: f64) {
    let specs = catalog::all(scale);
    eprintln!("[bench] generating {} traces at scale {scale}...", specs.len());
    let traces: Vec<Trace> = specs.iter().map(|s| s.generate()).collect();
    let cells = build_cells(traces.len());
    let org_tasks = build_org_tasks(traces.len());
    let refs_per_pass: u64 = cells
        .iter()
        .map(|c| traces[c.trace].refs().len() as u64)
        .sum();
    let available_jobs = sweep::available_jobs();
    eprintln!(
        "[bench] grid: {} cells ({} organizations × {} cycle times), \
         {refs_per_pass} refs per direct pass, {available_jobs} jobs available",
        cells.len(),
        org_tasks.len(),
        CYCLE_TIMES_NS.len()
    );

    // Warm-up pass so page faults and lazy allocation don't bias the
    // first timed leg.
    let _ = measure_two_phase(&org_tasks, &traces, 1);

    let direct = measure_direct(&cells, &traces, 1);
    let two_phase = measure_two_phase(&org_tasks, &traces, 1);
    let parallel = measure_two_phase(&org_tasks, &traces, 0);
    assert_equivalent(&direct, &two_phase, traces.len());

    let repricing_speedup = direct.wall.as_secs_f64() / two_phase.wall.as_secs_f64();
    println!(
        "direct    (1 job):    {:>8.1} cells/sec  wall {:?}",
        direct.cells_per_sec(),
        direct.wall
    );
    println!(
        "two-phase (1 job):    {:>8.1} cells/sec  wall {:?}",
        two_phase.cells_per_sec(),
        two_phase.wall
    );
    println!(
        "two-phase ({} jobs): {:>8.1} cells/sec  wall {:?}",
        parallel.jobs,
        parallel.cells_per_sec(),
        parallel.wall
    );
    println!("repricing speedup (direct → two-phase, serial): {repricing_speedup:.2}x");

    // A 1-core host runs the "parallel" leg with one worker; a speedup of
    // 1.0x there is a tautology, not a measurement, so record it as null.
    let parallel_speedup = if parallel.jobs > two_phase.jobs {
        let s = two_phase.wall.as_secs_f64() / parallel.wall.as_secs_f64();
        println!("parallel speedup ({} jobs): {s:.2}x", parallel.jobs);
        format!("{s:.3}")
    } else {
        println!(
            "parallel speedup: not measured (only {} job available)",
            parallel.jobs
        );
        "null".to_string()
    };

    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"scale\": {scale},\n  \"cells\": {},\n  \
         \"organizations\": {},\n  \"cycle_times\": {},\n  \
         \"refs_per_pass\": {refs_per_pass},\n  \"available_jobs\": {available_jobs},\n  \
         \"direct\": {{ \"jobs\": {}, \"wall_secs\": {:.6}, \"cells_per_sec\": {:.1} }},\n  \
         \"two_phase\": {{ \"jobs\": {}, \"wall_secs\": {:.6}, \"cells_per_sec\": {:.1} }},\n  \
         \"two_phase_parallel\": {{ \"jobs\": {}, \"wall_secs\": {:.6}, \"cells_per_sec\": {:.1} }},\n  \
         \"repricing_speedup\": {repricing_speedup:.3},\n  \
         \"parallel_speedup\": {parallel_speedup}\n}}\n",
        cells.len(),
        org_tasks.len(),
        CYCLE_TIMES_NS.len(),
        direct.jobs,
        direct.wall.as_secs_f64(),
        direct.cells_per_sec(),
        two_phase.jobs,
        two_phase.wall.as_secs_f64(),
        two_phase.cells_per_sec(),
        parallel.jobs,
        parallel.wall.as_secs_f64(),
        parallel.cells_per_sec(),
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    eprintln!("[bench] wrote BENCH_sweep.json");
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("sweep") => {
            let scale = match args.next() {
                Some(s) => s.parse().unwrap_or_else(|_| {
                    eprintln!("invalid scale {s:?}; expected a float like 0.05");
                    std::process::exit(2);
                }),
                None => DEFAULT_SCALE,
            };
            run_sweep_bench(scale);
        }
        _ => {
            eprintln!("usage: cachetime-bench sweep [scale]");
            eprintln!();
            eprintln!("  sweep    time a speed/size grid: direct per-cell simulation vs");
            eprintln!("           the two-phase record/replay pipeline (serial and");
            eprintln!("           parallel), print cells/sec, write BENCH_sweep.json");
            std::process::exit(2);
        }
    }
}
