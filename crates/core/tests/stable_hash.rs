//! Stable-hash contract tests over realistic configurations: equal configs
//! hash equal regardless of how they were constructed, and the digests of
//! every distinct point the paper's experiments touch are collision-free.

use cachetime::{keyed, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_trace::catalog;
use cachetime_types::{stable_hash_of, CacheSize, CycleTime};
use std::collections::HashMap;

/// The §3 speed–size grid axes (11 sizes × 16 cycle times).
const SIZES_KIB: [u64; 11] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];
const CYCLE_TIMES_NS: [u32; 16] = [
    20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64, 68, 72, 76, 80,
];

fn grid_config(size_kib: u64, cycle_ns: u32) -> SystemConfig {
    let l1 = CacheConfig::builder(CacheSize::from_kib(size_kib).unwrap())
        .build()
        .unwrap();
    SystemConfig::builder()
        .l1_both(l1)
        .cycle_time(CycleTime::from_ns(cycle_ns).unwrap())
        .build()
        .unwrap()
}

#[test]
fn equal_configs_hash_equal_regardless_of_construction_order() {
    // Same logical configuration, assembled through different paths: the
    // builder with fields set in one order, the builder in another order,
    // and reassembly from a split organization/timing pair.
    let a = SystemConfig::builder()
        .cycle_time(CycleTime::from_ns(36).unwrap())
        .l1_both(
            CacheConfig::builder(CacheSize::from_kib(64).unwrap())
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let b = SystemConfig::builder()
        .l1_both(
            CacheConfig::builder(CacheSize::from_kib(64).unwrap())
                .build()
                .unwrap(),
        )
        .cycle_time(CycleTime::from_ns(36).unwrap())
        .build()
        .unwrap();
    let c = SystemConfig::from_parts(&a.organization(), &a.timing()).unwrap();
    assert_eq!(stable_hash_of(&a), stable_hash_of(&b));
    assert_eq!(stable_hash_of(&a), stable_hash_of(&c));
    assert_eq!(
        stable_hash_of(&a.organization()),
        stable_hash_of(&c.organization())
    );
}

#[test]
fn whole_config_hash_distinguishes_every_grid_point() {
    // All 176 (size, cycle-time) points of the paper grid must digest to
    // distinct values — a collision would silently merge two sweep cells.
    let mut seen: HashMap<u64, (u64, u32)> = HashMap::new();
    for &size in &SIZES_KIB {
        for &ct in &CYCLE_TIMES_NS {
            let h = stable_hash_of(&grid_config(size, ct));
            if let Some(prev) = seen.insert(h, (size, ct)) {
                panic!("hash collision: {prev:?} vs ({size}, {ct})");
            }
        }
    }
    assert_eq!(seen.len(), SIZES_KIB.len() * CYCLE_TIMES_NS.len());
}

#[test]
fn trace_keys_distinguish_catalog_by_organization() {
    // The content-addressed store's key space: 8 catalog traces × 11
    // organizations (grid sizes). Timing must NOT move the key; every
    // (organization, workload) pair must get its own.
    let mut seen: HashMap<u64, (u64, String)> = HashMap::new();
    for &size in &SIZES_KIB {
        let org = grid_config(size, 40).organization();
        for spec in catalog::all(0.01) {
            let k = keyed::trace_key(&org, &spec);
            if let Some(prev) = seen.insert(k, (size, spec.name.clone())) {
                panic!("key collision: {prev:?} vs ({size}, {})", spec.name);
            }
            // The key is a function of the organization half only: any
            // cycle time yields the same key.
            for &ct in &CYCLE_TIMES_NS {
                assert_eq!(k, keyed::trace_key(&grid_config(size, ct).organization(), &spec));
            }
        }
    }
    assert_eq!(seen.len(), SIZES_KIB.len() * 8);
}

#[test]
fn hashes_are_stable_across_processes_in_spirit() {
    // stable_hash_of must be a pure function of field values — repeated
    // digests of freshly-built equal values agree.
    let spec = catalog::rd2n7(0.01);
    let again = catalog::rd2n7(0.01);
    assert_eq!(stable_hash_of(&spec), stable_hash_of(&again));
    let config = SystemConfig::paper_default().unwrap();
    let again = SystemConfig::paper_default().unwrap();
    assert_eq!(stable_hash_of(&config), stable_hash_of(&again));
}
