//! The durable segment store: one file per trace key, atomic spills,
//! quarantine-on-corruption recovery, oldest-first eviction.

use crate::fault::{mangle, DiskFault, DiskOp, FaultHook};
use crate::metrics::DiskMetrics;
use crate::segment;
use cachetime::{codec, EventTrace};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// File extension of a sealed segment.
const SEG_EXT: &str = "seg";

/// Subdirectory corrupt segments are moved into (never deleted: they are
/// evidence).
const QUARANTINE_DIR: &str = "quarantine";

/// Monotonic discriminator for temp-file names, so concurrent spills in
/// one process never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// What a spill actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillResult {
    /// A new segment was durably written.
    Written,
    /// The key already had a segment; nothing was rewritten (segments are
    /// content-addressed, so an existing file is already correct).
    AlreadyPresent,
    /// An injected write fault left a torn or corrupted file under the
    /// final name — the crash image recovery must later quarantine. The
    /// segment is *not* indexed and will not serve reads.
    Corrupted,
}

/// Outcome of a startup scan, also exported under `/v1/stats` by the
/// server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Valid segments streamed into the sink.
    pub recovered: u64,
    /// Corrupt files moved into `quarantine/`.
    pub quarantined: u64,
    /// Abandoned temp files removed (a crash between write and rename).
    pub stale_tmp: u64,
    /// Bytes of recovered segments now accounted against the budget.
    pub bytes: u64,
}

/// Configuration of a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Directory holding the segments (created if missing, along with its
    /// `quarantine/` subdirectory).
    pub root: PathBuf,
    /// Byte budget for live segments; `0` means unlimited. When a spill
    /// pushes the total over budget, oldest-mtime segments are deleted
    /// until it fits.
    pub budget_bytes: u64,
}

struct SegmentInfo {
    len: u64,
    mtime: SystemTime,
}

#[derive(Default)]
struct Index {
    segments: HashMap<u64, SegmentInfo>,
    bytes: u64,
}

/// A crash-safe, content-addressed segment store.
///
/// Keys are the store's stable SplitMix64 trace keys; the 16-hex key is
/// the file name, so the directory *is* the index and recovery needs no
/// journal. Writes go to a temp file in the same directory, are fsynced,
/// and land under the final name with an atomic rename (followed by a
/// directory fsync), so a segment either exists completely or not at
/// all — the only torn states a real crash can leave are a stale temp
/// file (removed on scan) or lost dirty pages (caught by the checksum
/// and quarantined).
pub struct SegmentStore {
    root: PathBuf,
    quarantine: PathBuf,
    budget_bytes: u64,
    metrics: DiskMetrics,
    fault: Option<FaultHook>,
    index: Mutex<Index>,
}

impl SegmentStore {
    /// Opens (creating if needed) the store rooted at `config.root`, with
    /// metrics registered standalone (not in any registry).
    pub fn open(config: DiskConfig) -> io::Result<Self> {
        Self::open_with_metrics(config, DiskMetrics::standalone())
    }

    /// Opens the store with externally built metrics handles (typically
    /// [`DiskMetrics::in_registry`]).
    pub fn open_with_metrics(config: DiskConfig, metrics: DiskMetrics) -> io::Result<Self> {
        let quarantine = config.root.join(QUARANTINE_DIR);
        fs::create_dir_all(&quarantine)?;
        Ok(SegmentStore {
            root: config.root,
            quarantine,
            budget_bytes: config.budget_bytes,
            metrics,
            fault: None,
            index: Mutex::new(Index::default()),
        })
    }

    /// Installs an I/O fault hook (tests only; see [`crate::fault`]).
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault = Some(hook);
        self
    }

    /// The store's metric handles.
    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of live (indexed) segments.
    pub fn segments(&self) -> u64 {
        self.index.lock().unwrap().segments.len() as u64
    }

    /// Bytes of live segments.
    pub fn bytes(&self) -> u64 {
        self.index.lock().unwrap().bytes
    }

    /// Whether a live segment exists for `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.index.lock().unwrap().segments.contains_key(&key)
    }

    fn seg_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}.{SEG_EXT}"))
    }

    fn fault_for(&self, op: DiskOp, key: u64, len: usize) -> DiskFault {
        match &self.fault {
            Some(hook) => hook(op, key, len),
            None => DiskFault::None,
        }
    }

    /// Durably spills one trace. Returns what happened; counts every
    /// outcome on the metrics.
    ///
    /// # Errors
    ///
    /// Propagates real (or injected [`DiskFault::Error`]) I/O failures;
    /// the store stays consistent either way.
    pub fn store(&self, key: u64, trace: &EventTrace) -> io::Result<SpillResult> {
        if self.contains(key) {
            return Ok(SpillResult::AlreadyPresent);
        }
        let sealed = segment::seal(key, &codec::encode(trace));
        let final_path = self.seg_path(key);
        match self.fault_for(DiskOp::Write, key, sealed.len()) {
            DiskFault::None => {}
            fault => {
                self.metrics.spill_errors.inc();
                let Some(bytes) = mangle(&sealed, fault) else {
                    return Err(io::Error::other("injected disk.write error"));
                };
                // A crash image: mangled bytes under the final name, no
                // fsync, no index entry. Recovery quarantines it.
                fs::write(&final_path, bytes)?;
                return Ok(SpillResult::Corrupted);
            }
        }
        let tmp_path = self.root.join(format!(
            "{key:016x}.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let written = (|| -> io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&sealed)?;
            f.sync_all()?;
            fs::rename(&tmp_path, &final_path)?;
            // The rename is durable only once the directory entry is; a
            // crash before this fsync may resurface the temp name, which
            // the startup scan removes.
            fs::File::open(&self.root)?.sync_all()?;
            Ok(())
        })();
        if let Err(e) = written {
            self.metrics.spill_errors.inc();
            let _ = fs::remove_file(&tmp_path);
            return Err(e);
        }
        let len = sealed.len() as u64;
        self.index_insert(key, len, SystemTime::now());
        self.metrics.spills.inc();
        self.metrics.spill_bytes.add(len);
        self.evict_over_budget(key);
        Ok(SpillResult::Written)
    }

    /// Loads one trace by key. `None` means not present — including
    /// segments that turned out corrupt (they are quarantined on the
    /// spot) and injected read errors; read-through callers treat all of
    /// those as a miss and re-record.
    pub fn load(&self, key: u64) -> Option<EventTrace> {
        if !self.contains(key) {
            self.metrics.load_misses.inc();
            return None;
        }
        let path = self.seg_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.metrics.load_errors.inc();
                self.index_remove(key);
                return None;
            }
        };
        let bytes = match mangle(&bytes, self.fault_for(DiskOp::Read, key, bytes.len())) {
            Some(b) => b,
            None => {
                self.metrics.load_errors.inc();
                return None;
            }
        };
        match segment::open(key, &bytes).map_err(|e| e.to_string()).and_then(|payload| {
            codec::decode(payload).map_err(|e| e.to_string())
        }) {
            Ok(trace) => {
                self.metrics.loads.inc();
                Some(trace)
            }
            Err(_) => {
                self.quarantine_file(&path);
                self.index_remove(key);
                self.metrics.load_errors.inc();
                None
            }
        }
    }

    /// Startup recovery: validates every segment in the directory,
    /// streams the intact ones (in unspecified order) into `sink`,
    /// quarantines the rest, and removes abandoned temp files. Rebuilds
    /// the in-memory index; call once, before serving.
    ///
    /// # Errors
    ///
    /// Only on directory-level I/O failures (cannot list the root);
    /// per-file corruption never errors — that is the case this scan
    /// exists to absorb.
    pub fn scan(&self, mut sink: impl FnMut(u64, EventTrace)) -> io::Result<ScanReport> {
        let mut report = ScanReport::default();
        let mut recovered: Vec<(u64, u64, SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.is_dir() {
                continue; // quarantine/ and anything else nested
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                self.quarantine_file(&path);
                report.quarantined += 1;
                continue;
            };
            if name.contains(".tmp-") {
                let _ = fs::remove_file(&path);
                report.stale_tmp += 1;
                continue;
            }
            let key = match name.strip_suffix(&format!(".{SEG_EXT}")) {
                Some(hex) if hex.len() == 16 => u64::from_str_radix(hex, 16).ok(),
                _ => None,
            };
            let Some(key) = key else {
                // Not a segment, not a temp file: foreign garbage.
                self.quarantine_file(&path);
                report.quarantined += 1;
                continue;
            };
            let trace = fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| {
                    segment::open(key, &bytes)
                        .map_err(|e| e.to_string())
                        .and_then(|payload| codec::decode(payload).map_err(|e| e.to_string()))
                        .map(|trace| (trace, bytes.len() as u64))
                });
            match trace {
                Ok((trace, len)) => {
                    let mtime = entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .unwrap_or(SystemTime::UNIX_EPOCH);
                    recovered.push((key, len, mtime));
                    report.recovered += 1;
                    report.bytes += len;
                    sink(key, trace);
                }
                Err(_) => {
                    self.quarantine_file(&path);
                    report.quarantined += 1;
                }
            }
        }
        {
            let mut index = self.index.lock().unwrap();
            index.segments.clear();
            index.bytes = 0;
            for (key, len, mtime) in recovered {
                index.segments.insert(key, SegmentInfo { len, mtime });
                index.bytes += len;
            }
            self.metrics.segments.set(index.segments.len() as i64);
            self.metrics.bytes.set(index.bytes as i64);
        }
        self.metrics.recovered.add(report.recovered);
        self.metrics.quarantined.add(report.quarantined);
        self.evict_over_budget(0);
        Ok(report)
    }

    fn index_insert(&self, key: u64, len: u64, mtime: SystemTime) {
        let mut index = self.index.lock().unwrap();
        if let Some(old) = index.segments.insert(key, SegmentInfo { len, mtime }) {
            index.bytes -= old.len;
        }
        index.bytes += len;
        self.metrics.segments.set(index.segments.len() as i64);
        self.metrics.bytes.set(index.bytes as i64);
    }

    fn index_remove(&self, key: u64) {
        let mut index = self.index.lock().unwrap();
        if let Some(info) = index.segments.remove(&key) {
            index.bytes -= info.len;
        }
        self.metrics.segments.set(index.segments.len() as i64);
        self.metrics.bytes.set(index.bytes as i64);
    }

    /// Deletes oldest-mtime segments until the byte budget holds. The
    /// just-written `keep` key survives unless it is the only segment
    /// left (a budget smaller than one segment still converges).
    fn evict_over_budget(&self, keep: u64) {
        if self.budget_bytes == 0 {
            return;
        }
        loop {
            let victim = {
                let index = self.index.lock().unwrap();
                if index.bytes <= self.budget_bytes || index.segments.len() <= 1 {
                    break;
                }
                index
                    .segments
                    .iter()
                    .filter(|(k, _)| **k != keep)
                    .min_by_key(|(k, info)| (info.mtime, **k))
                    .map(|(k, _)| *k)
            };
            let Some(victim) = victim else { break };
            let _ = fs::remove_file(self.seg_path(victim));
            self.index_remove(victim);
            self.metrics.evicted.inc();
        }
    }

    /// Moves a corrupt file into `quarantine/`, keeping its name (with a
    /// numeric suffix on collision). Best-effort: a failing rename falls
    /// back to deletion so a poisoned file can never wedge recovery.
    fn quarantine_file(&self, path: &Path) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_string());
        let mut dest = self.quarantine.join(&name);
        let mut n = 0u32;
        while dest.exists() {
            n += 1;
            dest = self.quarantine.join(format!("{name}.{n}"));
        }
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}
