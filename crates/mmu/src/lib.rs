//! Virtual-to-physical translation substrate for `cachetime`.
//!
//! All the paper's headline simulations use *virtual* caches (the process
//! identifier travels in the tag), but its simulator "provides for"
//! translation: "virtual to physical translation can be placed anywhere in
//! the hierarchy". This crate supplies that substrate:
//!
//! * [`PageMap`] — a deterministic first-touch frame allocator: the first
//!   reference to a `(pid, virtual page)` pair claims the next physical
//!   frame, as a simple OS would;
//! * [`Tlb`] — a set-associative translation look-aside buffer with LRU
//!   replacement and a configurable miss penalty;
//! * [`Mmu`] — the pair, fronting the cache hierarchy.
//!
//! Placing translation before the cache turns the hierarchy *physical*:
//! distinct processes stop colliding on identical virtual addresses, which
//! is exactly the effect the paper invokes when explaining why large
//! virtual caches keep benefiting from associativity ("above that the
//! improvements increase because the caches are virtual").
//!
//! # Examples
//!
//! ```
//! use cachetime_mmu::{Mmu, TranslationConfig};
//! use cachetime_types::{Pid, WordAddr};
//!
//! let mut mmu = Mmu::new(TranslationConfig::default());
//! let (phys, hit) = mmu.translate(WordAddr::new(0x12345), Pid(1));
//! assert!(!hit, "first touch misses the TLB");
//! let (again, hit) = mmu.translate(WordAddr::new(0x12345), Pid(1));
//! assert!(hit);
//! assert_eq!(phys, again, "translation is stable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cachetime_types::{ConfigError, Pid, StableHash, StableHasher, WordAddr};
use std::collections::HashMap;
use std::ops::AddAssign;

/// Configuration of the translation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationConfig {
    /// Page size in words (power of two; 1024 words = one 4 KB VAX-style
    /// page).
    pub page_words: u32,
    /// Total TLB entries (power of two).
    pub tlb_entries: u32,
    /// TLB associativity (power of two, ≤ entries).
    pub tlb_assoc: u32,
    /// Cycles added to a reference that misses the TLB (the table walk).
    pub miss_penalty: u64,
}

impl TranslationConfig {
    /// Validates the combination.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for non-power-of-two geometry or an
    /// associativity exceeding the entry count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (what, v) in [
            ("page size (words)", self.page_words),
            ("TLB entries", self.tlb_entries),
            ("TLB associativity", self.tlb_assoc),
        ] {
            if !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    what,
                    value: v as u64,
                });
            }
        }
        if self.tlb_assoc > self.tlb_entries {
            return Err(ConfigError::Inconsistent {
                what: "TLB associativity exceeds entry count",
            });
        }
        Ok(())
    }
}

impl StableHash for TranslationConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.page_words.stable_hash(h);
        self.tlb_entries.stable_hash(h);
        self.tlb_assoc.stable_hash(h);
        self.miss_penalty.stable_hash(h);
    }
}

impl Default for TranslationConfig {
    /// A VAX-flavoured default: 4 KB pages, 64-entry 2-way TLB, 20-cycle
    /// walks.
    fn default() -> Self {
        TranslationConfig {
            page_words: 1024,
            tlb_entries: 64,
            tlb_assoc: 2,
            miss_penalty: 20,
        }
    }
}

/// Deterministic first-touch page-frame allocator.
///
/// Physical frames are handed out in touch order, so translation depends
/// only on the reference stream — simulations stay reproducible.
#[derive(Debug, Clone, Default)]
pub struct PageMap {
    frames: HashMap<(u16, u64), u64>,
    next_frame: u64,
}

impl PageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the physical frame of `(pid, vpn)`, allocating on first
    /// touch.
    pub fn frame(&mut self, pid: Pid, vpn: u64) -> u64 {
        match self.frames.entry((pid.0, vpn)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let f = self.next_frame;
                self.next_frame += 1;
                *e.insert(f)
            }
        }
    }

    /// Number of frames allocated so far (the resident-set size in pages).
    pub fn allocated(&self) -> u64 {
        self.next_frame
    }
}

/// A set-associative TLB with exact-LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: u32,
    assoc: u32,
    /// `(valid, pid, vpn, stamp)` per way, row-major by set.
    entries: Vec<(bool, u16, u64, u64)>,
    clock: u64,
}

impl Tlb {
    /// Creates an empty TLB of `entries` total entries and `assoc` ways.
    pub fn new(entries: u32, assoc: u32) -> Self {
        Tlb {
            sets: entries / assoc,
            assoc,
            entries: vec![(false, 0, 0, 0); entries as usize],
            clock: 0,
        }
    }

    /// Probes (and on miss, installs) the translation for `(pid, vpn)`.
    /// Returns `true` on a hit.
    pub fn access(&mut self, pid: Pid, vpn: u64) -> bool {
        self.clock += 1;
        let set = (vpn % self.sets as u64) as u32;
        let base = (set * self.assoc) as usize;
        let ways = &mut self.entries[base..base + self.assoc as usize];
        if let Some(way) = ways
            .iter_mut()
            .find(|(v, p, e_vpn, _)| *v && *p == pid.0 && *e_vpn == vpn)
        {
            way.3 = self.clock;
            return true;
        }
        // Install over the invalid or least recently used way.
        let victim = ways
            .iter_mut()
            .min_by_key(|(v, _, _, stamp)| if *v { *stamp } else { 0 })
            .expect("assoc >= 1");
        *victim = (true, pid.0, vpn, self.clock);
        false
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MmuStats {
    /// Translations performed.
    pub accesses: u64,
    /// TLB misses (table walks).
    pub misses: u64,
}

impl MmuStats {
    /// Miss ratio (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl AddAssign for MmuStats {
    fn add_assign(&mut self, rhs: MmuStats) {
        self.accesses += rhs.accesses;
        self.misses += rhs.misses;
    }
}

/// The translation unit: page map plus TLB.
#[derive(Debug, Clone)]
pub struct Mmu {
    config: TranslationConfig,
    map: PageMap,
    tlb: Tlb,
    stats: MmuStats,
}

impl Mmu {
    /// Creates an MMU with an empty page map and cold TLB.
    pub fn new(config: TranslationConfig) -> Self {
        Mmu {
            map: PageMap::new(),
            tlb: Tlb::new(config.tlb_entries, config.tlb_assoc),
            stats: MmuStats::default(),
            config,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &TranslationConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &MmuStats {
        &self.stats
    }

    /// Resets statistics (warm-start boundary); TLB and page map persist.
    pub fn reset_stats(&mut self) {
        self.stats = MmuStats::default();
    }

    /// Translates a virtual word address; returns the physical address and
    /// whether the TLB hit (a miss costs the configured walk penalty,
    /// charged by the caller).
    pub fn translate(&mut self, addr: WordAddr, pid: Pid) -> (WordAddr, bool) {
        let page_words = self.config.page_words as u64;
        let vpn = addr.value() / page_words;
        let offset = addr.value() % page_words;
        let hit = self.tlb.access(pid, vpn);
        self.stats.accesses += 1;
        if !hit {
            self.stats.misses += 1;
        }
        let frame = self.map.frame(pid, vpn);
        (WordAddr::new(frame * page_words + offset), hit)
    }

    /// The walk penalty in cycles.
    pub fn miss_penalty(&self) -> u64 {
        self.config.miss_penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(TranslationConfig::default().validate().is_ok());
        let bad = TranslationConfig {
            page_words: 1000,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TranslationConfig {
            tlb_assoc: 128,
            tlb_entries: 64,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn first_touch_allocation_is_sequential() {
        let mut map = PageMap::new();
        assert_eq!(map.frame(Pid(1), 100), 0);
        assert_eq!(map.frame(Pid(1), 200), 1);
        assert_eq!(map.frame(Pid(2), 100), 2, "per-process mapping");
        assert_eq!(map.frame(Pid(1), 100), 0, "stable on re-touch");
        assert_eq!(map.allocated(), 3);
    }

    #[test]
    fn translation_preserves_page_offset() {
        let mut mmu = Mmu::new(TranslationConfig::default());
        let (phys, _) = mmu.translate(WordAddr::new(5 * 1024 + 37), Pid(1));
        assert_eq!(phys.value() % 1024, 37);
    }

    #[test]
    fn same_virtual_page_different_processes_diverge() {
        let mut mmu = Mmu::new(TranslationConfig::default());
        let (a, _) = mmu.translate(WordAddr::new(0x4000), Pid(1));
        let (b, _) = mmu.translate(WordAddr::new(0x4000), Pid(2));
        assert_ne!(a, b, "physical caches must not alias across processes");
    }

    #[test]
    fn tlb_hits_within_working_set() {
        let mut mmu = Mmu::new(TranslationConfig::default());
        for vpn in 0..32u64 {
            mmu.translate(WordAddr::new(vpn * 1024), Pid(1));
        }
        let before = mmu.stats().misses;
        for _ in 0..10 {
            for vpn in 0..32u64 {
                let (_, hit) = mmu.translate(WordAddr::new(vpn * 1024), Pid(1));
                assert!(hit, "32 pages fit a 64-entry TLB");
            }
        }
        assert_eq!(mmu.stats().misses, before);
    }

    #[test]
    fn tlb_capacity_misses_beyond_entries() {
        let mut mmu = Mmu::new(TranslationConfig::default());
        // Cycle through 256 pages: far beyond 64 entries, LRU evicts all.
        for round in 0..3 {
            for vpn in 0..256u64 {
                let (_, hit) = mmu.translate(WordAddr::new(vpn * 1024), Pid(1));
                if round > 0 {
                    assert!(!hit, "cyclic sweep through 4x the TLB must miss");
                }
            }
        }
        assert!(mmu.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn tlb_lru_within_set() {
        let mut tlb = Tlb::new(4, 2); // 2 sets x 2 ways
                                      // vpns 0,2,4 all map to set 0.
        assert!(!tlb.access(Pid(1), 0));
        assert!(!tlb.access(Pid(1), 2));
        assert!(tlb.access(Pid(1), 0), "still resident");
        assert!(!tlb.access(Pid(1), 4), "fills set 0, evicting vpn 2 (LRU)");
        assert!(!tlb.access(Pid(1), 2), "vpn 2 was the victim");
        assert!(tlb.access(Pid(1), 4), "vpn 4 survived");
    }

    #[test]
    fn stats_reset_keeps_translations() {
        let mut mmu = Mmu::new(TranslationConfig::default());
        let (a, _) = mmu.translate(WordAddr::new(0x4000), Pid(1));
        mmu.reset_stats();
        assert_eq!(mmu.stats().accesses, 0);
        let (b, hit) = mmu.translate(WordAddr::new(0x4000), Pid(1));
        assert_eq!(a, b);
        assert!(hit, "TLB state survives the reset");
    }
}
