//! Composable organization features layered on top of a [`CacheConfig`].
//!
//! A plain `CacheConfig` describes the fixed geometry of a cache: size,
//! block, associativity, write policy. The paper's §4 tradeoff study
//! also needs *organization features* that change the lookup path
//! without changing the geometry — a small fully-associative victim
//! buffer behind the cache, and way prediction in front of a
//! set-associative array. These are behavioral: they change which
//! accesses hit, miss, or hit slowly, so Phase A of the two-phase
//! engine must key on them (see `cachetime::keyed::trace_key`).
//!
//! [`OrgFeatures`] is deliberately a separate struct rather than more
//! fields on `CacheConfig`: the default (`OrgFeatures::NONE`) hashes to
//! *nothing* — a config with every feature disabled produces exactly
//! the stable digests and event traces it produced before features
//! existed.

use std::fmt;

use cachetime_types::{ConfigError, StableHash, StableHasher};

/// Largest supported victim-cache entry count.
pub const MAX_VICTIM_ENTRIES: u32 = 64;

/// A small fully-associative FIFO buffer that captures blocks evicted
/// from the cache; misses probe it before going downstream, and a hit
/// swaps the block back without a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCacheConfig {
    entries: u32,
}

impl VictimCacheConfig {
    /// A victim buffer holding `entries` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`] unless `1 <= entries <=`
    /// [`MAX_VICTIM_ENTRIES`].
    pub fn new(entries: u32) -> Result<Self, ConfigError> {
        if entries == 0 || entries > MAX_VICTIM_ENTRIES {
            return Err(ConfigError::OutOfRange {
                what: "victim cache entries",
                value: u64::from(entries),
                min: 1,
                max: u64::from(MAX_VICTIM_ENTRIES),
            });
        }
        Ok(Self { entries })
    }

    /// Number of blocks the buffer holds.
    pub const fn entries(self) -> u32 {
        self.entries
    }
}

/// Which way-prediction scheme guards a set-associative lookup.
///
/// Prediction never changes what hits or misses — it splits read hits
/// into *first hits* (predicted way was right, direct-mapped-speed) and
/// *slow hits* (wrong way predicted, a second probe round is needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WayPrediction {
    /// Predict the most-recently-used way of the set.
    Mru,
    /// Multi-column: a per-set table indexed by low tag bits, so
    /// different blocks mapping to one set can each keep their own
    /// predicted ("major") way.
    MultiColumn,
}

impl WayPrediction {
    const fn hash_tag(self) -> u64 {
        match self {
            WayPrediction::Mru => 0,
            WayPrediction::MultiColumn => 1,
        }
    }
}

impl fmt::Display for WayPrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WayPrediction::Mru => f.write_str("mru"),
            WayPrediction::MultiColumn => f.write_str("multi-column"),
        }
    }
}

/// Optional organization features attached to a [`CacheConfig`].
///
/// The default is everything off, which is behaviorally and
/// hash-identical to a config from before features existed.
///
/// [`CacheConfig`]: crate::CacheConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrgFeatures {
    victim_cache: Option<VictimCacheConfig>,
    way_prediction: Option<WayPrediction>,
}

impl OrgFeatures {
    /// Every feature disabled.
    pub const NONE: Self = Self {
        victim_cache: None,
        way_prediction: None,
    };

    /// The victim buffer, if enabled.
    pub const fn victim_cache(self) -> Option<VictimCacheConfig> {
        self.victim_cache
    }

    /// The way-prediction scheme, if enabled.
    pub const fn way_prediction(self) -> Option<WayPrediction> {
        self.way_prediction
    }

    /// True when every feature is disabled.
    pub const fn is_none(self) -> bool {
        self.victim_cache.is_none() && self.way_prediction.is_none()
    }

    pub(crate) const fn with_victim_cache(mut self, v: VictimCacheConfig) -> Self {
        self.victim_cache = Some(v);
        self
    }

    pub(crate) const fn with_way_prediction(mut self, p: WayPrediction) -> Self {
        self.way_prediction = Some(p);
        self
    }
}

impl StableHash for OrgFeatures {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self.victim_cache {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                h.write_u64(u64::from(v.entries()));
            }
        }
        match self.way_prediction {
            None => h.write_u64(0),
            Some(p) => {
                h.write_u64(1);
                h.write_u64(p.hash_tag());
            }
        }
    }
}

impl fmt::Display for OrgFeatures {
    /// Renders only enabled features, e.g. `victim:8, way-pred:mru`.
    /// Empty when everything is off.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(v) = self.victim_cache {
            write!(f, "victim:{}", v.entries())?;
            sep = ", ";
        }
        if let Some(p) = self.way_prediction {
            write!(f, "{sep}way-pred:{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime_types::stable_hash_of;

    #[test]
    fn victim_entries_range() {
        assert!(VictimCacheConfig::new(0).is_err());
        assert!(VictimCacheConfig::new(1).is_ok());
        assert!(VictimCacheConfig::new(MAX_VICTIM_ENTRIES).is_ok());
        assert!(VictimCacheConfig::new(MAX_VICTIM_ENTRIES + 1).is_err());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(OrgFeatures::default(), OrgFeatures::NONE);
        assert!(OrgFeatures::NONE.is_none());
        assert!(!OrgFeatures::NONE
            .with_victim_cache(VictimCacheConfig::new(4).unwrap())
            .is_none());
    }

    #[test]
    fn distinct_features_hash_distinct() {
        let none = OrgFeatures::NONE;
        let v4 = none.with_victim_cache(VictimCacheConfig::new(4).unwrap());
        let v8 = none.with_victim_cache(VictimCacheConfig::new(8).unwrap());
        let mru = none.with_way_prediction(WayPrediction::Mru);
        let mc = none.with_way_prediction(WayPrediction::MultiColumn);
        let all = [none, v4, v8, mru, mc, v4.with_way_prediction(WayPrediction::Mru)];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(stable_hash_of(a), stable_hash_of(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_renders_enabled_features_only() {
        assert_eq!(OrgFeatures::NONE.to_string(), "");
        let both = OrgFeatures::NONE
            .with_victim_cache(VictimCacheConfig::new(8).unwrap())
            .with_way_prediction(WayPrediction::MultiColumn);
        assert_eq!(both.to_string(), "victim:8, way-pred:multi-column");
        assert_eq!(
            OrgFeatures::NONE
                .with_way_prediction(WayPrediction::Mru)
                .to_string(),
            "way-pred:mru"
        );
    }
}
