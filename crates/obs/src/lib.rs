//! # cachetime-obs
//!
//! Zero-dependency observability for the cachetime workspace: a
//! [`Registry`] of named counters, gauges, and log₂ histograms backed
//! by lock-free atomics, plus [`Span`] drop-guard timers that feed
//! histograms and can emit JSONL trace records through a pluggable
//! [`SpanSink`].
//!
//! Two registries matter in practice:
//!
//! * [`global()`] — the process-wide registry. The core engine and the
//!   sweep executor always record here; binaries install sinks here.
//! * Per-component registries — `cachetime-serve` gives every `App`
//!   its own so concurrent tests in one process do not share counters.
//!
//! [`Registry::render_prometheus`] produces the text exposition format
//! served at `GET /v1/metrics`; all samples are integers, so the
//! output can never contain `NaN`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod span;

pub use metric::{Counter, Exemplar, Gauge, Histogram, BUCKETS};
pub use registry::{global, Registry};
pub use span::{JsonlSink, Span, SpanRecord, SpanSink};
