//! Figure 5-4: optimal block size versus the memory-speed product.
//!
//! "The non-integral optimal block size is plotted against the product of
//! the latency in cycles and the transfer rate. … The line segments line
//! up quite well, verifying that the optimal block size is a function of
//! the memory speed product, la × tr." The dotted reference line is the
//! balance strategy `BS = la × tr` (equal latency and transfer time),
//! which the optimum provably does not follow.

use crate::fig5_3::Minimum;
use cachetime_analysis::plot::Chart;
use cachetime_analysis::table::Table;

/// One point of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// `la × tr`: latency in 40 ns cycles times transfer rate (words per
    /// cycle).
    pub memory_speed_product: f64,
    /// Fitted optimal block size (words).
    pub optimal_block_words: f64,
    /// The balance-line block size `la × tr` for comparison.
    pub balanced_block_words: f64,
    /// Latency (ns) — identifies the curve segment.
    pub latency_ns: u64,
    /// Transfer rate (words/cycle) — identifies the curve segment.
    pub transfer_wpc: f64,
}

/// Builds the product-vs-optimum scatter from the Figure 5-3 minima.
pub fn run(minima: &[Minimum]) -> Vec<Point> {
    let mut pts: Vec<Point> = minima
        .iter()
        .map(|m| {
            let la = (m.latency_ns as f64 / 40.0).ceil();
            let tr = m.transfer.words_per_cycle();
            Point {
                memory_speed_product: la * tr,
                optimal_block_words: m.optimal_block_words,
                balanced_block_words: la * tr,
                latency_ns: m.latency_ns,
                transfer_wpc: tr,
            }
        })
        .collect();
    pts.sort_by(|a, b| {
        a.memory_speed_product
            .partial_cmp(&b.memory_speed_product)
            .expect("no NaNs")
    });
    pts
}

/// How well the points collapse onto a single function of the product:
/// the mean relative spread of `optimal_block_words` among points sharing
/// (approximately) the same product. 0 = perfect collapse.
pub fn collapse_spread(points: &[Point]) -> f64 {
    let mut total = 0.0;
    let mut groups = 0.0;
    let mut i = 0;
    while i < points.len() {
        let mut j = i + 1;
        while j < points.len()
            && (points[j].memory_speed_product / points[i].memory_speed_product) < 1.3
        {
            j += 1;
        }
        if j - i >= 2 {
            let vals: Vec<f64> = points[i..j].iter().map(|p| p.optimal_block_words).collect();
            let max = vals.iter().copied().fold(0.0f64, f64::max);
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            total += (max - min) / ((max + min) / 2.0);
            groups += 1.0;
        }
        i = j;
    }
    if groups == 0.0 {
        0.0
    } else {
        total / groups
    }
}

/// Renders the scatter with the balance line.
pub fn render(points: &[Point]) -> String {
    let mut t = Table::new([
        "la x tr",
        "optimal block (W)",
        "balance line (W)",
        "latency",
        "tr (W/cycle)",
    ]);
    for p in points {
        t.row([
            format!("{:.2}", p.memory_speed_product),
            format!("{:.1}", p.optimal_block_words),
            format!("{:.1}", p.balanced_block_words),
            format!("{}ns", p.latency_ns),
            format!("{:.2}", p.transfer_wpc),
        ]);
    }
    let mut chart = Chart::new(56, 14)
        .log_x()
        .log_y()
        .labels("la x tr", "block size (words)");
    chart.series(
        "optimum",
        points
            .iter()
            .map(|p| (p.memory_speed_product, p.optimal_block_words))
            .collect(),
    );
    chart.series(
        "balance",
        points
            .iter()
            .map(|p| (p.memory_speed_product, p.balanced_block_words))
            .collect(),
    );
    format!(
        "Figure 5-4: optimal block size vs memory speed product\n{t}\n{}",
        chart.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig5_2::{self, TRANSFER_RATES};
    use crate::fig5_3;
    use crate::runner::TraceSet;

    #[test]
    fn optimum_grows_with_product_and_defies_balance_line() {
        // Needs traces long enough that compulsory misses do not dominate
        // (cold-heavy traces reward huge blocks and blow past the balance
        // line artificially).
        let traces = TraceSet::generate(0.15);
        let curves = fig5_2::run_over(
            &traces,
            &[100, 260, 420],
            &TRANSFER_RATES[0..4],
            &[1, 2, 4, 8, 16, 32, 64],
        );
        let minima = fig5_3::run(&curves);
        let pts = run(&minima);
        assert_eq!(pts.len(), 12);
        // Broad trend: optimum increases with the product.
        let lo = pts.first().unwrap();
        let hi = pts.last().unwrap();
        assert!(
            hi.optimal_block_words >= lo.optimal_block_words,
            "optimum must grow with la x tr: {} vs {}",
            lo.optimal_block_words,
            hi.optimal_block_words
        );
        // "When the product is high … the optimal block size is smaller
        // than one might expect" — below the balance line at the top end.
        assert!(
            hi.optimal_block_words < hi.balanced_block_words,
            "optimum {} must undercut the balance line {}",
            hi.optimal_block_words,
            hi.balanced_block_words
        );
        assert!(render(&pts).contains("balance line"));
    }
}
