//! Section 6: the case for multi-level cache hierarchies.
//!
//! "The existence of a second level cache modifies the speed–size tradeoff
//! for the first level cache by reducing the cost of first-level cache
//! misses, making small, fast caches a viable alternative." The experiment
//! sweeps the L1 size at a fast clock with and without a 512 KB unified
//! second level and reports execution time and the resulting optimum.

use crate::runner::{run_config, TraceSet};
use cachetime::{LevelTwoConfig, SystemConfig};
use cachetime_analysis::table::Table;
use cachetime_cache::CacheConfig;
use cachetime_types::{BlockWords, CacheSize, CycleTime};

/// One sweep (with or without the L2).
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Whether the 512 KB L2 was present.
    pub with_l2: bool,
    /// Cycle time (ns) of the CPU/L1.
    pub ct_ns: u32,
    /// L1 sizes per cache (KB).
    pub sizes_per_cache_kb: Vec<u64>,
    /// Execution time per reference (ns) per size.
    pub time_per_ref_ns: Vec<f64>,
}

impl Sweep {
    /// The per-cache L1 size (KB) minimizing execution time.
    pub fn optimal_size_kb(&self) -> u64 {
        let i = self
            .time_per_ref_ns
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs"))
            .map(|(i, _)| i)
            .expect("nonempty sweep");
        self.sizes_per_cache_kb[i]
    }
}

/// Runs both sweeps at the given clock.
pub fn run(traces: &TraceSet, ct_ns: u32, sizes_per_cache_kb: &[u64]) -> (Sweep, Sweep) {
    let sweep = |with_l2: bool| -> Sweep {
        let times = sizes_per_cache_kb
            .iter()
            .map(|&kb| {
                let l1 = CacheConfig::builder(CacheSize::from_kib(kb).expect("power of two"))
                    .build()
                    .expect("valid cache");
                let mut b = SystemConfig::builder();
                b.cycle_time(CycleTime::from_ns(ct_ns).expect("nonzero"))
                    .l1_both(l1);
                if with_l2 {
                    let l2cache =
                        CacheConfig::builder(CacheSize::from_kib(512).expect("power of two"))
                            .block(BlockWords::new(16).expect("power of two"))
                            .build()
                            .expect("valid L2");
                    b.l2(LevelTwoConfig::new(l2cache));
                }
                let config = b.build().expect("valid system");
                run_config(&config, traces).time_per_ref_ns
            })
            .collect();
        Sweep {
            with_l2,
            ct_ns,
            sizes_per_cache_kb: sizes_per_cache_kb.to_vec(),
            time_per_ref_ns: times,
        }
    };
    (sweep(false), sweep(true))
}

/// Renders the comparison.
pub fn render(without: &Sweep, with: &Sweep) -> String {
    let mut t = Table::new(["L1 per cache", "no L2 (ns/ref)", "with 512KB L2 (ns/ref)"]);
    for (i, &kb) in without.sizes_per_cache_kb.iter().enumerate() {
        t.row([
            format!("{kb}KB"),
            format!("{:.2}", without.time_per_ref_ns[i]),
            format!("{:.2}", with.time_per_ref_ns[i]),
        ]);
    }
    format!(
        "Section 6: two-level hierarchy at {}ns\n{t}\
         optimal L1 per cache: {}KB without L2, {}KB with L2\n",
        without.ct_ns,
        without.optimal_size_kb(),
        with.optimal_size_kb(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_helps_small_l1_at_fast_clocks() {
        let traces = TraceSet::quick();
        let (without, with) = run(&traces, 20, &[2, 8, 64]);
        // A small L1 backed by an L2 must beat the same L1 alone.
        assert!(
            with.time_per_ref_ns[0] < without.time_per_ref_ns[0],
            "L2 must shrink the small-L1 miss penalty: {} vs {}",
            with.time_per_ref_ns[0],
            without.time_per_ref_ns[0]
        );
        // The optimal L1 with an L2 is no larger than without.
        assert!(with.optimal_size_kb() <= without.optimal_size_kb());
        assert!(render(&without, &with).contains("optimal L1"));
    }
}
