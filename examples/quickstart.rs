//! Quickstart: build the paper's default machine, run one workload, and
//! look at both the classic miss-ratio metrics and the execution-time
//! metrics the paper argues for.
//!
//! ```text
//! cargo run --release -p cachetime-experiments --example quickstart
//! ```

use cachetime::{simulate, SystemConfig};
use cachetime_trace::catalog;
use cachetime_types::ConfigError;

fn main() -> Result<(), ConfigError> {
    // The machine of the paper's section 2: 40ns clock, split 64KB I/D
    // caches (direct-mapped, 4-word blocks, write-back, no-write-allocate),
    // 180ns/1W-per-cycle main memory behind a 4-block write buffer.
    let config = SystemConfig::paper_default()?;
    println!("machine: {config}");

    // One of the paper's eight Table-1 workloads, at 10% length.
    let trace = catalog::savec(0.1).generate();
    let stats = trace.stats();
    println!("workload: {} ({stats})", trace.name());

    let result = simulate(&config, &trace);

    println!("\n--- time-independent metrics (the classic view) ---");
    println!(
        "read miss ratio:    {:.2}%",
        100.0 * result.read_miss_ratio()
    );
    println!(
        "  instruction side: {:.2}%",
        100.0 * result.ifetch_miss_ratio()
    );
    println!(
        "  data side:        {:.2}%",
        100.0 * result.load_miss_ratio()
    );
    println!(
        "read traffic ratio: {:.3} words/ref",
        result.read_traffic_ratio()
    );

    println!("\n--- execution-time metrics (the paper's view) ---");
    println!("cycles:             {}", result.cycles);
    println!("cycles/reference:   {:.3}", result.cycles_per_ref());
    println!("time/reference:     {:.1} ns", result.time_per_ref_ns());
    println!("total time:         {}", result.exec_time());

    // Halving the cycle time does NOT halve the execution time: the fixed
    // 180ns memory latency quantizes to more cycles (Table 2: the miss
    // penalty grows from 10 to 14 cycles), inflating the cycle count.
    let fast = SystemConfig::builder()
        .cycle_time(cachetime_types::CycleTime::from_ns(20)?)
        .build()?;
    let fast_result = simulate(&fast, &trace);
    let cycle_inflation = fast_result.cycles_per_ref() / result.cycles_per_ref() - 1.0;
    let speedup = result.time_per_ref_ns() / fast_result.time_per_ref_ns();
    println!(
        "\nhalving the clock to 20ns inflates the cycle count by {:.0}% \
         ({:.3} -> {:.3} cycles/ref),",
        100.0 * cycle_inflation,
        result.cycles_per_ref(),
        fast_result.cycles_per_ref()
    );
    println!(
        "so the 2.0x clock buys only a {speedup:.2}x speedup — and for small \
         caches the gap widens"
    );
    println!("(run the speed_size_tradeoff example for the full story)");
    Ok(())
}
