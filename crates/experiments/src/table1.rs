//! Table 1: description of the traces.
//!
//! Regenerates the paper's trace inventory from the synthetic catalog:
//! name, process count, reference count, and unique addresses touched.

use crate::runner::TraceSet;
use cachetime_analysis::table::Table;
use cachetime_trace::TraceStats;

/// One row of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Trace name.
    pub name: String,
    /// Distinct processes observed.
    pub processes: u32,
    /// Total references (thousands).
    pub refs_k: u64,
    /// Unique `(pid, word)` addresses (thousands).
    pub unique_k: u64,
    /// Instruction fetches per reference.
    pub ifetch_frac: f64,
}

/// Computes the inventory.
pub fn run(traces: &TraceSet) -> Vec<Row> {
    traces
        .traces()
        .iter()
        .map(|t| {
            let s: TraceStats = t.stats();
            Row {
                name: t.name().to_string(),
                processes: s.processes,
                refs_k: s.refs / 1000,
                unique_k: s.unique_words / 1000,
                ifetch_frac: s.ifetches as f64 / s.refs.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the inventory like the paper's Table 1.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new([
        "Name",
        "Processes",
        "Refs (K)",
        "Unique Addresses (K)",
        "IFetch %",
    ]);
    for r in rows {
        t.row([
            r.name.clone(),
            r.processes.to_string(),
            r.refs_k.to_string(),
            r.unique_k.to_string(),
            format!("{:.1}", 100.0 * r.ifetch_frac),
        ]);
    }
    format!("Table 1: description of the traces\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table_1_structure() {
        let traces = TraceSet::quick();
        let rows = run(&traces);
        assert_eq!(rows.len(), 8);
        // At the quick scale a short VAX trace may not schedule every
        // configured process; the observed count is bounded by Table 1's.
        let procs: Vec<u32> = rows.iter().map(|r| r.processes).collect();
        for (got, expect) in procs.iter().zip([7, 11, 14, 6, 3, 4, 5, 7]) {
            assert!(*got >= 1 && *got <= expect, "{got} vs {expect}");
        }
        // The R2000 prefixes schedule every prefixed process regardless of
        // length; the grep/egrep processes of rd1n5/rd2n7 start cold in
        // the body and may miss a very short quick-scale window.
        assert_eq!(&procs[4..6], &[3, 4]);
        assert!(procs[6] >= 4 && procs[7] >= 6, "{procs:?}");
        // R2000 traces carry the larger unique-address counts, as in the
        // paper ("these initialization references account for the larger
        // number of unique references in the R2000 traces").
        let vax_max = rows[..4].iter().map(|r| r.unique_k).max().unwrap();
        let risc_min = rows[4..].iter().map(|r| r.unique_k).min().unwrap();
        assert!(risc_min > vax_max);
        assert!(render(&rows).contains("mu10"));
    }
}
