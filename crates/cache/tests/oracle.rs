//! Oracle tests: the optimized `Cache` against a deliberately naive
//! reference model.
//!
//! The reference keeps each set as a plain `Vec` of resident blocks with
//! explicit per-word state and recency lists — slow and obvious. Any
//! divergence in hit/miss outcomes, evictions, or dirty-word accounting
//! flags a bug in the real implementation's bit-twiddling.

use cachetime_cache::{Cache, CacheConfig, ReadOutcome, ReplacementPolicy, WriteOutcome};
use cachetime_testkit::{check, prop_assert, prop_assert_eq, SplitMix64};
use cachetime_types::{Assoc, BlockWords, CacheSize, Pid, WordAddr};
use std::collections::HashMap;

/// One resident block in the reference model.
#[derive(Debug, Clone)]
struct RefBlock {
    tag: u64,
    pid: u16,
    dirty: Vec<bool>,
    last_use: u64,
}

/// The naive model: LRU only (exact), write-back, no-allocate,
/// whole-block fetch, virtual tags.
struct RefCache {
    sets: u64,
    ways: usize,
    block_words: u64,
    contents: HashMap<u64, Vec<RefBlock>>,
    clock: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum RefOutcome {
    Hit,
    Miss { victim_dirty_words: Option<u32> },
    WriteMiss,
}

impl RefCache {
    fn new(sets: u64, ways: usize, block_words: u64) -> Self {
        RefCache {
            sets,
            ways,
            block_words,
            contents: HashMap::new(),
            clock: 0,
        }
    }

    fn locate(&mut self, addr: u64, pid: u16) -> (u64, u64) {
        let block = addr / self.block_words;
        let set = block % self.sets;
        let tag = block / self.sets;
        let _ = pid;
        (set, tag)
    }

    fn read(&mut self, addr: u64, pid: u16) -> RefOutcome {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.locate(addr, pid);
        let ways = self.ways;
        let blocks = self.contents.entry(set).or_default();
        if let Some(b) = blocks.iter_mut().find(|b| b.tag == tag && b.pid == pid) {
            b.last_use = clock;
            return RefOutcome::Hit;
        }
        // Fill; evict exact-LRU if full.
        let victim_dirty_words = if blocks.len() == ways {
            let (i, _) = blocks
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_use)
                .expect("nonempty");
            let v = blocks.remove(i);
            let dirty = v.dirty.iter().filter(|&&d| d).count() as u32;
            (dirty > 0).then_some(dirty)
        } else {
            None
        };
        blocks.push(RefBlock {
            tag,
            pid,
            dirty: vec![false; self.block_words as usize],
            last_use: clock,
        });
        RefOutcome::Miss { victim_dirty_words }
    }

    fn write(&mut self, addr: u64, pid: u16) -> RefOutcome {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.locate(addr, pid);
        let offset = (addr % self.block_words) as usize;
        let blocks = self.contents.entry(set).or_default();
        if let Some(b) = blocks.iter_mut().find(|b| b.tag == tag && b.pid == pid) {
            b.last_use = clock;
            b.dirty[offset] = true;
            return RefOutcome::Hit;
        }
        RefOutcome::WriteMiss
    }
}

fn lru_config(size_bytes: u64, block_words: u32, ways: u32) -> Option<CacheConfig> {
    CacheConfig::builder(CacheSize::from_bytes(size_bytes).ok()?)
        .block(BlockWords::new(block_words).ok()?)
        .assoc(Assoc::new(ways).ok()?)
        .replacement(ReplacementPolicy::Lru)
        .build()
        .ok()
}

/// One random oracle scenario: geometry logs plus an access stream.
#[derive(Debug, Clone)]
struct Scenario {
    size_log: u32,
    block_log: u32,
    ways_log: u32,
    accesses: Vec<(u64, bool, u16)>,
}

fn gen_scenario(rng: &mut SplitMix64) -> Scenario {
    let n = rng.gen_range(1usize..500);
    Scenario {
        size_log: rng.gen_range(6u32..11),  // 64B..1KB
        block_log: rng.gen_range(0u32..4),  // 1..8 words
        ways_log: rng.gen_range(0u32..3),   // 1..4 ways
        accesses: (0..n)
            .map(|_| {
                (
                    rng.gen_range(0u64..512),
                    rng.gen_bool(0.5),
                    rng.gen_range(0u16..3),
                )
            })
            .collect(),
    }
}

/// Shrinks only the access stream; the geometry stays fixed.
fn shrink_scenario(s: &Scenario) -> Vec<Scenario> {
    cachetime_testkit::shrink::vec_linear(&s.accesses)
        .into_iter()
        .map(|accesses| Scenario {
            accesses,
            ..s.clone()
        })
        .collect()
}

/// Outcome-for-outcome agreement between `Cache` (LRU) and the naive
/// reference across random configurations and access streams.
#[test]
fn cache_matches_reference_model() {
    check(
        "cache_matches_reference_model",
        gen_scenario,
        shrink_scenario,
        check_against_reference,
    );
}

fn check_against_reference(s: &Scenario) -> Result<(), String> {
    let Scenario {
        size_log,
        block_log,
        ways_log,
        ref accesses,
    } = *s;
    {
        let size = 1u64 << size_log;
        let block_words = 1u32 << block_log;
        let ways = 1u32 << ways_log;
        let Some(config) = lru_config(size, block_words, ways) else {
            return Ok(()); // cache smaller than one set: skip
        };
        let mut cache = Cache::new(config);
        let mut oracle = RefCache::new(
            config.sets(),
            ways as usize,
            block_words as u64,
        );
        for (i, &(addr, is_write, pid)) in accesses.iter().enumerate() {
            let a = WordAddr::new(addr);
            if is_write {
                let real = cache.write(a, Pid(pid));
                let expected = oracle.write(addr, pid);
                match (real, expected) {
                    (WriteOutcome::Hit { .. }, RefOutcome::Hit)
                    | (WriteOutcome::MissNoAllocate, RefOutcome::WriteMiss) => {}
                    other => prop_assert!(false, "write #{i} diverged: {other:?}"),
                }
            } else {
                let real = cache.read(a, Pid(pid));
                let expected = oracle.read(addr, pid);
                match (real, expected) {
                    (ReadOutcome::Hit, RefOutcome::Hit) => {}
                    (
                        ReadOutcome::Miss { victim, .. },
                        RefOutcome::Miss { victim_dirty_words },
                    ) => {
                        prop_assert_eq!(
                            victim.map(|ev| ev.dirty_words),
                            victim_dirty_words,
                            "victim dirty-words diverged at access #{}",
                            i
                        );
                        if let Some(ev) = victim {
                            prop_assert_eq!(ev.words, block_words);
                        }
                    }
                    other => prop_assert!(false, "read #{i} diverged: {other:?}"),
                }
            }
        }
        // Final dirty state agrees too.
        let real_dirty: u64 = cache.flush_dirty().iter().map(|e| e.dirty_words as u64).sum();
        let oracle_dirty: u64 = oracle
            .contents
            .values()
            .flatten()
            .map(|b| b.dirty.iter().filter(|&&d| d).count() as u64)
            .sum();
        prop_assert_eq!(real_dirty, oracle_dirty, "residual dirty words diverged");
    }
    Ok(())
}
