//! Linear shrinking strategies for the property runner.
//!
//! Shrinkers return an ordered list of *candidate* smaller inputs; the
//! runner greedily descends into the first candidate that still fails.
//! "Linear" means candidate counts stay O(n) per step, so a full shrink is
//! O(n²) property evaluations in the worst case — fine for the workspace's
//! input sizes (vectors of a few hundred elements).

/// Shrinks a vector by halving (front half, back half) and then removing
/// single elements (up to 64, evenly spaced across the vector).
pub fn vec_linear<T: Clone>(v: &Vec<T>) -> Vec<Vec<T>> {
    let n = v.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    if n > 1 {
        out.push(v[..n / 2].to_vec());
        out.push(v[n - n / 2..].to_vec());
    }
    let stride = n.div_ceil(64).max(1);
    for i in (0..n).step_by(stride) {
        let mut smaller = v.clone();
        smaller.remove(i);
        if !smaller.is_empty() || n == 1 {
            out.push(smaller);
        }
    }
    out
}

/// Shrinks an unsigned scalar toward zero: first the halfway point, then
/// binary-search steps back toward the original, ending at `v - 1`. The
/// greedy runner converges to a boundary in O(log² v) evaluations.
pub fn halves(v: &u64) -> Vec<u64> {
    let v = *v;
    let mut out = Vec::new();
    if v == 0 {
        return out;
    }
    out.push(v / 2);
    let mut d = v - v / 2;
    while d > 1 {
        d /= 2;
        out.push(v - d);
    }
    if out.last() != Some(&(v - 1)) {
        out.push(v - 1);
    }
    out
}

/// No shrinking: for inputs where smaller cases carry no extra signal
/// (e.g. pure configuration tuples).
pub fn none<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Combines a vector shrinker with a fixed context: shrinks only the
/// vector half of a `(context, vec)` pair, cloning the context.
pub fn pair_vec<C: Clone, T: Clone>(input: &(C, Vec<T>)) -> Vec<(C, Vec<T>)> {
    let (ctx, v) = input;
    vec_linear(v)
        .into_iter()
        .map(|smaller| (ctx.clone(), smaller))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_linear_produces_strictly_smaller_candidates() {
        let v: Vec<u32> = (0..10).collect();
        for c in vec_linear(&v) {
            assert!(c.len() < v.len());
        }
    }

    #[test]
    fn vec_linear_reaches_singletons() {
        // A [x] input shrinks to [] so the runner can confirm minimality.
        let v = vec![5u32];
        let candidates = vec_linear(&v);
        assert!(candidates.iter().any(|c| c.is_empty()));
    }

    #[test]
    fn vec_linear_caps_candidate_count() {
        let v: Vec<u32> = (0..10_000).collect();
        assert!(vec_linear(&v).len() <= 2 + 64);
    }

    #[test]
    fn halves_descends_to_zero() {
        let mut v = 1000u64;
        let mut steps = 0;
        while v > 0 {
            v = halves(&v)[0];
            steps += 1;
            assert!(steps < 64);
        }
    }

    #[test]
    fn pair_vec_keeps_context() {
        let input = ("ctx", vec![1, 2, 3, 4]);
        for (c, v) in pair_vec(&input) {
            assert_eq!(c, "ctx");
            assert!(v.len() < 4);
        }
    }
}
