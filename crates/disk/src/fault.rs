//! Deterministic I/O fault injection for crash-consistency tests.
//!
//! `cachetime-disk` sits below `cachetime-serve`, so it cannot use the
//! server's `FaultPlan` directly; instead the store accepts a hook —
//! a function from (operation, key) to a [`DiskFault`] — and the server
//! adapts its plan into one. Production stores run with no hook and pay
//! a single `Option` check per I/O.
//!
//! Write faults emulate a crash, not an error path: a torn or corrupted
//! write lands under the segment's **final** name with no fsync and no
//! temp-file detour, exactly the state a power cut mid-`write(2)` leaves
//! behind after the rename discipline is bypassed by the kernel losing
//! dirty pages. Recovery must quarantine these, which is what the
//! restart-chaos tests assert.

/// One injected failure for a single disk I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// No fault: the I/O proceeds normally.
    None,
    /// Keep only the first `keep` bytes (a torn or short write on the
    /// write side; a short read on the read side). `keep` is clamped to
    /// the actual length.
    Torn {
        /// Bytes that survive.
        keep: usize,
    },
    /// Flip one bit at byte `offset` (clamped into range) — silent media
    /// corruption.
    BitFlip {
        /// Byte whose lowest bit flips.
        offset: usize,
    },
    /// Fail the whole operation with an I/O error.
    Error,
}

/// Which store operation is about to touch the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// A spill ([`SegmentStore::store`](crate::SegmentStore::store)).
    Write,
    /// A read-through ([`SegmentStore::load`](crate::SegmentStore::load)).
    Read,
}

/// The injection hook: consulted once per store/load with the operation,
/// the trace key, and the I/O length in bytes (so a hook can tear at a
/// fraction of the image); returns the fault to apply.
pub type FaultHook = std::sync::Arc<dyn Fn(DiskOp, u64, usize) -> DiskFault + Send + Sync>;

/// Applies a fault to an in-memory I/O image, returning the bytes that
/// actually reach (or arrive from) the disk, or `None` for
/// [`DiskFault::Error`]. Public because the server reuses the same
/// mangling for injected peer-transfer faults (`peer.fetch` rules).
pub fn mangle(bytes: &[u8], fault: DiskFault) -> Option<Vec<u8>> {
    match fault {
        DiskFault::None => Some(bytes.to_vec()),
        DiskFault::Torn { keep } => Some(bytes[..keep.min(bytes.len())].to_vec()),
        DiskFault::BitFlip { offset } => {
            let mut out = bytes.to_vec();
            if let Some(b) = {
                let idx = if out.is_empty() { 0 } else { offset % out.len() };
                out.get_mut(idx)
            } {
                *b ^= 1;
            }
            Some(out)
        }
        DiskFault::Error => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangle_shapes() {
        assert_eq!(mangle(b"abcd", DiskFault::None).unwrap(), b"abcd");
        assert_eq!(mangle(b"abcd", DiskFault::Torn { keep: 2 }).unwrap(), b"ab");
        assert_eq!(
            mangle(b"abcd", DiskFault::Torn { keep: 99 }).unwrap(),
            b"abcd"
        );
        assert_eq!(
            mangle(b"abcd", DiskFault::BitFlip { offset: 1 }).unwrap(),
            b"a\x63cd"
        );
        assert_eq!(
            mangle(b"abcd", DiskFault::BitFlip { offset: 5 }).unwrap(),
            b"a\x63cd"
        );
        assert!(mangle(b"abcd", DiskFault::Error).is_none());
    }
}
