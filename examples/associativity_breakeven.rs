//! Section 4's question: you can add 2-way set associativity, but the
//! select path costs you nanoseconds of cycle time. How many can you
//! afford before it stops paying?
//!
//! The paper's answer for discrete TTL: almost never more than 6 ns (the
//! worst-case data-in to data-out of an Advanced-Schottky multiplexor),
//! and only small caches even reach that.
//!
//! ```text
//! cargo run --release -p cachetime-experiments --example associativity_breakeven
//! ```

use cachetime_experiments::fig4_2;
use cachetime_experiments::fig4_345;
use cachetime_experiments::runner::TraceSet;

fn main() {
    println!("generating workloads and sweeping the design space...");
    let traces = TraceSet::generate(0.15);
    let grids = fig4_2::run_over(
        &traces,
        &[1, 2],
        &[2, 8, 32, 128],
        &[20, 28, 36, 44, 52, 60, 68, 76],
    );
    let map = fig4_345::run(&grids, 2);

    println!("\nbreak-even cycle-time degradation for 2-way associativity (ns):");
    println!("{}", fig4_345::render(&map));

    const AS_MUX_NS: f64 = 6.0; // TI Advanced-Schottky multiplexor, data-in to data-out
    let affordable = map
        .break_even
        .iter()
        .flatten()
        .flatten()
        .filter(|&&b| b > AS_MUX_NS)
        .count();
    let total = map.break_even.iter().flatten().flatten().count();
    println!("design points where 2-way survives a {AS_MUX_NS}ns mux: {affordable} of {total}");
    println!(
        "the paper: \"it is unlikely that set associativity ever makes sense from a \
         performance perspective for caches made of discrete TTL parts\""
    );
}
