//! Stable 64-bit content hashing for configuration values.
//!
//! The simulation server addresses recorded [`EventOp`](crate::EventOp)
//! streams by *what they are*: a 64-bit digest of the organization and
//! workload that produced them. That key must be **stable** — equal across
//! processes, platforms, and field-construction order — which rules out
//! `std::hash::Hash` (`DefaultHasher`'s keys are randomized per process
//! and its algorithm is explicitly unspecified). [`StableHash`] is the
//! in-tree replacement: a fixed SplitMix64-style mixing function over a
//! fixed field order, so a hash written into a client, a log, or a
//! `BENCH_*.json` file keeps meaning the same configuration forever.
//!
//! Two values of the same type hash equal iff their observable fields are
//! equal; the construction path (builder call order, `paper_default` vs an
//! equivalent hand-built value) never matters because hashing reads the
//! *final* fields in declaration order.
//!
//! ```
//! use cachetime_types::{stable_hash_of, CycleTime};
//!
//! let a = stable_hash_of(&CycleTime::from_ns(40)?);
//! let b = stable_hash_of(&CycleTime::from_ns(40)?);
//! let c = stable_hash_of(&CycleTime::from_ns(44)?);
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! # Ok::<(), cachetime_types::ConfigError>(())
//! ```

/// The SplitMix64 increment ("golden gamma"); also used to seed the hasher
/// so an empty hash is not zero.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 output finalizer: an invertible avalanche over one word.
#[inline]
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An accumulating 64-bit hasher with a fixed, documented algorithm.
///
/// Every ingested word passes through the SplitMix64 finalizer combined
/// with the running state, so field order matters (hashing `(a, b)` and
/// `(b, a)` differ) and streams of different lengths never collide by
/// framing (variable-length data must write its length first, which the
/// `str`/slice impls do).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A fresh hasher. Equal inputs through equal write sequences yield
    /// equal [`finish`](Self::finish) values — on any platform, in any
    /// process.
    pub const fn new() -> Self {
        StableHasher { state: GOLDEN }
    }

    /// Ingests one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.state = mix(self.state.wrapping_add(GOLDEN) ^ v);
    }

    /// Ingests raw bytes (length-prefixed, so `"ab" + "c"` and
    /// `"a" + "bc"` hash differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// The digest of everything written so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        mix(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// A type whose values can be digested into a stable 64-bit key.
///
/// Implementations must feed every field that affects observable behavior,
/// in a fixed order; two values comparing equal must hash equal. Enums
/// write a discriminant index before any payload.
pub trait StableHash {
    /// Feeds `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// Digests one value: a fresh hasher, one `stable_hash`, one `finish`.
pub fn stable_hash_of<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

macro_rules! impl_stable_hash_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            #[inline]
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}

impl_stable_hash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for bool {
    #[inline]
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

impl StableHash for f64 {
    /// Hashes the bit pattern; `0.0` and `-0.0` therefore differ, as do
    /// distinct NaN payloads — configuration values are never NaN and the
    /// bit pattern is the only representation stable enough to key on.
    #[inline]
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.to_bits());
    }
}

impl StableHash for str {
    #[inline]
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(self.as_bytes());
    }
}

impl StableHash for String {
    #[inline]
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

// The vocabulary newtypes hash as their observable value.

impl StableHash for crate::CycleTime {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.ns() as u64);
    }
}

impl StableHash for crate::Nanos {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.0);
    }
}

impl StableHash for crate::Cycles {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.0);
    }
}

impl StableHash for crate::CacheSize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.bytes());
    }
}

impl StableHash for crate::BlockWords {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.words() as u64);
    }
}

impl StableHash for crate::Assoc {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.ways() as u64);
    }
}

impl StableHash for crate::Pid {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.0 as u64);
    }
}

impl StableHash for crate::WordAddr {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.value());
    }
}

impl StableHash for crate::AccessKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(match self {
            crate::AccessKind::IFetch => 0,
            crate::AccessKind::Load => 1,
            crate::AccessKind::Store => 2,
        });
    }
}

impl StableHash for crate::MemRef {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.kind.stable_hash(h);
        self.addr.stable_hash(h);
        self.pid.stable_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The digest of a fixed input is a cross-version stability contract:
    /// stored keys (server clients, logs) must keep resolving.
    #[test]
    fn digests_are_golden_stable() {
        assert_eq!(stable_hash_of(&0u64), 0xcd73_fe3d_e975_ac26);
        assert_eq!(stable_hash_of("cachetime"), 0xeda2_af8f_6480_2552);
        let mut h = StableHasher::new();
        1u64.stable_hash(&mut h);
        2u64.stable_hash(&mut h);
        assert_eq!(h.finish(), 0x1f28_2529_234b_b3eb);
    }

    #[test]
    fn field_order_matters() {
        let mut ab = StableHasher::new();
        1u64.stable_hash(&mut ab);
        2u64.stable_hash(&mut ab);
        let mut ba = StableHasher::new();
        2u64.stable_hash(&mut ba);
        1u64.stable_hash(&mut ba);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn byte_framing_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        "ab".stable_hash(&mut a);
        "c".stable_hash(&mut a);
        let mut b = StableHasher::new();
        "a".stable_hash(&mut b);
        "bc".stable_hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn option_none_differs_from_zero() {
        assert_ne!(
            stable_hash_of(&Option::<u64>::None),
            stable_hash_of(&Some(0u64))
        );
    }

    #[test]
    fn slices_hash_by_content_and_length() {
        assert_eq!(stable_hash_of(&vec![1u64, 2]), stable_hash_of(&[1u64, 2][..]));
        assert_ne!(stable_hash_of(&[1u64][..]), stable_hash_of(&[1u64, 0][..]));
        assert_ne!(stable_hash_of(&[][..] as &[u64]), stable_hash_of(&[0u64][..]));
    }

    #[test]
    fn small_inputs_spread_widely() {
        // 64 consecutive integers should produce 64 distinct digests with
        // no shared high or low 32-bit halves (a weak avalanche check).
        let digests: Vec<u64> = (0u64..64).map(|v| stable_hash_of(&v)).collect();
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a >> 32, b >> 32);
                assert_ne!(a & 0xffff_ffff, b & 0xffff_ffff);
            }
        }
    }

    #[test]
    fn newtypes_hash_their_values() {
        let s64 = crate::CacheSize::from_kib(64).unwrap();
        let s128 = crate::CacheSize::from_kib(128).unwrap();
        assert_ne!(stable_hash_of(&s64), stable_hash_of(&s128));
        assert_eq!(
            stable_hash_of(&crate::CycleTime::from_ns(40).unwrap()),
            stable_hash_of(&crate::CycleTime::from_ns(40).unwrap())
        );
    }
}
