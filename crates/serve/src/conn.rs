//! The per-connection read/write state machine the event loop drives.
//!
//! A [`Connection`] owns one transport (a non-blocking `TcpStream` in
//! production; any `Read + Write` in tests — the property suite drives it
//! with a scripted fake socket) and moves through four states:
//!
//! ```text
//!            bytes frame a request
//!   Reading ──────────────────────▶ Dispatched
//!      ▲                                │ begin_response
//!      │ flushed, keep-alive           ▼
//!      └───────────────────────────  Writing ──▶ Closed
//!              (flushed + close, disconnect, or error)
//! ```
//!
//! Everything is partial-I/O tolerant: reads accumulate into a buffer and
//! re-parse, writes resume at the next unwritten byte, and `WouldBlock`
//! at any point simply parks the state machine until the next readiness
//! event. Two invariants matter for correctness and are enforced here
//! rather than in the loop:
//!
//! * **One request in flight per connection.** Framing a request moves to
//!   `Dispatched`; bytes a pipelining client sends early stay buffered
//!   (or in the kernel) untouched until the response is flushed.
//! * **Never double-answer.** [`begin_response`](Connection::begin_response)
//!   panics if a response is already being written — a bug in the caller,
//!   not a recoverable condition.
//!
//! The deadline *clock* lives here ([`started`](Connection::started) — the
//! instant a request's first byte arrived); deadline *policy* (when to
//! answer `408`, when to kill a stuck write) stays in the event loop.

use crate::http::{parse_request, ChunkedDecoder, ParseError, Parsed, Request};
use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Per-`read(2)` chunk; requests larger than this simply take more reads.
const READ_CHUNK: usize = 4096;

enum State {
    Reading,
    Dispatched,
    Writing {
        bytes: Vec<u8>,
        written: usize,
        keep: bool,
        not_before: Option<Instant>,
    },
    Closed,
}

/// What [`Connection::on_readable`] / [`try_parse`](Connection::try_parse)
/// found.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete request framed and drained; state is now `Dispatched`.
    Request(Request),
    /// No complete request yet; wait for more bytes.
    NeedMore,
    /// The bytes cannot be a valid request — answer `e.status`, close.
    Bad(ParseError),
    /// The request framed, but its own `X-Deadline-Ms` budget was spent
    /// before it finished arriving — dead on arrival, answer `408`.
    Doa,
    /// EOF or a transport error; the connection is now `Closed`. No
    /// response is owed (a clean close between requests and a torn
    /// mid-request sender land here alike).
    Disconnected,
    /// Not in the `Reading` state; nothing was done.
    NotReading,
}

/// What one [`Connection::on_writable`] step did.
#[derive(Debug)]
pub enum WriteEvent {
    /// The response is fully flushed. `keep: true` → state is `Reading`
    /// again (re-parse for pipelined successors); `false` → `Closed`.
    Flushed {
        /// Whether the connection stays open.
        keep: bool,
    },
    /// The transport is full; resume on the next writable event.
    NeedWritable,
    /// An injected write delay is pending; resume at the instant.
    Delayed(Instant),
    /// The peer is gone mid-write; the connection is now `Closed`.
    Disconnected,
    /// Not in the `Writing` state; nothing was done.
    NotWriting,
}

/// See the [module docs](self).
pub struct Connection<S> {
    transport: S,
    buf: Vec<u8>,
    state: State,
    started: Option<Instant>,
    /// A chunked request whose head has framed but whose body is still
    /// streaming through the decoder. Held here (not re-derived from the
    /// buffer) so each read feeds the decoder *incrementally* — re-parsing
    /// the accumulated body after every 4 KiB read would make a large
    /// upload quadratic.
    chunked: Option<(Request, ChunkedDecoder)>,
}

impl<S: Read + Write> Connection<S> {
    /// Wraps a transport (already non-blocking, in production).
    pub fn new(transport: S) -> Self {
        Connection {
            transport,
            buf: Vec::new(),
            state: State::Reading,
            started: None,
            chunked: None,
        }
    }

    /// The transport, e.g. for its raw fd.
    pub fn transport(&self) -> &S {
        &self.transport
    }

    /// Whether the connection is waiting for request bytes.
    pub fn is_reading(&self) -> bool {
        matches!(self.state, State::Reading)
    }

    /// Whether a request is out with a handler (no response begun yet).
    pub fn is_dispatched(&self) -> bool {
        matches!(self.state, State::Dispatched)
    }

    /// Whether a response is being written.
    pub fn is_writing(&self) -> bool {
        matches!(self.state, State::Writing { .. })
    }

    /// Whether the connection is finished (drop it).
    pub fn is_closed(&self) -> bool {
        matches!(self.state, State::Closed)
    }

    /// When the in-progress request's first byte arrived — the deadline
    /// clock for slow-sender `408`s. `None` between requests.
    pub fn started(&self) -> Option<Instant> {
        self.started
    }

    /// Marks the connection finished without further I/O.
    pub fn close(&mut self) {
        self.state = State::Closed;
    }

    /// Reads whatever the transport has (until `WouldBlock`), re-parsing
    /// after every chunk so framing errors and oversized claims are
    /// rejected as early as the old blocking server did.
    pub fn on_readable(&mut self) -> ReadEvent {
        if !self.is_reading() {
            return ReadEvent::NotReading;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if let Some(ev) = self.parse_step() {
                return ev;
            }
            match self.transport.read(&mut chunk) {
                // EOF. Clean between requests, torn mid-request — either
                // way nothing is owed and nothing more will arrive.
                Ok(0) => {
                    self.state = State::Closed;
                    return ReadEvent::Disconnected;
                }
                Ok(n) => {
                    if self.buf.is_empty() && self.started.is_none() {
                        self.started = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return ReadEvent::NeedMore;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.state = State::Closed;
                    return ReadEvent::Disconnected;
                }
            }
        }
    }

    /// Parses from the existing buffer without touching the transport —
    /// how pipelined successors get served after a response flushes.
    pub fn try_parse(&mut self) -> ReadEvent {
        if !self.is_reading() {
            return ReadEvent::NotReading;
        }
        self.parse_step().unwrap_or(ReadEvent::NeedMore)
    }

    /// One parse attempt; `None` means incomplete (read more).
    fn parse_step(&mut self) -> Option<ReadEvent> {
        // A chunked body in flight owns every incoming byte until its
        // terminator; no head parsing happens underneath it.
        if self.chunked.is_some() {
            return self.feed_chunked();
        }
        match parse_request(&mut self.buf) {
            Err(e) => Some(ReadEvent::Bad(e)),
            Ok(Parsed::Incomplete) => None,
            Ok(Parsed::Chunked { req, decoder }) => {
                self.chunked = Some((req, decoder));
                // Body bytes may have arrived with the head.
                self.feed_chunked()
            }
            Ok(Parsed::Request(req)) => self.finish_request(req),
        }
    }

    /// Advances an in-flight chunked body with whatever is buffered.
    fn feed_chunked(&mut self) -> Option<ReadEvent> {
        let (_, decoder) = self.chunked.as_mut().expect("chunked body in flight");
        match decoder.feed(&mut self.buf) {
            // Framing/cap failure: answer the status, close. The rest of
            // the upload is never buffered — the close discards it.
            Err(e) => {
                self.chunked = None;
                Some(ReadEvent::Bad(e))
            }
            Ok(false) => None,
            Ok(true) => {
                let (mut req, decoder) = self.chunked.take().expect("chunked body in flight");
                req.body = decoder.into_body();
                self.finish_request(req)
            }
        }
    }

    /// The common tail once a request is fully framed (either framing):
    /// the dead-on-arrival check, the deadline-clock handoff, dispatch.
    fn finish_request(&mut self, req: Request) -> Option<ReadEvent> {
        // A request whose own X-Deadline-Ms budget is already gone
        // by the time it framed is dead on arrival: answering 408
        // now beats handler work whose result could never be
        // delivered in time.
        let parse_elapsed = self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
        if req
            .deadline_ms
            .is_some_and(|ms| Duration::from_millis(ms) <= parse_elapsed)
        {
            return Some(ReadEvent::Doa);
        }
        self.started = if self.buf.is_empty() {
            None
        } else {
            // A pipelined successor is already buffered; its clock
            // starts now.
            Some(Instant::now())
        };
        self.state = State::Dispatched;
        Some(ReadEvent::Request(req))
    }

    /// Queues a fully-encoded response. `keep` controls the post-flush
    /// state; `not_before` (fault injection) holds the first byte back
    /// until the instant passes, without blocking anyone.
    ///
    /// # Panics
    ///
    /// If a response is already in flight or the connection is closed —
    /// the never-double-answer invariant, enforced at the source.
    pub fn begin_response(&mut self, bytes: Vec<u8>, keep: bool, not_before: Option<Instant>) {
        assert!(
            matches!(self.state, State::Reading | State::Dispatched),
            "double answer: begin_response while a response is already in flight"
        );
        self.state = State::Writing {
            bytes,
            written: 0,
            keep,
            not_before,
        };
    }

    /// Writes as much of the queued response as the transport takes.
    pub fn on_writable(&mut self, now: Instant) -> WriteEvent {
        let keep_after = {
            let State::Writing {
                bytes,
                written,
                keep,
                not_before,
            } = &mut self.state
            else {
                return WriteEvent::NotWriting;
            };
            if let Some(nb) = *not_before {
                if now < nb {
                    return WriteEvent::Delayed(nb);
                }
                *not_before = None;
            }
            loop {
                if *written >= bytes.len() {
                    break *keep;
                }
                match self.transport.write(&bytes[*written..]) {
                    Ok(0) => {
                        self.state = State::Closed;
                        return WriteEvent::Disconnected;
                    }
                    Ok(n) => *written += n,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::TimedOut =>
                    {
                        return WriteEvent::NeedWritable;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.state = State::Closed;
                        return WriteEvent::Disconnected;
                    }
                }
            }
        };
        if keep_after {
            self.state = State::Reading;
            if !self.buf.is_empty() && self.started.is_none() {
                self.started = Some(Instant::now());
            }
        } else {
            self.state = State::Closed;
        }
        WriteEvent::Flushed { keep: keep_after }
    }
}
