//! Differential oracle: a deliberately naive cycle-stepping re-implementation
//! of the default machine's timing, checked cycle-for-cycle against the
//! event-driven engine.
//!
//! The production engine never ticks idle cycles — write-buffer drains are
//! reconstructed lazily ("catch-up") at the next event. This oracle does
//! the opposite: it walks every cycle between events and launches drains
//! greedily the moment the memory is idle and the head entry has aged past
//! the drain delay. If the lazy reconstruction is correct, the two models
//! agree exactly on every completion time.
//!
//! Scope: the paper's default machine shape — split L1s, write-back,
//! no-write-allocate, whole-block fetch, wait-whole-block fills, dual
//! issue, read priority, coalescing on, no mid-levels, no MMU. Sizes,
//! blocks, cycle times, and buffer depth (≥1) vary.

use cachetime::{Simulator, SystemConfig};
use cachetime_cache::{Cache, CacheConfig, ReadOutcome, ReplacementPolicy, WriteOutcome};
use cachetime_mem::{MemoryConfig, MemoryTiming};
use cachetime_trace::Trace;
use cachetime_testkit::{check_config, prop_assert_eq, CaseResult, Config, SplitMix64};
use cachetime_types::{AccessKind, BlockWords, CacheSize, CycleTime, MemRef, Pid, WordAddr};

const WORD_REGION: u64 = 16; // must match WbEntry::word's coalescing region

#[derive(Debug, Clone)]
struct RefEntry {
    pid: Pid,
    start: u64,
    span: u64,
    /// None = whole block of `words`; Some(mask) = word entry.
    mask: Option<u64>,
    words: u32,
    ready_at: u64,
}

impl RefEntry {
    fn overlaps(&self, pid: Pid, start: u64, words: u32) -> bool {
        if self.pid != pid || self.start >= start + words as u64 || start >= self.start + self.span
        {
            return false;
        }
        match self.mask {
            None => true,
            Some(mask) => {
                let lo = start.saturating_sub(self.start).min(self.span) as u32;
                let hi = (start + words as u64 - self.start).min(self.span) as u32;
                (lo..hi).any(|b| mask & (1 << b) != 0)
            }
        }
    }
}

/// The naive tick-stepping machine.
struct RefMachine {
    timing: MemoryTiming,
    drain_delay: u64,
    depth: usize,
    l1i: Cache,
    l1d: Cache,
    wb: std::collections::VecDeque<RefEntry>,
    mem_free: u64,
    /// All cycles strictly before this have been tick-processed.
    swept_to: u64,
    mem_reads: u64,
    mem_writes: u64,
}

impl RefMachine {
    fn new(l1: CacheConfig, memory: &MemoryConfig, ct: CycleTime) -> Self {
        RefMachine {
            timing: MemoryTiming::new(memory, ct),
            drain_delay: memory.wb_drain_delay(),
            depth: memory.wb_depth() as usize,
            l1i: Cache::new(l1),
            l1d: Cache::new(l1),
            wb: Default::default(),
            mem_free: 0,
            swept_to: 0,
            mem_reads: 0,
            mem_writes: 0,
        }
    }

    /// Launches the head drain at cycle `c` unconditionally.
    fn launch(&mut self, c: u64) -> u64 {
        let e = self.wb.pop_front().expect("launch on empty buffer");
        let start = c.max(e.ready_at).max(self.mem_free);
        let release = start + self.timing.write_bus_time(e.words);
        self.mem_free = release + self.timing.write_op_cycles() + self.timing.recovery_cycles();
        self.mem_writes += 1;
        release
    }

    /// Tick-steps every cycle in `[swept_to, upto)`, greedily launching
    /// eligible drains.
    fn sweep(&mut self, upto: u64) {
        let mut c = self.swept_to;
        while c < upto {
            let Some(front) = self.wb.front() else { break };
            let eligible = front.ready_at + self.drain_delay;
            // Nothing can happen before both the memory frees and the
            // entry ages; skip ahead (pure optimization of the tick loop).
            let next = c.max(eligible).max(self.mem_free);
            if next >= upto {
                break;
            }
            c = next;
            self.launch(c);
        }
        self.swept_to = self.swept_to.max(upto);
    }

    /// A fill request arriving at cycle `t` (read priority; address
    /// matches force drain-through).
    fn fill(
        &mut self,
        t: u64,
        pid: Pid,
        addr: WordAddr,
        words: u32,
        victim: Option<(WordAddr, u32)>,
    ) -> u64 {
        self.sweep(t);
        if let Some(i) = self
            .wb
            .iter()
            .rposition(|e| e.overlaps(pid, addr.value(), words))
        {
            for _ in 0..=i {
                self.launch(t);
            }
        }
        let start = t.max(self.mem_free);
        let data_start = start + self.timing.config().addr_cycles() + self.timing.latency_cycles();
        let transfer = self.timing.transfer_cycles(words);
        self.mem_free = data_start + transfer + self.timing.recovery_cycles();
        self.mem_reads += 1;
        let mut gate = data_start;
        if let Some((vaddr, vwords)) = victim {
            let move_start = if self.wb.len() == self.depth {
                self.launch(self.mem_free)
            } else {
                start
            };
            let move_done = move_start + vwords as u64;
            self.wb.push_back(RefEntry {
                pid,
                start: vaddr.value(),
                span: vwords as u64,
                mask: None,
                words: vwords,
                ready_at: move_done,
            });
            gate = gate.max(move_done);
        }
        gate + transfer
    }

    /// A word write arriving at cycle `t` (coalesce into the tail when the
    /// word falls in its region).
    fn write_word(&mut self, t: u64, pid: Pid, addr: WordAddr) -> u64 {
        self.sweep(t);
        let a = addr.value();
        if let Some(tail) = self.wb.back_mut() {
            if tail.pid == pid && a >= tail.start && a < tail.start + tail.span {
                match &mut tail.mask {
                    None => return t, // block entry absorbs the word
                    Some(mask) => {
                        let bit = 1u64 << (a - tail.start);
                        if *mask & bit == 0 {
                            *mask |= bit;
                            tail.words += 1;
                        }
                        return t;
                    }
                }
            }
        }
        let ready = if self.wb.len() == self.depth {
            self.launch(t)
        } else {
            t
        };
        let region = a & !(WORD_REGION - 1);
        self.wb.push_back(RefEntry {
            pid,
            start: region,
            span: WORD_REGION,
            mask: Some(1u64 << (a - region)),
            words: 1,
            ready_at: ready,
        });
        ready
    }

    /// Runs the whole trace; returns (total cycles, mem reads, mem writes).
    fn run(&mut self, trace: &Trace) -> (u64, u64, u64) {
        let refs = trace.refs();
        let mut now = 0u64;
        let mut i = 0usize;
        while i < refs.len() {
            let a = refs[i];
            let (iref, dref) = if a.kind == AccessKind::IFetch
                && i + 1 < refs.len()
                && refs[i + 1].kind.is_data()
                && refs[i + 1].pid == a.pid
            {
                i += 2;
                (Some(a), Some(refs[i - 1]))
            } else if a.kind.is_data() {
                i += 1;
                (None, Some(a))
            } else {
                i += 1;
                (Some(a), None)
            };
            let mut done = now;
            if let Some(r) = iref {
                done = done.max(self.service_read(true, r, now));
            }
            if let Some(r) = dref {
                let c = if r.kind == AccessKind::Store {
                    self.service_write(r, now)
                } else {
                    self.service_read(false, r, now)
                };
                done = done.max(c);
            }
            now = done;
        }
        (now, self.mem_reads, self.mem_writes)
    }

    fn service_read(&mut self, instruction: bool, r: MemRef, now: u64) -> u64 {
        let cache = if instruction {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let block_words = cache.config().block().words();
        match cache.read(r.addr, r.pid) {
            ReadOutcome::Hit => now + 1,
            ReadOutcome::SlowHit | ReadOutcome::VictimHit => {
                unreachable!("oracle configs enable no organization features")
            }
            ReadOutcome::Miss { fill_words, victim } => {
                let fetch_start = WordAddr::new(r.addr.value() & !(fill_words as u64 - 1));
                let victim = victim.map(|ev| (ev.addr.first_word(block_words), ev.words));
                self.fill(now + 1, r.pid, fetch_start, fill_words, victim)
            }
        }
    }

    fn service_write(&mut self, r: MemRef, now: u64) -> u64 {
        match self.l1d.write(r.addr, r.pid) {
            WriteOutcome::Hit { .. } => now + 2,
            WriteOutcome::MissNoAllocate => {
                let accepted = self.write_word(now + 1, r.pid, r.addr);
                (now + 2).max(accepted + 1)
            }
            WriteOutcome::MissAllocate { .. } => unreachable!("no-allocate configs only"),
            WriteOutcome::VictimHit { .. } => {
                unreachable!("oracle configs enable no organization features")
            }
        }
    }
}

/// One oracle scenario: machine shape plus a reference stream.
#[derive(Debug, Clone)]
struct Scenario {
    refs: Vec<MemRef>,
    kb_log: u32,
    block_log: u32,
    ct: u32,
    depth: u32,
    delay: u64,
}

fn gen_scenario(rng: &mut SplitMix64) -> Scenario {
    let n = rng.gen_range(1usize..400);
    let refs = (0..n)
        .map(|_| {
            let a = WordAddr::new(rng.gen_range(0u64..1024));
            let pid = Pid(rng.gen_range(0u16..2));
            match rng.gen_range(0u8..3) {
                0 => MemRef::ifetch(a, pid),
                1 => MemRef::load(a, pid),
                _ => MemRef::store(a, pid),
            }
        })
        .collect();
    Scenario {
        refs,
        kb_log: rng.gen_range(0u32..3),
        block_log: rng.gen_range(0u32..4),
        ct: rng.gen_range(10u32..80),
        depth: rng.gen_range(1u32..6),
        delay: rng.gen_range(0u64..48),
    }
}

/// Shrinks only the reference stream; the machine shape stays fixed.
fn shrink_scenario(s: &Scenario) -> Vec<Scenario> {
    cachetime_testkit::shrink::vec_linear(&s.refs)
        .into_iter()
        .map(|refs| Scenario { refs, ..s.clone() })
        .collect()
}

/// The property body, shared with the explicit regression tests.
fn check_engine_matches_oracle(s: &Scenario) -> CaseResult {
    let l1 = CacheConfig::builder(CacheSize::from_kib(1 << s.kb_log).expect("pow2"))
        .block(BlockWords::new(1 << s.block_log).expect("pow2"))
        .replacement(ReplacementPolicy::Lru)
        .build()
        .expect("valid cache");
    let memory = MemoryConfig::builder()
        .wb_depth(s.depth)
        .wb_drain_delay(s.delay)
        .build()
        .expect("valid memory");
    let ct = CycleTime::from_ns(s.ct).expect("nonzero");
    let config = SystemConfig::builder()
        .cycle_time(ct)
        .l1_both(l1)
        .memory(memory)
        .build()
        .expect("valid system");
    let trace = Trace::new("oracle", s.refs.clone(), 0);

    let real = Simulator::new(&config).run(&trace);
    let (cycles, reads, writes) = RefMachine::new(l1, &memory, ct).run(&trace);

    prop_assert_eq!(real.cycles.0, cycles, "cycle totals diverged");
    prop_assert_eq!(real.mem.reads, reads, "memory read counts diverged");
    prop_assert_eq!(real.mem.writes, writes, "memory write counts diverged");
    Ok(())
}

/// The lazy event-driven engine and the greedy tick-stepping oracle
/// agree exactly on total cycles and memory traffic.
#[test]
fn event_engine_matches_tick_oracle() {
    let config = Config {
        cases: 96,
        ..Config::default()
    };
    check_config(
        &config,
        "event_engine_matches_tick_oracle",
        gen_scenario,
        shrink_scenario,
        check_engine_matches_oracle,
    );
}

/// Regression (found by the previous fuzzing setup): a store coalescing
/// into an aged write-buffer entry around a cross-pid ifetch exercised
/// the lazy drain reconstruction at delay 32.
#[test]
fn regression_coalesce_around_cross_pid_ifetch() {
    let p0 = Pid(0);
    let s = Scenario {
        refs: vec![
            MemRef::store(WordAddr::new(0), p0),
            MemRef::ifetch(WordAddr::new(4), p0),
            MemRef::load(WordAddr::new(4), p0),
            MemRef::ifetch(WordAddr::new(0), Pid(1)),
            MemRef::store(WordAddr::new(0), p0),
            MemRef::store(WordAddr::new(0), p0),
            MemRef::load(WordAddr::new(21), p0),
        ],
        kb_log: 0,
        block_log: 2,
        ct: 47,
        depth: 3,
        delay: 32,
    };
    check_engine_matches_oracle(&s).expect("regression case must pass");
}
