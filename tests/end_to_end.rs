//! End-to-end integration: the full pipeline (catalog trace → simulator →
//! metrics) on realistic configurations, with cross-component invariants.

use cachetime::{simulate, LevelTwoConfig, Simulator, SystemConfig};
use cachetime_cache::CacheConfig;
use cachetime_trace::catalog;
use cachetime_types::{Assoc, BlockWords, CacheSize, CycleTime};

const SCALE: f64 = 0.03;

/// Invariants every simulation result must satisfy.
fn check_invariants(r: &cachetime::SimResult) {
    assert!(r.refs > 0);
    assert!(r.couplets > 0);
    assert!(r.couplets <= r.refs, "pairing can only shrink issue slots");
    assert!(
        r.cycles.0 >= r.couplets,
        "every couplet costs at least a cycle"
    );
    for ratio in [
        r.read_miss_ratio(),
        r.ifetch_miss_ratio(),
        r.load_miss_ratio(),
    ] {
        assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of range");
    }
    assert!(r.read_traffic_ratio() >= 0.0);
    assert!(r.write_traffic_ratio_block() >= r.write_traffic_ratio_dirty());
    assert!(
        r.stall_cycles <= r.cycles,
        "stalls cannot exceed total cycles"
    );
    assert!((0.0..=1.0).contains(&r.stall_fraction()));
    // Fill accounting: words fetched from memory+L2 at least cover L1
    // fills when there is no L2 (with an L2 most L1 fills hit there).
    if r.l2.is_none() {
        assert_eq!(
            r.mem.read_words,
            r.l1i.fill_words + r.l1d.fill_words,
            "every L1 fill word must come from memory"
        );
    }
    // Write conservation: memory write words cannot exceed what the caches
    // sent down (write-backs + word writes), but can be less only through
    // still-buffered writes (bounded by buffer capacity x block size).
    let sent = r.l1d.write_back_words
        + r.l1i.write_back_words
        + r.l1d.word_writes_downstream
        + r.l1i.word_writes_downstream;
    if r.l2.is_none() {
        // Writes buffered before the warm-start boundary may drain after
        // it; allow one buffer's worth of carryover (4 entries of at most
        // 16 words each).
        assert!(
            r.mem.write_words <= sent + 64,
            "memory cannot invent writes: {} > {sent} + carryover",
            r.mem.write_words
        );
    }
}

#[test]
fn default_machine_on_every_catalog_trace() {
    let config = SystemConfig::paper_default().expect("valid config");
    for spec in catalog::all(SCALE) {
        let trace = spec.generate();
        let r = simulate(&config, &trace);
        check_invariants(&r);
        // A 64KB-per-side machine on these workloads lands in a sane band.
        assert!(
            (0.8..3.5).contains(&r.cycles_per_ref()),
            "{}: cycles/ref {} implausible",
            trace.name(),
            r.cycles_per_ref()
        );
    }
}

#[test]
fn extreme_configurations_hold_invariants() {
    let trace = catalog::savec(SCALE).generate();
    let tiny = CacheConfig::builder(CacheSize::from_bytes(256).expect("pow2"))
        .build()
        .expect("valid cache");
    let huge = CacheConfig::builder(CacheSize::from_kib(2048).expect("pow2"))
        .block(BlockWords::new(128).expect("pow2"))
        .assoc(Assoc::new(8).expect("pow2"))
        .build()
        .expect("valid cache");
    for l1 in [tiny, huge] {
        for ct in [20u32, 80] {
            let config = SystemConfig::builder()
                .cycle_time(CycleTime::from_ns(ct).expect("nonzero"))
                .l1_both(l1)
                .build()
                .expect("valid system");
            let r = simulate(&config, &trace);
            check_invariants(&r);
        }
    }
}

#[test]
fn two_level_machine_end_to_end() {
    let trace = catalog::rd2n4(SCALE).generate();
    let l1 = CacheConfig::builder(CacheSize::from_kib(4).expect("pow2"))
        .build()
        .expect("valid cache");
    let l2cache = CacheConfig::builder(CacheSize::from_kib(256).expect("pow2"))
        .block(BlockWords::new(16).expect("pow2"))
        .build()
        .expect("valid L2");
    let with_l2 = SystemConfig::builder()
        .l1_both(l1)
        .l2(LevelTwoConfig::new(l2cache))
        .build()
        .expect("valid system");
    let without = SystemConfig::builder()
        .l1_both(l1)
        .build()
        .expect("valid system");

    let r2 = simulate(&with_l2, &trace);
    let r1 = simulate(&without, &trace);
    check_invariants(&r2);
    check_invariants(&r1);

    let l2 = r2.l2.expect("L2 stats");
    assert!(l2.reads > 0, "L1 misses must reach the L2");
    assert!(
        l2.read_misses < l2.reads,
        "a 256KB L2 behind a 4KB L1 must catch something"
    );
    // The L2 filters memory traffic.
    assert!(r2.mem.reads < r1.mem.reads);
    // And improves execution time for this small L1.
    assert!(r2.exec_time() < r1.exec_time());
}

#[test]
fn unified_never_beats_split_of_same_total_size() {
    let trace = catalog::mu3(SCALE).generate();
    let split8 = CacheConfig::builder(CacheSize::from_kib(8).expect("pow2"))
        .build()
        .expect("valid");
    let unified16 = CacheConfig::builder(CacheSize::from_kib(16).expect("pow2"))
        .build()
        .expect("valid");
    let split = SystemConfig::builder()
        .l1_both(split8)
        .build()
        .expect("valid system");
    let unified = SystemConfig::builder()
        .l1_both(unified16)
        .unified(true)
        .build()
        .expect("valid system");
    let rs = simulate(&split, &trace);
    let ru = simulate(&unified, &trace);
    check_invariants(&rs);
    check_invariants(&ru);
    // The unified cache has a better miss ratio (dynamic partitioning) but
    // loses dual issue; the Harvard machine wins on time — the paper's
    // premise for modeling a Harvard organization.
    assert!(
        rs.exec_time() < ru.exec_time(),
        "split {} vs unified {}",
        rs.exec_time(),
        ru.exec_time()
    );
}

#[test]
fn simulator_reuse_matches_fresh_instance() {
    let config = SystemConfig::paper_default().expect("valid config");
    let a = catalog::mu3(SCALE).generate();
    let b = catalog::rd1n3(SCALE).generate();
    let mut reused = Simulator::new(&config);
    reused.run(&a);
    let reused_b = reused.run(&b);
    let fresh_b = Simulator::new(&config).run(&b);
    assert_eq!(reused_b, fresh_b, "run() must fully reset the machine");
}

#[test]
fn write_buffer_earns_its_keep() {
    let mk = |kb: u64, depth: u32| {
        let l1 = CacheConfig::builder(CacheSize::from_kib(kb).expect("pow2"))
            .build()
            .expect("valid");
        SystemConfig::builder()
            .l1_both(l1)
            .memory(
                cachetime_mem::MemoryConfig::builder()
                    .wb_depth(depth)
                    .build()
                    .expect("valid memory"),
            )
            .build()
            .expect("valid system")
    };
    // A store-heavy workload (rd2n7's grep zeroes its data space): write
    // bursts saturate an unbuffered memory, while the buffer coalesces
    // them. Here buffering must win outright.
    let storm = catalog::rd2n7(SCALE).generate();
    let rb = simulate(&mk(16, 4), &storm);
    let ru = simulate(&mk(16, 0), &storm);
    assert!(
        ru.cycles > rb.cycles,
        "an unbuffered memory must lose under a write storm: {} vs {}",
        ru.cycles,
        rb.cycles
    );
    // On a read-dominated workload the paper's no-forwarding buffer
    // (reads stall on matches) is roughly neutral; it must never be much
    // worse than no buffer at all.
    let mixed = catalog::savec(SCALE).generate();
    let rb = simulate(&mk(4, 4), &mixed);
    let ru = simulate(&mk(4, 0), &mixed);
    let ratio = rb.cycles.0 as f64 / ru.cycles.0 as f64;
    assert!(
        ratio < 1.02,
        "buffered run {:.3}x the unbuffered one",
        ratio
    );
}
