//! `cachetime` — an execution-time-centred cache design simulator.
//!
//! A from-scratch reproduction of the system behind *Performance Tradeoffs
//! in Cache Design* (Przybylski, Horowitz, Hennessy; ISCA 1988). Where the
//! classic cache literature stops at miss ratios and traffic ratios, this
//! simulator models **time**: every organizational knob interacts with the
//! CPU/cache cycle time and with a main memory whose latency, transfer
//! rate, and recovery period quantize to whole cycles. Execution time — the
//! product of cycle count and cycle time — is the figure of merit.
//!
//! The modeled machine (paper, section 2):
//!
//! * a pipelined CPU issuing paired instruction+data references
//!   ("couplets"); both must complete before the next pair issues;
//! * split 64 KB I and D caches (direct-mapped, 4-word blocks, virtual
//!   tags, write-back, no allocation on write miss) — every parameter
//!   adjustable through [`SystemConfig`];
//! * a four-block write buffer with read-address matching;
//! * main memory as a single functional unit: 1 address cycle + 180 ns
//!   latency + 1 word/cycle transfer, 120 ns recovery, writes 100 ns;
//! * an optional second cache level ([`LevelTwoConfig`]) for the paper's
//!   section-6 multi-level hierarchy argument.
//!
//! # Quick start
//!
//! ```
//! use cachetime::{simulate, SystemConfig};
//! use cachetime_trace::catalog;
//!
//! let config = SystemConfig::paper_default()?;
//! let trace = catalog::savec(0.02).generate();
//! let result = simulate(&config, &trace);
//!
//! println!("cycles/ref = {:.3}", result.cycles_per_ref());
//! println!("exec time  = {}", result.exec_time());
//! assert!(result.cycles.0 > 0);
//! # Ok::<(), cachetime_types::ConfigError>(())
//! ```
//!
//! The organizational substrate lives in [`cachetime_cache`], the memory
//! timing model in [`cachetime_mem`], and the synthetic workloads in
//! [`cachetime_trace`]; this crate re-exports the pieces a simulator user
//! needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod engine;
mod hierarchy;
pub mod keyed;
mod replay;
mod result;
pub mod sweep;
mod system;

pub use engine::Simulator;
pub use replay::{replay, replay_many, simulate_two_phase, BehavioralSim, EventTrace};
pub use result::{CoupletHistogram, SimResult};
pub use system::{
    FillPolicy, LevelTwoConfig, OrgConfig, SystemConfig, SystemConfigBuilder, TimingConfig,
};

// Re-export the vocabulary crates under their natural names.
pub use cachetime_cache as cache;
pub use cachetime_mem as mem;
pub use cachetime_types as types;

use cachetime_trace::Trace;

/// Runs `trace` through a fresh simulator built from `config`.
///
/// Statistics cover only the post-warm-start window (the paper's
/// "warm start runs"). For repeated runs over the same configuration,
/// construct a [`Simulator`] directly.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn simulate(config: &SystemConfig, trace: &Trace) -> SimResult {
    Simulator::new(config).run(trace)
}
