//! Span timers and trace sinks.
//!
//! A [`Span`] is a drop guard: create it at the top of a phase, let it
//! fall out of scope at the end. Its duration feeds the registry's
//! `cachetime_span_duration_us{span="..."}` histogram, and — when a
//! sink is installed — one trace record per span is emitted. The
//! bundled [`JsonlSink`] writes newline-delimited JSON suitable for
//! `--profile <path>`.

use crate::registry::Registry;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One finished span, handed to the installed [`SpanSink`].
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord<'a> {
    /// The span's name, e.g. `core_record`.
    pub span: &'a str,
    /// Microseconds since the Unix epoch at span start.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Units of work covered (references replayed, tasks run, ...);
    /// zero when the caller did not set one.
    pub work: u64,
}

/// Receives finished spans. Implementations must be cheap and
/// non-blocking enough to sit on simulation paths.
pub trait SpanSink: Send + Sync {
    /// Consume one finished span.
    fn emit(&self, record: &SpanRecord<'_>);
}

/// A drop-guard timer created by [`Registry::span`].
pub struct Span<'a> {
    registry: &'a Registry,
    name: &'static str,
    /// `None` when spans were disabled at creation — the guard is then
    /// fully inert.
    start: Option<Instant>,
    start_us: u64,
    work: u64,
}

impl<'a> Span<'a> {
    pub(crate) fn start(registry: &'a Registry, name: &'static str, enabled: bool) -> Self {
        let (start, start_us) = if enabled {
            let start_us = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            (Some(Instant::now()), start_us)
        } else {
            (None, 0)
        };
        Self {
            registry,
            name,
            start,
            start_us,
            work: 0,
        }
    }

    /// Attach a work count (events replayed, tasks completed, ...) so
    /// trace records carry a throughput denominator.
    pub fn set_work(&mut self, work: u64) {
        self.work = work;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        self.registry
            .histogram("cachetime_span_duration_us", &[("span", self.name)])
            .record(dur_us);
        if let Some(sink) = self.registry.current_sink() {
            sink.emit(&SpanRecord {
                span: self.name,
                start_us: self.start_us,
                dur_us,
                work: self.work,
            });
        }
    }
}

/// Writes one JSON object per span, newline-delimited, to a file.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl SpanSink for JsonlSink {
    fn emit(&self, record: &SpanRecord<'_>) {
        // Span names are static identifiers ([a-z0-9_]) — no escaping
        // needed. Flush per line so a profile is complete even if the
        // process exits without dropping the sink.
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(
            out,
            "{{\"span\":\"{}\",\"start_us\":{},\"dur_us\":{},\"work\":{}}}",
            record.span, record.start_us, record.dur_us, record.work
        );
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct CountingSink(AtomicU64, AtomicU64);
    impl SpanSink for CountingSink {
        fn emit(&self, record: &SpanRecord<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
            self.1.fetch_add(record.work, Ordering::Relaxed);
        }
    }

    #[test]
    fn spans_feed_the_duration_histogram_and_the_sink() {
        let r = Registry::new();
        let sink = Arc::new(CountingSink(AtomicU64::new(0), AtomicU64::new(0)));
        r.set_sink(Some(sink.clone()));
        {
            let mut span = r.span("unit_test");
            span.set_work(42);
        }
        let h = r.histogram("cachetime_span_duration_us", &[("span", "unit_test")]);
        assert_eq!(h.count(), 1);
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
        assert_eq!(sink.1.load(Ordering::Relaxed), 42);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let r = Registry::new();
        let sink = Arc::new(CountingSink(AtomicU64::new(0), AtomicU64::new(0)));
        r.set_sink(Some(sink.clone()));
        r.set_spans_enabled(false);
        drop(r.span("quiet"));
        assert_eq!(
            r.histogram("cachetime_span_duration_us", &[("span", "quiet")]).count(),
            0
        );
        assert_eq!(sink.0.load(Ordering::Relaxed), 0);
        r.set_spans_enabled(true);
        drop(r.span("loud"));
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let path = std::env::temp_dir().join(format!(
            "cachetime-obs-sink-{}.jsonl",
            std::process::id()
        ));
        let r = Registry::new();
        r.set_sink(Some(Arc::new(JsonlSink::create(&path).unwrap())));
        {
            let mut s = r.span("alpha");
            s.set_work(7);
        }
        drop(r.span("beta"));
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("{\"span\":\"alpha\""), "{text}");
        assert!(lines[0].contains("\"work\":7"), "{text}");
        assert!(lines[1].starts_with("{\"span\":\"beta\""), "{text}");
    }
}
