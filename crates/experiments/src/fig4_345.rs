//! Figures 4-3, 4-4, 4-5: break-even cycle-time degradation for set
//! associativity.
//!
//! "Vertical interpolation between solid lines allows estimation of the
//! cycle time that a direct mapped machine would need to match the
//! performance of a set associative design of the same size. The
//! difference between the cycle times of the two machines is the amount of
//! time available for the implementation of set associativity."
//!
//! Per footnote 9, the 56 ns data is smoothed first: the quantization
//! artifact "severely distorted the analysis of set associativity".

use crate::fig4_2::AssocGrids;
use cachetime_analysis::table::Table;
use cachetime_analysis::{crossing, interp_at, smooth_index};

/// A break-even map for one set size.
#[derive(Debug, Clone)]
pub struct BreakEvenMap {
    /// The set size this map compares against direct mapped.
    pub assoc: u32,
    /// Total L1 sizes (KB).
    pub sizes_total_kb: Vec<u64>,
    /// Cycle times (ns).
    pub cts_ns: Vec<u32>,
    /// `break_even[size][ct]`: ns of cycle-time degradation at which the
    /// set-associative machine stops paying off (None when the
    /// interpolation leaves the sampled range).
    pub break_even: Vec<Vec<Option<f64>>>,
}

impl BreakEvenMap {
    /// The largest break-even value anywhere in the map.
    pub fn max_break_even(&self) -> Option<f64> {
        self.break_even
            .iter()
            .flatten()
            .flatten()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Computes the break-even map of `assoc` ways against direct mapped.
///
/// # Panics
///
/// Panics if the grids lack a direct-mapped sweep or the requested
/// associativity.
pub fn run(grids: &AssocGrids, assoc: u32) -> BreakEvenMap {
    let dm = grids.for_assoc(1).expect("direct-mapped grid required");
    let sa = grids.for_assoc(assoc).expect("assoc grid required");
    let cts = dm.cts_f64();
    let smooth = |curve: &[f64]| -> Vec<f64> {
        match dm.cts_ns.iter().position(|&c| c == 56) {
            Some(i) => smooth_index(&cts, curve, i),
            None => curve.to_vec(),
        }
    };
    let mut break_even = Vec::new();
    for (i, _) in dm.sizes_total_kb.iter().enumerate() {
        let dm_curve = smooth(&dm.time_per_ref[i]);
        let sa_curve = smooth(&sa.time_per_ref[i]);
        let row = cts
            .iter()
            .map(|&ct| {
                // The direct-mapped machine at cycle time ct sets the bar;
                // the set-associative machine matches it at ct_sa. The gap
                // is the time budget for implementing associativity.
                let dm_perf = interp_at(&cts, &dm_curve, ct);
                crossing(&cts, &sa_curve, dm_perf).map(|ct_sa| ct_sa - ct)
            })
            .collect();
        break_even.push(row);
    }
    BreakEvenMap {
        assoc,
        sizes_total_kb: dm.sizes_total_kb.clone(),
        cts_ns: dm.cts_ns.clone(),
        break_even,
    }
}

/// Renders the map (the figure's 2 ns contour bands become numbers here).
pub fn render(m: &BreakEvenMap) -> String {
    let mut headers = vec!["Total L1".to_string()];
    headers.extend(m.cts_ns.iter().map(|ct| format!("{ct}ns")));
    let mut t = Table::new(headers);
    for (i, &kb) in m.sizes_total_kb.iter().enumerate() {
        let mut row = vec![format!("{kb}KB")];
        row.extend(
            m.break_even[i]
                .iter()
                .map(|v| v.map_or("-".to_string(), |b| format!("{b:.1}"))),
        );
        t.row(row);
    }
    format!(
        "Figure 4-{}: set size {} break-even cycle time degradation (ns)\n{t}",
        match m.assoc {
            2 => "3",
            4 => "4",
            _ => "5",
        },
        m.assoc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig4_2;
    use crate::runner::TraceSet;

    #[test]
    fn break_even_is_small_and_positive_where_defined() {
        let traces = TraceSet::quick();
        let grids = fig4_2::run_over(&traces, &[1, 2], &[2, 64], &[20, 40, 60, 80]);
        let m = run(&grids, 2);
        assert_eq!(m.assoc, 2);
        let mut seen = 0;
        for row in &m.break_even {
            for v in row.iter().flatten() {
                seen += 1;
                assert!(
                    (-5.0..30.0).contains(v),
                    "break-even {v} outside plausible band"
                );
            }
        }
        assert!(seen > 0, "at least some cells must interpolate");
        assert!(render(&m).contains("set size 2"));
    }

    #[test]
    fn small_caches_afford_more_than_large() {
        let traces = TraceSet::quick();
        let grids = fig4_2::run_over(&traces, &[1, 2], &[2, 512], &[20, 40, 60, 80]);
        let m = run(&grids, 2);
        let at = |i: usize| m.break_even[i][1].unwrap_or(0.0);
        assert!(
            at(0) >= at(1) - 0.5,
            "4KB break-even {} should not be dwarfed by 1MB's {}",
            at(0),
            at(1)
        );
    }
}
