//! Multiprogrammed workload assembly: interleaving, OS preemption, and the
//! R2000-style initialization prefix.

use crate::process::{ProcessParams, SyntheticProcess};
use crate::trace::Trace;
use cachetime_types::{AccessKind, MemRef, StableHash, StableHasher};
use cachetime_testkit::SplitMix64;
use std::collections::HashMap;

/// A complete recipe for one synthetic trace.
///
/// Mirrors the two trace families of the paper's Table 1:
///
/// * VAX-style: several processes (optionally one behaving like the
///   operating system — frequent, short quanta) interleaved with geometric
///   context-switch intervals; warm start at a fixed reference count.
/// * R2000-style: [`WorkloadSpec::init_prefix`] set, which prepends every
///   unique reference each process touched during an unrecorded pre-run,
///   "in the order of their most recent use", so that "the cache contents
///   at the warm start boundary is very similar to what it would be if the
///   programs were simulated from their beginning … regardless of the
///   cache organization".
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Trace name (e.g. `"mu3"`).
    pub name: String,
    /// Per-process generator parameters.
    pub processes: Vec<ProcessParams>,
    /// Measured (post-warm-start) reference count.
    pub length: usize,
    /// Warm-up references before the measured window (ignored when
    /// `init_prefix` is set — the prefix *is* the warm-up).
    pub warm_up: usize,
    /// Mean context-switch interval in references.
    pub mean_switch: f64,
    /// Treat process 0 as the operating system: it preempts often with
    /// short quanta.
    pub os_process: bool,
    /// Prepend the most-recent-use initialization prefix (R2000 style).
    pub init_prefix: bool,
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
}

impl StableHash for WorkloadSpec {
    /// Hashes the full recipe. Trace generation is deterministic in these
    /// fields, so equal spec hashes imply bit-identical generated traces —
    /// the property the simulation server's content-addressed store keys
    /// on.
    fn stable_hash(&self, h: &mut StableHasher) {
        self.name.stable_hash(h);
        self.processes.stable_hash(h);
        self.length.stable_hash(h);
        self.warm_up.stable_hash(h);
        self.mean_switch.stable_hash(h);
        self.os_process.stable_hash(h);
        self.init_prefix.stable_hash(h);
        self.seed.stable_hash(h);
    }
}

impl WorkloadSpec {
    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty.
    pub fn generate(&self) -> Trace {
        assert!(!self.processes.is_empty(), "workload needs processes");
        let mut rng = SplitMix64::from_seed(self.seed);
        let mut procs: Vec<SyntheticProcess> = self
            .processes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                SyntheticProcess::new(
                    cachetime_types::Pid(i as u16 + 1),
                    p.clone(),
                    self.seed.wrapping_add(7919 * (i as u64 + 1)),
                )
            })
            .collect();

        let mut refs: Vec<MemRef> = Vec::with_capacity(self.length + self.warm_up);

        if self.init_prefix {
            let prefixes: Vec<Vec<MemRef>> = procs
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    let params = &self.processes[i];
                    if params.startup_zero_words > 0 {
                        // "The grep and egrep programs were observed from
                        // the start of execution": no pre-run, no prefix —
                        // their start-up storm belongs in the trace body.
                        return Vec::new();
                    }
                    let footprint =
                        (params.code_words + params.data_words + params.stack_words) as usize;
                    let prewarm = (footprint * 4).clamp(10_000, 2_000_000);
                    most_recent_use_prefix(p, prewarm)
                })
                .collect();
            interleave_prefixes(&mut refs, prefixes, self.mean_switch, &mut rng);
        } else {
            self.run_body(&mut refs, &mut procs, self.warm_up, &mut rng);
        }

        let warm_start = refs.len();
        self.run_body(&mut refs, &mut procs, self.length, &mut rng);
        Trace::new(self.name.clone(), refs, warm_start)
    }

    /// Appends `count` interleaved references to `refs`.
    fn run_body(
        &self,
        refs: &mut Vec<MemRef>,
        procs: &mut [SyntheticProcess],
        count: usize,
        rng: &mut SplitMix64,
    ) {
        let target = refs.len() + count;
        let n = procs.len();
        while refs.len() < target {
            // Pick the next process: the OS preempts often but briefly.
            let (idx, quantum_mean) = if self.os_process && n > 1 && rng.gen_bool(0.35) {
                (0, self.mean_switch / 4.0)
            } else {
                let lo = usize::from(self.os_process && n > 1);
                (rng.gen_range(lo..n), self.mean_switch)
            };
            let quantum = 1 + geometric(rng, quantum_mean);
            let quantum = quantum.min(target - refs.len());
            for _ in 0..quantum {
                refs.push(procs[idx].next_ref());
            }
        }
    }
}

/// Runs `p` for `prewarm` unrecorded references and returns its unique
/// references ordered by most recent use (oldest first, so the most
/// recently used end up deepest in the warm cache's recency order —
/// exactly the paper's prefix construction).
fn most_recent_use_prefix(p: &mut SyntheticProcess, prewarm: usize) -> Vec<MemRef> {
    let mut last_use: HashMap<u64, (usize, AccessKind)> = HashMap::new();
    for seq in 0..prewarm {
        let r = p.next_ref();
        last_use.insert(r.addr.value(), (seq, r.kind));
    }
    let mut entries: Vec<(usize, u64, AccessKind)> = last_use
        .into_iter()
        .map(|(addr, (seq, kind))| (seq, addr, kind))
        .collect();
    entries.sort_unstable_by_key(|&(seq, addr, _)| (seq, addr));
    // One-shot initialization data: the least recently used part of the
    // prefix (touched before everything the pre-run replayed).
    let (cold_base, cold_words) = p.cold_region();
    let cold = (0..cold_words).map(|w| MemRef::load(cold_base.add_words(w), p.pid()));
    cold.chain(entries.into_iter().map(|(_, addr, kind)| {
        // Stores are replayed as loads: the prefix only *installs*
        // state; replaying dirty traffic would distort write metrics.
        let kind = if kind == AccessKind::Store {
            AccessKind::Load
        } else {
            kind
        };
        MemRef::new(cachetime_types::WordAddr::new(addr), kind, p.pid())
    }))
    .collect()
}

/// Interleaves the per-process prefixes "with the same distribution" of
/// context-switch intervals, preserving each process's internal order.
fn interleave_prefixes(
    refs: &mut Vec<MemRef>,
    mut prefixes: Vec<Vec<MemRef>>,
    mean_switch: f64,
    rng: &mut SplitMix64,
) {
    for p in &mut prefixes {
        p.reverse(); // pop from the back = take from the front
    }
    loop {
        let live: Vec<usize> = (0..prefixes.len())
            .filter(|&i| !prefixes[i].is_empty())
            .collect();
        if live.is_empty() {
            break;
        }
        let idx = live[rng.gen_range(0..live.len())];
        let quantum = 1 + geometric(rng, mean_switch);
        for _ in 0..quantum {
            match prefixes[idx].pop() {
                Some(r) => refs.push(r),
                None => break,
            }
        }
    }
}

fn geometric(rng: &mut SplitMix64, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let u = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()).floor().min(1e7) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachetime_types::Pid;
    use std::collections::HashSet;

    fn small_spec(init_prefix: bool) -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            processes: vec![
                ProcessParams::vax_like(2048, 4096),
                ProcessParams::vax_like(1024, 2048),
                ProcessParams::risc_like(2048, 8192),
            ],
            length: 30_000,
            warm_up: 5_000,
            mean_switch: 500.0,
            os_process: true,
            init_prefix,
            seed: 99,
        }
    }

    #[test]
    fn generates_requested_length() {
        let t = small_spec(false).generate();
        assert_eq!(t.len(), 35_000);
        assert_eq!(t.warm_start(), 5_000);
    }

    #[test]
    fn all_processes_appear() {
        let t = small_spec(false).generate();
        let pids: HashSet<Pid> = t.refs().iter().map(|r| r.pid).collect();
        assert_eq!(pids.len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_spec(true).generate();
        let b = small_spec(true).generate();
        assert_eq!(a.refs(), b.refs());
        assert_eq!(a.warm_start(), b.warm_start());
    }

    #[test]
    fn different_seed_changes_trace() {
        let mut spec = small_spec(false);
        let a = spec.generate();
        spec.seed = 100;
        let b = spec.generate();
        assert_ne!(a.refs(), b.refs());
    }

    #[test]
    fn prefix_contains_unique_refs_once() {
        let t = small_spec(true).generate();
        let prefix = &t.refs()[..t.warm_start()];
        assert!(!prefix.is_empty());
        let mut seen = HashSet::new();
        for r in prefix {
            assert!(
                seen.insert((r.pid, r.addr)),
                "duplicate prefix reference {r}"
            );
            assert_ne!(r.kind, AccessKind::Store, "prefix replays reads only");
        }
    }

    #[test]
    fn prefix_covers_most_of_warm_body_footprint() {
        // The point of the prefix: (almost) everything the body touches is
        // already installed at the warm-start boundary. "Almost" because
        // the body keeps exploring; require a strong majority.
        let t = small_spec(true).generate();
        let prefix: HashSet<(Pid, u64)> = t.refs()[..t.warm_start()]
            .iter()
            .map(|r| (r.pid, r.addr.value()))
            .collect();
        let body: HashSet<(Pid, u64)> = t
            .warm_refs()
            .iter()
            .map(|r| (r.pid, r.addr.value()))
            .collect();
        let covered = body.iter().filter(|k| prefix.contains(k)).count();
        let frac = covered as f64 / body.len() as f64;
        assert!(frac > 0.6, "prefix covers only {frac} of body footprint");
    }

    #[test]
    fn prefix_order_is_by_most_recent_use() {
        // Within one process, a later prefix position means a more recent
        // pre-run use; spot-check by regenerating the prefix directly.
        let params = ProcessParams::vax_like(512, 1024);
        let mut p = SyntheticProcess::new(Pid(1), params.clone(), 7);
        let prefix = most_recent_use_prefix(&mut p, 20_000);
        // Re-simulate to find true last-use order.
        let mut q = SyntheticProcess::new(Pid(1), params, 7);
        let mut last_use = HashMap::new();
        for seq in 0..20_000 {
            let r = q.next_ref();
            last_use.insert(r.addr.value(), seq);
        }
        let mut prev = 0usize;
        for r in &prefix {
            let seq = last_use[&r.addr.value()];
            assert!(seq >= prev, "prefix out of most-recent-use order");
            prev = seq;
        }
    }

    #[test]
    fn context_switches_have_roughly_geometric_intervals() {
        let t = small_spec(false).generate();
        let mut switches = 0usize;
        for w in t.refs().windows(2) {
            if w[0].pid != w[1].pid {
                switches += 1;
            }
        }
        let mean_interval = t.len() as f64 / switches.max(1) as f64;
        assert!(
            (100.0..2000.0).contains(&mean_interval),
            "mean switch interval {mean_interval} out of plausible range"
        );
    }

    #[test]
    #[should_panic(expected = "needs processes")]
    fn empty_process_list_panics() {
        WorkloadSpec {
            name: "x".into(),
            processes: vec![],
            length: 10,
            warm_up: 0,
            mean_switch: 10.0,
            os_process: false,
            init_prefix: false,
            seed: 0,
        }
        .generate();
    }
}
