//! A seedable SplitMix64 PRNG with the small surface the workspace uses.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) passes BigCrush, needs one u64 of state, and
//! is trivially seedable — exactly what deterministic trace generation and
//! random cache replacement need. The API deliberately mirrors the subset
//! of `rand::Rng` the workspace used, so ported call sites read the same:
//! `gen_range(lo..hi)`, `gen_bool(p)`, `fill(&mut bytes)`.

use std::ops::Range;

/// A seedable SplitMix64 pseudorandom number generator.
///
/// The output stream for a given seed is a repository-wide stability
/// contract (see [`tests::stream_is_golden_stable`]): synthetic traces,
/// random replacement, and property-test cases are all derived from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Every seed is valid and
    /// yields an independent-looking stream (including 0).
    pub fn from_seed(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from the half-open range, like `rand`'s
    /// `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.next_f64() < p
    }

    /// Fills the byte slice with uniform random bytes.
    pub fn fill(&mut self, bytes: &mut [u8]) {
        for chunk in bytes.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Forks an independent generator (seeded from this stream), for
    /// giving a subcomponent its own stream without sharing state.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::from_seed(self.next_u64())
    }

    /// A uniform integer in `[0, bound)` via the multiply-shift method
    /// (bias is at most 2^-64 per draw — unobservable at our draw counts).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A range type [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty gen_range {:?}", self);
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty gen_range {:?}", self);
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_golden_stable() {
        // Golden values, cross-checked against an independent
        // implementation of Vigna's public-domain SplitMix64. If this
        // test breaks, every synthetic trace in the repository changes.
        let mut rng = SplitMix64::from_seed(1234567);
        assert_eq!(rng.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(rng.next_u64(), 0x2c73_f084_5854_0fa5);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::from_seed(99);
        let mut b = SplitMix64::from_seed(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::from_seed(7);
        for _ in 0..10_000 {
            assert!((3u32..17).contains(&rng.gen_range(3u32..17)));
            assert!((0usize..9).contains(&rng.gen_range(0usize..9)));
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SplitMix64::from_seed(11);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.3) {
                trues += 1;
            }
        }
        assert!((2_500..3_500).contains(&trues), "p=0.3 gave {trues}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = SplitMix64::from_seed(21);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = SplitMix64::from_seed(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is a bug");
        let mut rng2 = SplitMix64::from_seed(3);
        let mut buf2 = [0u8; 13];
        rng2.fill(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent = SplitMix64::from_seed(5);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty gen_range")]
    fn empty_range_panics() {
        SplitMix64::from_seed(0).gen_range(5u32..5);
    }
}
