//! The behavioral-event vocabulary of the two-phase engine.
//!
//! The simulator factors each run into a timing-free **behavioral pass**
//! (which caches hit, which blocks fill, which victims write back — a
//! function of the cache *organization* and the reference stream alone)
//! and a **timing replay** that prices those events under a particular
//! clock, memory, and buffer configuration. The types here are the wire
//! format between the two phases: one [`EventOp`] per CPU issue slot,
//! with runs of all-hit couplets collapsed to a single counter.
//!
//! The factoring is sound because nothing *above* the write buffers is
//! timing-dependent: cache lookup, replacement, and TLB state advance per
//! reference, never per cycle, so the same organization replayed under a
//! different cycle time or memory speed sees bit-identical hits, misses,
//! victims, and walk events.

use crate::addr::WordAddr;
use crate::refs::Pid;

/// A dirty block displaced by a fill, as seen by the level below:
/// `(first word, whole-block length)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimBlock {
    /// First word of the victim block.
    pub addr: WordAddr,
    /// Words transferred on the write-back (the entire block).
    pub words: u32,
}

/// What one reference did to its first-level cache, timing-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessEvent {
    /// Read (load or ifetch) hit.
    ReadHit,
    /// Read miss: `fill_words` words are fetched starting at `fetch_start`,
    /// displacing `victim` if it was dirty.
    ReadMiss {
        /// First word of the fetch region.
        fetch_start: WordAddr,
        /// Words fetched from the next level.
        fill_words: u32,
        /// Dirty victim displaced by the fill, if any.
        victim: Option<VictimBlock>,
    },
    /// Write hit; `through` sends the word downstream as well.
    WriteHit {
        /// `true` in a write-through cache.
        through: bool,
    },
    /// Write miss in a no-allocate cache: the word goes around the cache
    /// into the write buffer.
    WriteMissAround,
    /// Write miss in a write-allocate cache: the block is fetched first.
    WriteMissAllocate {
        /// First word of the fetch region.
        fetch_start: WordAddr,
        /// Words fetched for the allocation.
        fill_words: u32,
        /// Dirty victim displaced by the fill, if any.
        victim: Option<VictimBlock>,
        /// `true` in a write-through cache.
        through: bool,
    },
    /// Read hit in a way other than the predicted one: a second probe
    /// round was needed. Only produced by way-predicted organizations.
    ReadSlowHit,
    /// Read miss served by the victim buffer: the block swapped back in
    /// without touching the next level. Only produced by organizations
    /// with a victim cache.
    ReadVictimHit,
    /// Write miss served by the victim buffer; the write then proceeded
    /// as a hit. `through` sends the word downstream as well.
    WriteVictimHit {
        /// `true` in a write-through cache.
        through: bool,
    },
}

impl AccessEvent {
    /// Whether this event describes a store.
    pub const fn is_write(&self) -> bool {
        matches!(
            self,
            AccessEvent::WriteHit { .. }
                | AccessEvent::WriteMissAround
                | AccessEvent::WriteMissAllocate { .. }
                | AccessEvent::WriteVictimHit { .. }
        )
    }
}

/// One half of a recorded couplet: the (post-translation) reference plus
/// its behavioral outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefEvent {
    /// The accessed word (physical if an MMU fronts the hierarchy).
    pub addr: WordAddr,
    /// Issuing process.
    pub pid: Pid,
    /// Cycles the TLB walk added before the access could issue (0 on a TLB
    /// hit or without an MMU).
    pub walk_cycles: u64,
    /// What the cache did.
    pub access: AccessEvent,
}

/// The shape of an all-hit couplet: enough to reprice it under any hit
/// costs and issue policy without knowing its addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoupletClass {
    /// An instruction fetch alone.
    Ifetch,
    /// A paired instruction fetch + load.
    IfetchLoad,
    /// A paired instruction fetch + store (write-back hit, nothing sent
    /// downstream).
    IfetchStore,
    /// A load alone.
    Load,
    /// A store alone (write-back hit).
    Store,
}

impl CoupletClass {
    /// Number of distinct classes (the length of a per-class count array).
    pub const COUNT: usize = 5;

    /// All classes, in index order.
    pub const ALL: [CoupletClass; Self::COUNT] = [
        CoupletClass::Ifetch,
        CoupletClass::IfetchLoad,
        CoupletClass::IfetchStore,
        CoupletClass::Load,
        CoupletClass::Store,
    ];

    /// This class's slot in a per-class count array.
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// One step of an event trace.
///
/// Hot paths are dominated by all-hit couplets (hit ratios in the high
/// 90s), so those are run-length encoded: a `HitRun` summarizes a maximal
/// stretch of consecutive trivial couplets as per-class counts and
/// reprices in O(classes). The order *inside* such a stretch is immaterial
/// — every trivial couplet has a fixed, state-free cost — which is what
/// lets interleaved shapes (ifetch, ifetch+load, …) share one op instead
/// of breaking the run at every alternation. Everything that can interact
/// with downstream timing — misses, write-throughs, write-arounds, TLB
/// walks — is recorded as a full [`EventOp::Couplet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOp {
    /// A maximal stretch of consecutive all-hit couplets (no TLB walks,
    /// nothing sent downstream), counted per shape.
    HitRun {
        /// Couplets of each shape, indexed by [`CoupletClass::index`].
        counts: [u32; CoupletClass::COUNT],
    },
    /// One couplet with at least one non-trivial half.
    Couplet {
        /// The instruction-fetch half, if present.
        iref: Option<RefEvent>,
        /// The data half, if present.
        dref: Option<RefEvent>,
    },
    /// The warm-start boundary: timing statistics reset here.
    WarmBoundary,
}

impl EventOp {
    /// Number of couplets this op represents.
    pub const fn couplets(&self) -> u64 {
        match self {
            EventOp::HitRun { counts } => {
                let mut total = 0u64;
                let mut i = 0;
                while i < counts.len() {
                    total += counts[i] as u64;
                    i += 1;
                }
                total
            }
            EventOp::Couplet { .. } => 1,
            EventOp::WarmBoundary => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_event_classifies_writes() {
        assert!(!AccessEvent::ReadHit.is_write());
        assert!(AccessEvent::WriteHit { through: false }.is_write());
        assert!(AccessEvent::WriteMissAround.is_write());
        assert!(AccessEvent::WriteMissAllocate {
            fetch_start: WordAddr::new(0),
            fill_words: 4,
            victim: None,
            through: true,
        }
        .is_write());
        assert!(!AccessEvent::ReadMiss {
            fetch_start: WordAddr::new(0),
            fill_words: 4,
            victim: Some(VictimBlock {
                addr: WordAddr::new(64),
                words: 4
            }),
        }
        .is_write());
        assert!(!AccessEvent::ReadSlowHit.is_write());
        assert!(!AccessEvent::ReadVictimHit.is_write());
        assert!(AccessEvent::WriteVictimHit { through: false }.is_write());
    }

    #[test]
    fn couplet_class_indices_are_dense() {
        for (i, class) in CoupletClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn event_op_couplet_counts() {
        let mut counts = [0u32; CoupletClass::COUNT];
        counts[CoupletClass::IfetchLoad.index()] = 12;
        counts[CoupletClass::Store.index()] = 5;
        assert_eq!(EventOp::HitRun { counts }.couplets(), 17);
        assert_eq!(
            EventOp::Couplet {
                iref: None,
                dref: Some(RefEvent {
                    addr: WordAddr::new(1),
                    pid: Pid(0),
                    walk_cycles: 0,
                    access: AccessEvent::ReadHit,
                }),
            }
            .couplets(),
            1
        );
        assert_eq!(EventOp::WarmBoundary.couplets(), 0);
    }
}
