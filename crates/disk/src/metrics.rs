//! `cachetime_disk_*` metric handles, mirroring the server's
//! registry-or-standalone pattern: `/v1/metrics` and `/v1/stats` read
//! literally the same atomics the store increments.

use cachetime_obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// The disk store's counters and gauges.
///
/// Built either inside a [`Registry`] (so the families render on
/// `/v1/metrics`) or standalone for embedded/test stores.
#[derive(Clone)]
pub struct DiskMetrics {
    /// `cachetime_disk_spills_total`: segments durably written.
    pub(crate) spills: Arc<Counter>,
    /// `cachetime_disk_spill_bytes_total`: sealed bytes durably written.
    pub(crate) spill_bytes: Arc<Counter>,
    /// `cachetime_disk_spill_errors_total`: failed or faulted spills.
    pub(crate) spill_errors: Arc<Counter>,
    /// `cachetime_disk_loads_total`: read-throughs served from disk.
    pub(crate) loads: Arc<Counter>,
    /// `cachetime_disk_load_misses_total`: read-throughs with no segment.
    pub(crate) load_misses: Arc<Counter>,
    /// `cachetime_disk_load_errors_total`: read-throughs that hit a
    /// corrupt or unreadable segment (quarantined on the spot).
    pub(crate) load_errors: Arc<Counter>,
    /// `cachetime_disk_recovered_total`: segments restored by startup scans.
    pub(crate) recovered: Arc<Counter>,
    /// `cachetime_disk_quarantined_total`: files moved to `quarantine/`.
    pub(crate) quarantined: Arc<Counter>,
    /// `cachetime_disk_evicted_total`: segments deleted by the byte budget.
    pub(crate) evicted: Arc<Counter>,
    /// `cachetime_disk_adopted_total`: peer-transferred segments validated
    /// and installed.
    pub(crate) adopted: Arc<Counter>,
    /// `cachetime_disk_dropped_total`: segments removed by ring handoff.
    pub(crate) dropped: Arc<Counter>,
    /// `cachetime_disk_quarantine_evicted_total`: quarantined files
    /// deleted by the quarantine byte cap.
    pub(crate) quarantine_evicted: Arc<Counter>,
    /// `cachetime_disk_segments`: live segments on disk.
    pub(crate) segments: Arc<Gauge>,
    /// `cachetime_disk_bytes`: bytes of live segments.
    pub(crate) bytes: Arc<Gauge>,
    /// `cachetime_disk_quarantine_files`: files currently in `quarantine/`.
    pub(crate) quarantine_files: Arc<Gauge>,
    /// `cachetime_disk_quarantine_bytes`: bytes currently in `quarantine/`.
    pub(crate) quarantine_bytes: Arc<Gauge>,
}

impl DiskMetrics {
    /// Handles registered in `registry` under the `cachetime_disk_*`
    /// family names.
    pub fn in_registry(registry: &Registry) -> Self {
        DiskMetrics {
            spills: registry.counter("cachetime_disk_spills_total", &[]),
            spill_bytes: registry.counter("cachetime_disk_spill_bytes_total", &[]),
            spill_errors: registry.counter("cachetime_disk_spill_errors_total", &[]),
            loads: registry.counter("cachetime_disk_loads_total", &[]),
            load_misses: registry.counter("cachetime_disk_load_misses_total", &[]),
            load_errors: registry.counter("cachetime_disk_load_errors_total", &[]),
            recovered: registry.counter("cachetime_disk_recovered_total", &[]),
            quarantined: registry.counter("cachetime_disk_quarantined_total", &[]),
            evicted: registry.counter("cachetime_disk_evicted_total", &[]),
            adopted: registry.counter("cachetime_disk_adopted_total", &[]),
            dropped: registry.counter("cachetime_disk_dropped_total", &[]),
            quarantine_evicted: registry.counter("cachetime_disk_quarantine_evicted_total", &[]),
            segments: registry.gauge("cachetime_disk_segments", &[]),
            bytes: registry.gauge("cachetime_disk_bytes", &[]),
            quarantine_files: registry.gauge("cachetime_disk_quarantine_files", &[]),
            quarantine_bytes: registry.gauge("cachetime_disk_quarantine_bytes", &[]),
        }
    }

    /// Unregistered handles (embedded and test stores).
    pub fn standalone() -> Self {
        DiskMetrics {
            spills: Arc::new(Counter::new()),
            spill_bytes: Arc::new(Counter::new()),
            spill_errors: Arc::new(Counter::new()),
            loads: Arc::new(Counter::new()),
            load_misses: Arc::new(Counter::new()),
            load_errors: Arc::new(Counter::new()),
            recovered: Arc::new(Counter::new()),
            quarantined: Arc::new(Counter::new()),
            evicted: Arc::new(Counter::new()),
            adopted: Arc::new(Counter::new()),
            dropped: Arc::new(Counter::new()),
            quarantine_evicted: Arc::new(Counter::new()),
            segments: Arc::new(Gauge::new()),
            bytes: Arc::new(Gauge::new()),
            quarantine_files: Arc::new(Gauge::new()),
            quarantine_bytes: Arc::new(Gauge::new()),
        }
    }

    /// Segments durably written.
    pub fn spills(&self) -> u64 {
        self.spills.get()
    }

    /// Failed or faulted spills.
    pub fn spill_errors(&self) -> u64 {
        self.spill_errors.get()
    }

    /// Read-throughs served from disk.
    pub fn loads(&self) -> u64 {
        self.loads.get()
    }

    /// Read-throughs that found no segment.
    pub fn load_misses(&self) -> u64 {
        self.load_misses.get()
    }

    /// Read-throughs that hit a corrupt or unreadable segment.
    pub fn load_errors(&self) -> u64 {
        self.load_errors.get()
    }

    /// Segments restored by startup scans.
    pub fn recovered(&self) -> u64 {
        self.recovered.get()
    }

    /// Files moved to quarantine.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.get()
    }

    /// Segments deleted by the byte budget.
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }

    /// Peer-transferred segments validated and installed.
    pub fn adopted(&self) -> u64 {
        self.adopted.get()
    }

    /// Segments removed by ring handoff.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Quarantined files deleted by the quarantine byte cap.
    pub fn quarantine_evicted(&self) -> u64 {
        self.quarantine_evicted.get()
    }

    /// Files currently in `quarantine/`.
    pub fn quarantine_files(&self) -> i64 {
        self.quarantine_files.get()
    }

    /// Bytes currently in `quarantine/`.
    pub fn quarantine_bytes(&self) -> i64 {
        self.quarantine_bytes.get()
    }

    /// Live segments on disk.
    pub fn segments(&self) -> i64 {
        self.segments.get()
    }

    /// Bytes of live segments.
    pub fn bytes(&self) -> i64 {
        self.bytes.get()
    }
}
