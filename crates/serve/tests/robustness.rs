//! Targeted failure-path exercises over real sockets: slowloris peers get
//! `408`, oversized bodies get `413` before any body byte is read, the
//! recording admission limit sheds cold simulates with `503 + Retry-After`
//! while warm replays keep serving, and an injected handler panic becomes
//! a `500` with the worker pool surviving.

use cachetime_serve::client::{ClientConfig, HttpClient};
use cachetime_serve::fault::FaultPlan;
use cachetime_serve::{serve_with_app, App, Limits, ServerConfig};
use cachetime_types::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A server with a deliberately short request deadline and one admission
/// slot, so every limit in this file is cheap to hit.
fn tight_server(
    faults: FaultPlan,
) -> (cachetime_serve::ServerHandle, Arc<App>, String) {
    let app = Arc::new(
        App::new(64 * 1024 * 1024)
            .with_limits(Limits {
                request_deadline: Duration::from_millis(800),
                max_inflight_recordings: 1,
            })
            .with_faults(faults),
    );
    let handle = serve_with_app(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..Default::default()
        },
        Arc::clone(&app),
    )
    .expect("bind an ephemeral port");
    let addr = handle.local_addr().to_string();
    (handle, app, addr)
}

fn read_to_close(s: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .unwrap_or(0);
    (status, text)
}

#[test]
fn slowloris_gets_408_not_a_parked_worker() {
    let (handle, _app, addr) = tight_server(FaultPlan::inert());
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Start a request and never finish it. The server must answer 408
    // within its 800 ms deadline (plus scheduling slack), not hold the
    // socket open indefinitely.
    s.write_all(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 50\r\n")
        .unwrap();
    let started = std::time::Instant::now();
    let (status, text) = read_to_close(&mut s);
    assert_eq!(status, 408, "{text}");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "408 took {:?} — deadline not enforced",
        started.elapsed()
    );

    // The pool survived: a normal request on a fresh connection works.
    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let (_, body) = client.get("/v1/stats").unwrap();
    let stats = Json::parse(&body).unwrap();
    assert!(
        stats.get("server").unwrap().get("timeouts").and_then(Json::as_u64).unwrap() >= 1,
        "{body}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn zero_deadline_is_408_before_any_handler_work() {
    // Regression: `X-Deadline-Ms: 0` (or any budget smaller than the
    // time the request took to arrive) used to start the handler with an
    // already-expired deadline — burning a recording slot for an answer
    // that could never be delivered in time. It must be refused with 408
    // at frame time, before any handler work.
    let (handle, app, addr) = tight_server(FaultPlan::inert());
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let body = r#"{"trace": {"name": "mu3", "scale": 0.002}}"#;
    let req = format!(
        "POST /v1/simulate HTTP/1.1\r\nX-Deadline-Ms: 0\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    s.write_all(req.as_bytes()).unwrap();
    let started = std::time::Instant::now();
    let (status, text) = read_to_close(&mut s);
    assert_eq!(status, 408, "{text}");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "the 408 must be immediate, not a recording later: {:?}",
        started.elapsed()
    );
    // No handler work happened: nothing was recorded, nothing was shed.
    let store = app.store.stats();
    assert_eq!(store.misses, 0, "the simulate handler must not have run");
    assert_eq!(app.stats.shed.get(), 0);
    assert!(app.stats.timeouts.get() >= 1, "the 408 is a timeout");

    // A deadline smaller than the arrival time of a dribbled request
    // trips the same check even though the value is nonzero.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nX-Deadline-Ms: 20\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(80));
    s.write_all(b"\r\n").unwrap();
    let (status, text) = read_to_close(&mut s);
    assert_eq!(status, 408, "{text}");

    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_content_length_is_413_before_the_body_arrives() {
    let (handle, _app, addr) = tight_server(FaultPlan::inert());
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Claim a body far past MAX_BODY_BYTES but send none of it: the 413
    // must arrive anyway, proving the refusal happens at head-parse time.
    s.write_all(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let (status, text) = read_to_close(&mut s);
    assert_eq!(status, 413, "{text}");

    handle.shutdown();
    handle.join();
}

#[test]
fn shed_cold_simulates_while_warm_replays_keep_serving() {
    let (handle, app, addr) = tight_server(FaultPlan::inert());

    // Warm a key over HTTP while the slot is free.
    let mut client = HttpClient::connect(&addr).unwrap();
    let warm_body = r#"{"trace": {"name": "mu3", "scale": 0.002}}"#;
    let (status, body) = client.post("/v1/simulate", warm_body).unwrap();
    assert_eq!(status, 200, "{body}");
    let key = Json::parse(&body)
        .unwrap()
        .get("key")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Occupy the single admission slot deterministically: a recording
    // through the shared store that blocks until we release it.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let blocker = {
        let app = Arc::clone(&app);
        std::thread::spawn(move || {
            app.store.fetch_or_record(0xB10C_4EED, usize::MAX, None, move || {
                rx.recv().unwrap();
                let config = cachetime::SystemConfig::paper_default().unwrap();
                cachetime::keyed::record(
                    &config.organization(),
                    &cachetime_trace::catalog::savec(0.002),
                )
                .1
            })
        })
    };
    while app.store.stats().in_flight == 0 {
        std::thread::yield_now();
    }

    // The server reports degraded while the slot is held...
    let (_, hbody) = client.get("/healthz").unwrap();
    assert_eq!(
        Json::parse(&hbody).unwrap().get("status").and_then(Json::as_str),
        Some("degraded"),
        "{hbody}"
    );
    // ...a cold simulate sheds with 503 + Retry-After instead of queueing...
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let cold = r#"{"trace": {"name": "savec", "scale": 0.003}}"#;
    let req = format!(
        "POST /v1/simulate HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        cold.len(),
        cold
    );
    raw.write_all(req.as_bytes()).unwrap();
    let (status, text) = read_to_close(&mut raw);
    assert_eq!(status, 503, "cold simulate during degradation must shed: {text}");
    assert!(
        text.to_ascii_lowercase().contains("retry-after:"),
        "shed responses must carry Retry-After: {text}"
    );
    // ...and a warm replay still answers 200.
    let rbody = format!(r#"{{"key": "{key}", "cycle_times_ns": [40]}}"#);
    let (rstatus, rresp) = client.post("/v1/replay", &rbody).unwrap();
    assert_eq!(rstatus, 200, "warm replay failed during degradation: {rresp}");
    // Shed is visible in stats.
    let (_, sbody) = client.get("/v1/stats").unwrap();
    let stats = Json::parse(&sbody).unwrap();
    let server = stats.get("server").unwrap();
    assert!(server.get("shed").and_then(Json::as_u64).unwrap() >= 1, "{sbody}");
    assert_eq!(server.get("degraded").and_then(Json::as_bool), Some(true));

    // Release the slot: recovery is immediate and visible.
    tx.send(()).unwrap();
    blocker.join().unwrap();
    let (_, hbody) = client.get("/healthz").unwrap();
    assert_eq!(
        Json::parse(&hbody).unwrap().get("status").and_then(Json::as_str),
        Some("ok"),
        "{hbody}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn handler_panic_becomes_500_and_the_pool_survives() {
    let (handle, app, addr) = tight_server(FaultPlan::inert().panic_once("serve.handle"));
    let mut client = HttpClient::connect(&addr).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 500, "the armed panic must surface as a 500: {body}");
    assert!(body.contains("panic"), "{body}");

    // Same pool, next request: served normally, panic counted.
    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let (_, body) = client.get("/v1/stats").unwrap();
    let stats = Json::parse(&body).unwrap();
    assert_eq!(
        stats.get("server").unwrap().get("panics").and_then(Json::as_u64),
        Some(1),
        "{body}"
    );
    assert_eq!(app.faults().injected(), 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn write_phase_panic_drops_the_connection_but_not_the_worker() {
    // A panic between the handler and the response write means the client
    // gets nothing — the connection just closes. The worker must survive
    // and the panic must be counted.
    let (handle, app, addr) = tight_server(FaultPlan::inert().panic_once("serve.write"));
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, text) = read_to_close(&mut s);
    assert_eq!(status, 0, "no response must have been written: {text:?}");

    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200, "the worker pool must survive a write-phase panic");
    assert_eq!(app.stats.panics.get(), 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn client_retries_reconnect_after_a_severed_connection() {
    // The 503 + Retry-After shed path is covered above; here pin the
    // client half of the contract. A one-shot panic closes the client's
    // keep-alive connection (500s always close); the client's next request
    // hits the dead socket, and with retries armed it must reconnect and
    // succeed instead of surfacing the I/O error.
    let (handle, _app, addr) =
        tight_server(FaultPlan::inert().panic_once("serve.handle"));
    let mut client = HttpClient::connect_with(
        &addr,
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(10),
            retry_seed: 11,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 500, "the one-shot panic fires first");
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200, "retry must reconnect through the dead socket: {body}");

    // A client without retries surfaces the error instead: same scenario,
    // explicit contract that retries are opt-in.
    let (handle2, _app2, addr2) =
        tight_server(FaultPlan::inert().panic_once("serve.handle"));
    let mut bare = HttpClient::connect(&addr2).unwrap();
    let (status, _) = bare.get("/healthz").unwrap();
    assert_eq!(status, 500);
    assert!(
        bare.get("/healthz").is_err(),
        "without retries the dead socket must surface as an error"
    );
    handle2.shutdown();
    handle2.join();

    handle.shutdown();
    handle.join();
}
