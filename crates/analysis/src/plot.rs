//! Minimal ASCII charts for experiment reports.
//!
//! The paper communicates through figures; the `repro` harness prints the
//! same series as tables *and* as terminal charts so the shapes — the
//! flattening miss-ratio curve, the interior block-size optimum, the
//! balance-line crossover — are visible at a glance.

use std::fmt::Write as _;

/// Symbols assigned to series, in order.
const SYMBOLS: &[char] = &['*', '+', 'x', 'o', '#', '@', '%', '&'];

/// A scatter/line chart over `(x, y)` points with optional log axes.
///
/// # Examples
///
/// ```
/// use cachetime_analysis::plot::Chart;
///
/// let mut c = Chart::new(40, 10).log_x();
/// c.series("miss", vec![(4.0, 9.3), (64.0, 3.0), (4096.0, 0.56)]);
/// let s = c.render();
/// assert!(s.contains('*'));
/// assert!(s.contains("miss"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Chart {
    /// Creates an empty chart with a plotting area of `width` × `height`
    /// characters (clamped to sane minimums).
    pub fn new(width: usize, height: usize) -> Self {
        Chart {
            width: width.max(10),
            height: height.max(4),
            log_x: false,
            log_y: false,
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
        }
    }

    /// Uses a logarithmic x axis (points with `x <= 0` are dropped).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Uses a logarithmic y axis (points with `y <= 0` are dropped).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Sets the axis captions.
    pub fn labels(mut self, x: &str, y: &str) -> Self {
        self.x_label = x.to_string();
        self.y_label = y.to_string();
        self
    }

    /// Adds a named series.
    pub fn series(&mut self, label: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((label.to_string(), points));
        self
    }

    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.log2()
        } else {
            x
        }
    }

    fn ty(&self, y: f64) -> f64 {
        if self.log_y {
            y.log2()
        } else {
            y
        }
    }

    /// Renders the chart. Returns a placeholder line when no finite points
    /// exist.
    pub fn render(&self) -> String {
        let pts: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, (_, pts))| pts.iter().map(move |&(x, y)| (si, x, y)))
            .filter(|&(_, x, y)| {
                x.is_finite()
                    && y.is_finite()
                    && (!self.log_x || x > 0.0)
                    && (!self.log_y || y > 0.0)
            })
            .map(|(si, x, y)| (si, self.tx(x), self.ty(y)))
            .collect();
        if pts.is_empty() {
            return "(no plottable points)\n".to_string();
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(_, x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            let symbol = SYMBOLS[si % SYMBOLS.len()];
            let cell = &mut grid[row][cx];
            // Collisions between different series render as '?'.
            *cell = match *cell {
                ' ' => symbol,
                c if c == symbol => c,
                _ => '?',
            };
        }
        let untx = |v: f64| if self.log_x { v.exp2() } else { v };
        let unty = |v: f64| if self.log_y { v.exp2() } else { v };
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{:>9.3}", unty(y1))
            } else if i == self.height - 1 {
                format!("{:>9.3}", unty(y0))
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(self.width));
        let left = format!("{:.3}", untx(x0));
        let right = format!("{:.3}", untx(x1));
        let pad = self.width.saturating_sub(left.len() + right.len());
        let _ = writeln!(out, "{} {left}{}{right}", " ".repeat(9), " ".repeat(pad));
        if !self.x_label.is_empty() || !self.y_label.is_empty() {
            let _ = writeln!(
                out,
                "{} x: {}, y: {}",
                " ".repeat(9),
                self.x_label,
                self.y_label
            );
        }
        for (si, (label, _)) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "{} {} {label}",
                " ".repeat(9),
                SYMBOLS[si % SYMBOLS.len()]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Positions of `sym` within the plot area only (rows containing the
    /// axis bar '|'), excluding the legend.
    fn line(chart_s: &str, sym: char) -> Vec<(usize, usize)> {
        chart_s
            .lines()
            .filter(|l| l.contains('|'))
            .enumerate()
            .flat_map(|(r, l)| {
                l.char_indices()
                    .filter(move |&(_, c)| c == sym)
                    .map(move |(col, _)| (r, col))
            })
            .collect()
    }

    #[test]
    fn renders_dimensions_and_legend() {
        let mut c = Chart::new(30, 8).labels("size", "miss");
        c.series("dm", vec![(1.0, 10.0), (2.0, 5.0), (3.0, 2.0)]);
        let s = c.render();
        assert!(s.lines().count() >= 8 + 3);
        assert!(s.contains("x: size, y: miss"));
        assert!(s.contains("* dm"));
    }

    #[test]
    fn decreasing_series_renders_decreasing() {
        let mut c = Chart::new(30, 10);
        c.series("d", vec![(0.0, 10.0), (5.0, 5.0), (10.0, 1.0)]);
        let s = c.render();
        let pts = line(&s, '*');
        assert_eq!(pts.len(), 3);
        // Sort by column; rows must increase (y falls downward).
        let mut sorted = pts.clone();
        sorted.sort_by_key(|&(_, col)| col);
        assert!(sorted.windows(2).all(|w| w[1].0 > w[0].0), "{s}");
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let mut c = Chart::new(20, 5).log_x().log_y();
        c.series("a", vec![(0.0, 1.0), (-1.0, 2.0), (4.0, 8.0), (16.0, 2.0)]);
        let s = c.render();
        assert_eq!(line(&s, '*').len(), 2);
    }

    #[test]
    fn empty_chart_is_graceful() {
        let mut c = Chart::new(20, 5).log_x();
        c.series("a", vec![(-3.0, 1.0)]);
        assert!(c.render().contains("no plottable points"));
        assert!(Chart::new(20, 5).render().contains("no plottable points"));
    }

    #[test]
    fn collisions_between_series_marked() {
        let mut c = Chart::new(10, 4);
        c.series("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        c.series("b", vec![(0.0, 0.0), (1.0, 0.5)]);
        let s = c.render();
        assert!(s.contains('?'), "{s}");
        assert!(s.contains('+'), "{s}");
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let mut c = Chart::new(20, 5);
        c.series("p", vec![(3.0, 7.0)]);
        let s = c.render();
        assert_eq!(line(&s, '*').len(), 1);
    }
}
