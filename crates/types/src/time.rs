//! Time quantities: cycle times, cycle counts, and nanoseconds.

use crate::error::ConfigError;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A duration in nanoseconds.
///
/// Used for the asynchronous, technology-determined delays of the modeled
/// system: DRAM access time, recovery time, and total execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0);

    /// Returns the value as `f64` nanoseconds (for ratio computations).
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// A count of clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the value as `f64` (for per-reference averages).
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// The CPU/cache clock period in nanoseconds.
///
/// The paper uniformly assumes the system cycle time is determined by the
/// cache, and sweeps it from 20 ns to 80 ns. The memory system is synchronous
/// to this clock, so nanosecond latencies quantize upward to whole cycles —
/// the mechanism behind the paper's 56 ns anomaly, where shrinking the cycle
/// time *increases* execution time because the miss penalty jumps from 8 to
/// 9 cycles.
///
/// # Examples
///
/// ```
/// use cachetime_types::CycleTime;
///
/// let ct = CycleTime::from_ns(40)?;
/// assert_eq!(ct.cycles_for(180), 5);   // 180ns DRAM latency
/// assert_eq!(ct.cycles_for(120), 3);   // recovery
/// // 56ns: 180/56 = 3.21 -> 4 cycles; at 60ns it is back down to 3.
/// assert_eq!(CycleTime::from_ns(56)?.cycles_for(180), 4);
/// assert_eq!(CycleTime::from_ns(60)?.cycles_for(180), 3);
/// # Ok::<(), cachetime_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CycleTime(u32);

impl CycleTime {
    /// Creates a cycle time of `ns` nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroCycleTime`] if `ns` is zero.
    pub fn from_ns(ns: u32) -> Result<Self, ConfigError> {
        if ns == 0 {
            Err(ConfigError::ZeroCycleTime)
        } else {
            Ok(CycleTime(ns))
        }
    }

    /// Returns the clock period in nanoseconds.
    #[inline]
    pub const fn ns(self) -> u32 {
        self.0
    }

    /// Quantizes an asynchronous delay of `ns` nanoseconds to whole cycles,
    /// rounding up (a synchronous interface cannot sample early).
    #[inline]
    pub const fn cycles_for(self, ns: u64) -> u64 {
        ns.div_ceil(self.0 as u64)
    }

    /// Converts a cycle count to elapsed nanoseconds.
    #[inline]
    pub const fn elapsed(self, cycles: Cycles) -> Nanos {
        Nanos(cycles.0 * self.0 as u64)
    }
}

impl fmt::Display for CycleTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns/cycle", self.0)
    }
}

impl Mul<CycleTime> for Cycles {
    type Output = Nanos;
    fn mul(self, ct: CycleTime) -> Nanos {
        ct.elapsed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cycle_time_rejected() {
        assert!(CycleTime::from_ns(0).is_err());
        assert!(CycleTime::from_ns(1).is_ok());
    }

    #[test]
    fn quantization_rounds_up() {
        let ct = CycleTime::from_ns(40).unwrap();
        assert_eq!(ct.cycles_for(0), 0);
        assert_eq!(ct.cycles_for(1), 1);
        assert_eq!(ct.cycles_for(40), 1);
        assert_eq!(ct.cycles_for(41), 2);
        assert_eq!(ct.cycles_for(180), 5);
    }

    #[test]
    fn elapsed_multiplies() {
        let ct = CycleTime::from_ns(40).unwrap();
        assert_eq!(ct.elapsed(Cycles(10)), Nanos(400));
        assert_eq!(Cycles(10) * ct, Nanos(400));
    }

    #[test]
    fn fifty_six_ns_anomaly_mechanism() {
        // Decreasing the cycle time from 60 to 56ns raises the read latency
        // from 3 to 4 cycles (paper section 3).
        assert_eq!(CycleTime::from_ns(60).unwrap().cycles_for(180), 3);
        assert_eq!(CycleTime::from_ns(56).unwrap().cycles_for(180), 4);
    }

    #[test]
    fn arithmetic_and_sums() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Nanos(10) - Nanos(4), Nanos(6));
        let total: Cycles = [Cycles(1), Cycles(2)].into_iter().sum();
        assert_eq!(total, Cycles(3));
        let total: Nanos = [Nanos(5), Nanos(6)].into_iter().sum();
        assert_eq!(total, Nanos(11));
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(Nanos(5).to_string(), "5ns");
        assert_eq!(Cycles(5).to_string(), "5 cycles");
        assert_eq!(CycleTime::from_ns(40).unwrap().to_string(), "40ns/cycle");
    }
}
