//! The on-disk segment container: a checksummed header around one
//! codec-encoded [`EventTrace`](cachetime::EventTrace) payload.
//!
//! Layout (little-endian, 36-byte header):
//!
//! ```text
//! offset  size  field
//!      0     8  magic     b"CTSEG\r\n\x1a"
//!      8     4  version   container format version (currently 1)
//!     12     8  key       the trace's content key (matches the file name)
//!     20     8  len       payload length in bytes
//!     28     8  checksum  SplitMix64 digest of the payload bytes
//!     36   len  payload   cachetime::codec::encode output
//! ```
//!
//! The magic embeds `\r\n` and a DOS EOF byte (the PNG trick) so
//! text-mode transfer mangling is caught at the first eight bytes. The
//! checksum is a [`StableHasher`] digest — the same SplitMix64 mix that
//! keys the store — so the disk layer adds no second hash primitive.
//!
//! Parsing never trusts a length field before bounds-checking it against
//! the actual file size, and the payload is only handed to the codec
//! after the checksum matches; a segment that fails any step is reported
//! as [`SegmentError`] and the caller quarantines the file.

use cachetime_types::StableHasher;

/// First eight bytes of every segment file.
pub const MAGIC: [u8; 8] = *b"CTSEG\r\n\x1a";

/// Container format version written by [`seal`].
pub const VERSION: u32 = 1;

/// Header length in bytes.
pub const HEADER_LEN: usize = 36;

/// Why a segment file failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// Shorter than a header, or shorter than the header's claimed length.
    Truncated,
    /// The first eight bytes are not [`MAGIC`].
    ForeignMagic,
    /// A magic match but an unknown container version.
    BadVersion(u32),
    /// The header key does not match the key the caller expected (a
    /// segment renamed to the wrong file, or a duplicate-key copy).
    KeyMismatch {
        /// Key in the header.
        header: u64,
        /// Key the caller derived from the file name.
        expected: u64,
    },
    /// Payload bytes do not hash to the header checksum.
    ChecksumMismatch,
    /// Checksum held but the payload failed to decode (codec-level
    /// corruption or version skew).
    Payload(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Truncated => f.write_str("segment truncated"),
            SegmentError::ForeignMagic => f.write_str("foreign magic"),
            SegmentError::BadVersion(v) => write!(f, "unknown segment version {v}"),
            SegmentError::KeyMismatch { header, expected } => {
                write!(f, "header key {header:016x} != file key {expected:016x}")
            }
            SegmentError::ChecksumMismatch => f.write_str("checksum mismatch"),
            SegmentError::Payload(e) => write!(f, "payload: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// SplitMix64 digest of the payload bytes (the header checksum).
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// Wraps an encoded payload in a sealed segment: header + payload,
/// ready to be written to `<key as 16 hex>.seg`.
pub fn seal(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a segment file image against the key its file name claims
/// and returns the payload slice.
///
/// # Errors
///
/// [`SegmentError`] describing the first check that failed; the order is
/// magic, version, key, length, checksum — cheapest first, so garbage
/// files are rejected without hashing.
pub fn open(expected_key: u64, bytes: &[u8]) -> Result<&[u8], SegmentError> {
    if bytes.len() < HEADER_LEN {
        return Err(SegmentError::Truncated);
    }
    if bytes[0..8] != MAGIC {
        return Err(SegmentError::ForeignMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SegmentError::BadVersion(version));
    }
    let key = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if key != expected_key {
        return Err(SegmentError::KeyMismatch {
            header: key,
            expected: expected_key,
        });
    }
    let len = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(SegmentError::Truncated);
    }
    let want = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
    if checksum(payload) != want {
        return Err(SegmentError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let payload = b"not a real trace, but the container does not care";
        let sealed = seal(0xDEAD_BEEF_0BAD_F00D, payload);
        assert_eq!(
            open(0xDEAD_BEEF_0BAD_F00D, &sealed).unwrap(),
            payload.as_slice()
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let sealed = seal(7, b"payload");
        for len in 0..sealed.len() {
            assert!(open(7, &sealed[..len]).is_err(), "prefix {len} accepted");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let sealed = seal(7, b"payload");
        for byte in 0..sealed.len() {
            let mut copy = sealed.clone();
            copy[byte] ^= 1;
            assert!(open(7, &copy).is_err(), "flip at {byte} accepted");
        }
    }

    #[test]
    fn key_mismatch_is_its_own_error() {
        let sealed = seal(7, b"payload");
        assert_eq!(
            open(8, &sealed),
            Err(SegmentError::KeyMismatch {
                header: 7,
                expected: 8
            })
        );
    }

    #[test]
    fn foreign_magic_is_detected_first() {
        let mut sealed = seal(7, b"payload");
        sealed[0] = b'X';
        assert_eq!(open(7, &sealed), Err(SegmentError::ForeignMagic));
    }
}
