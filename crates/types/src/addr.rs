//! Word-granular virtual addresses.

use std::fmt;

/// Number of bytes in one machine word (the paper defines a word as 32 bits).
pub const BYTES_PER_WORD: u64 = 4;

/// A virtual address measured in 32-bit words.
///
/// The paper's traces are preprocessed so that every reference is a word
/// reference; the simulator therefore never deals with sub-word addresses.
/// The zero-cost wrapper keeps word addresses from being confused with byte
/// addresses or raw counters.
///
/// # Examples
///
/// ```
/// use cachetime_types::WordAddr;
///
/// let a = WordAddr::new(0x1003);
/// assert_eq!(a.to_byte_addr(), 0x400c);
/// assert_eq!(WordAddr::from_byte_addr(0x400c), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(u64);

impl WordAddr {
    /// Creates a word address from a raw word index.
    #[inline]
    pub const fn new(words: u64) -> Self {
        WordAddr(words)
    }

    /// Creates a word address from a byte address, discarding sub-word bits.
    #[inline]
    pub const fn from_byte_addr(bytes: u64) -> Self {
        WordAddr(bytes / BYTES_PER_WORD)
    }

    /// Returns the raw word index.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the equivalent byte address of the first byte of the word.
    #[inline]
    pub const fn to_byte_addr(self) -> u64 {
        self.0 * BYTES_PER_WORD
    }

    /// Returns the address of the block containing this word, for blocks of
    /// `block_words` words. `block_words` must be a power of two.
    #[inline]
    pub const fn block(self, block_words: u32) -> BlockAddr {
        BlockAddr(self.0 >> block_words.trailing_zeros())
    }

    /// Returns the word offset of this address within its block.
    #[inline]
    pub const fn offset_in_block(self, block_words: u32) -> u32 {
        (self.0 & (block_words as u64 - 1)) as u32
    }

    /// Returns the address advanced by `words` words.
    #[inline]
    pub const fn add_words(self, words: u64) -> Self {
        WordAddr(self.0.wrapping_add(words))
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{:#x}", self.0)
    }
}

impl From<u64> for WordAddr {
    fn from(words: u64) -> Self {
        WordAddr::new(words)
    }
}

/// The address of a cache block (a word address shifted right by the block
/// offset bits).
///
/// Two [`WordAddr`]s map to the same `BlockAddr` exactly when they fall in
/// the same cache block, making block addresses the natural key for tag
/// comparison and write-buffer address matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block index.
    #[inline]
    pub const fn new(blocks: u64) -> Self {
        BlockAddr(blocks)
    }

    /// Returns the raw block index.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the word address of the first word of the block.
    #[inline]
    pub const fn first_word(self, block_words: u32) -> WordAddr {
        WordAddr(self.0 << block_words.trailing_zeros())
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_word_round_trip() {
        for w in [0u64, 1, 7, 0x1000, u64::MAX / 8] {
            let a = WordAddr::new(w);
            assert_eq!(WordAddr::from_byte_addr(a.to_byte_addr()), a);
        }
    }

    #[test]
    fn from_byte_addr_truncates_subword_bits() {
        assert_eq!(WordAddr::from_byte_addr(7), WordAddr::new(1));
        assert_eq!(WordAddr::from_byte_addr(8), WordAddr::new(2));
    }

    #[test]
    fn block_mapping_four_word_blocks() {
        let a = WordAddr::new(0x13);
        assert_eq!(a.block(4), BlockAddr::new(0x4));
        assert_eq!(a.offset_in_block(4), 3);
        assert_eq!(a.block(4).first_word(4), WordAddr::new(0x10));
    }

    #[test]
    fn block_mapping_single_word_blocks() {
        let a = WordAddr::new(0x13);
        assert_eq!(a.block(1), BlockAddr::new(0x13));
        assert_eq!(a.offset_in_block(1), 0);
    }

    #[test]
    fn same_block_iff_same_block_addr() {
        let a = WordAddr::new(32);
        let b = WordAddr::new(39);
        let c = WordAddr::new(40);
        assert_eq!(a.block(8), b.block(8));
        assert_ne!(a.block(8), c.block(8));
    }

    #[test]
    fn add_words_advances() {
        assert_eq!(WordAddr::new(10).add_words(6), WordAddr::new(16));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", WordAddr::new(0)).is_empty());
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
    }
}
